//! Facade crate for the Strider GhostBuster reproduction.
//!
//! Re-exports the entire workspace public API under one roof so examples,
//! integration tests, and downstream users can write `use
//! strider_ghostbuster_repro::prelude::*;` and get the simulated machine,
//! the ghostware corpus, and the GhostBuster detector together.
//!
//! The individual crates are:
//!
//! * [`nt_core`] — shared vocabulary (counted UTF-16 names, NT paths, clock).
//! * [`ntfs`] — the simulated NTFS volume and raw MFT parser.
//! * [`hive`] — the simulated Registry hive format and ASEP catalog.
//! * [`kernel`] — the simulated NT kernel objects and crash dumps.
//! * [`winapi`] — the layered, hookable query-API chain and the [`winapi::Machine`].
//! * [`ghostware`] — reimplementations of the paper's malware corpus.
//! * [`unixfs`] — the Section 5 Unix substrate and rootkits.
//! * [`workload`] — deterministic machine population and the cost model.
//! * [`ghostbuster`] — the cross-view-diff detector itself.
//! * [`fleet`] — the fleet-scale sweep service (seeded fleets, the
//!   work-stealing scheduler, merged fleet reports, the fleet monitor).
//!
//! # Examples
//!
//! ```
//! use strider_ghostbuster_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::with_base_system("demo")?;
//! HackerDefender::default().infect(&mut machine)?;
//! let report = GhostBuster::new().scan_files_inside(&mut machine)?;
//! assert!(report.has_detections());
//! # Ok(())
//! # }
//! ```

pub use strider_fleet as fleet;
pub use strider_ghostbuster as ghostbuster;
pub use strider_ghostware as ghostware;
pub use strider_hive as hive;
pub use strider_kernel as kernel;
pub use strider_nt_core as nt_core;
pub use strider_ntfs as ntfs;
pub use strider_unixfs as unixfs;
pub use strider_winapi as winapi;
pub use strider_workload as workload;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use strider_fleet::prelude::*;
    pub use strider_ghostbuster::prelude::*;
    pub use strider_ghostware::prelude::*;
    pub use strider_hive::prelude::*;
    pub use strider_kernel::prelude::*;
    pub use strider_nt_core::{NtPath, NtStatus, NtString, Pid, Tick, Tid};
    pub use strider_ntfs::prelude::*;
    pub use strider_unixfs::prelude::*;
    pub use strider_winapi::prelude::*;
    pub use strider_workload::prelude::*;
}
