//! The paper's headline claims, quoted and asserted.
//!
//! Each test cites a sentence from the paper and checks that the
//! reproduction exhibits the claimed behaviour. These tests are the
//! executable form of EXPERIMENTS.md.

use strider_ghostbuster_repro::prelude::*;

fn victim(seed: u64) -> Machine {
    standard_lab_machine("victim", &WorkloadSpec::small(seed), false).expect("machine builds")
}

/// "Cross-view diff targets only ghostware and usually has zero or very few
/// false positives because legitimate programs rarely hide." (Introduction)
#[test]
fn legitimate_programs_rarely_hide_so_clean_sweeps_are_silent() {
    for seed in 0..5 {
        let mut m = victim(seed);
        m.tick(100 * seed + 37);
        let sweep = GhostBuster::new()
            .with_advanced(AdvancedSource::ThreadTable)
            .inside_sweep(&mut m)
            .expect("sweeps");
        assert_eq!(sweep.suspicious_count(), 0, "seed {seed}");
    }
}

/// "It can uniformly detect files hidden by ghostware programs implemented
/// with a wide variety of interception techniques." (Section 2)
#[test]
fn uniform_detection_across_all_interception_techniques() {
    let mut techniques_seen = std::collections::HashSet::new();
    for (i, sample) in file_hiding_corpus().into_iter().enumerate() {
        let mut m = victim(40 + i as u64);
        let infection = sample.infect(&mut m).expect("infects");
        for t in &infection.techniques {
            techniques_seen.insert(t.to_string());
        }
        let report = GhostBuster::new().scan_files_inside(&mut m).expect("scans");
        assert!(
            report.has_detections(),
            "{} evaded the uniform detector",
            infection.ghostware
        );
    }
    assert!(
        techniques_seen.len() >= 5,
        "the corpus must span many techniques: {techniques_seen:?}"
    );
}

/// "A process can be absent from the list while remaining fully functional."
/// (Section 4, on FU's DKOM)
#[test]
fn dkom_hidden_process_remains_fully_functional() {
    let mut m = victim(50);
    Fu::default().infect(&mut m).expect("infects");
    let pid = m.kernel().find_by_name("fu_payload.exe")[0];
    assert!(!m.kernel().active_process_list().contains(&pid));
    // Fully functional: it still gets scheduled.
    let mut ran = false;
    for _ in 0..m.kernel().processes_via_threads().len() * 3 {
        if let Some((owner, _)) = m.kernel_mut().schedule_next() {
            if owner == pid {
                ran = true;
                break;
            }
        }
    }
    assert!(ran, "the hidden process must keep running");
}

/// "It takes only seconds to detect hidden processes and modules, tens of
/// seconds to detect hidden critical Registry entries, and a few minutes to
/// detect hidden files." (Conclusions)
#[test]
fn scan_cost_hierarchy_seconds_tens_minutes() {
    for p in paper_profiles() {
        let model = CostModel::new(p);
        assert!(model.process_scan_seconds() < 10.0);
        assert!(model.registry_scan_seconds() >= 10.0);
        assert!(model.registry_scan_seconds() < 120.0);
        assert!(model.file_scan_seconds() >= 60.0);
    }
}

/// "We were able to deterministically detect its presence within 5 seconds
/// through hidden-process detection." (Conclusions, on Hacker Defender)
#[test]
fn hacker_defender_detected_deterministically_within_five_seconds() {
    // Deterministically: the same result on every run and every machine.
    for seed in 0..3 {
        let mut m = victim(60 + seed);
        HackerDefender::default().infect(&mut m).expect("infects");
        let report = GhostBuster::new()
            .scan_processes_inside(&mut m)
            .expect("scans");
        assert_eq!(report.net_detections().len(), 1);
        assert!(report.net_detections()[0].detail.contains("hxdef100.exe"));
    }
    let fastest = CostModel::new(paper_profiles()[0].clone());
    assert!(fastest.process_scan_seconds() <= 5.0);
}

/// "Detection of hidden ASEP hooks is particularly useful for ghostware
/// removal: it locates the Registry keys that can be deleted to disable the
/// ghostware after a reboot, even if the ghostware files still remain on
/// the machine." (Section 3)
#[test]
fn hook_removal_disables_ghostware_with_files_still_on_disk() {
    let mut m = victim(70);
    HackerDefender::default().infect(&mut m).expect("infects");
    let gb = GhostBuster::new();
    let hooks = gb.hidden_hooks(&mut m).expect("hooks");
    assert_eq!(gb.remediate_hooks(&mut m, &hooks), 2);
    // Reboot: without its auto-start hooks the rootkit does not come back.
    m.remove_software("HackerDefender");
    for pid in m.kernel().find_by_name("hxdef100.exe") {
        m.kernel_mut().kill(pid).expect("kill");
    }
    // The files are STILL on the machine…
    assert!(m
        .volume()
        .exists(&"C:\\windows\\system32\\hxdef100.exe".parse().unwrap()));
    // …but visible now, and nothing is hidden any more.
    let sweep = gb.inside_sweep(&mut m).expect("sweeps");
    assert_eq!(sweep.suspicious_count(), 0);
}

/// "The existence of a large number of hidden files is a serious anomaly."
/// (Section 5, on the mass-hiding counterattack)
#[test]
fn mass_hiding_produces_a_large_anomaly_not_camouflage() {
    let mut m = victim(80);
    let few = {
        let mut m2 = victim(81);
        FileHider::hide_folders_xp()
            .infect(&mut m2)
            .expect("infects");
        GhostBuster::new()
            .scan_files_inside(&mut m2)
            .expect("scans")
            .net_detections()
            .len()
    };
    FileHider::hide_folders_xp()
        .with_targets(vec!["c:\\program files".into(), "c:\\temp".into()])
        .infect(&mut m)
        .expect("infects");
    let many = GhostBuster::new()
        .scan_files_inside(&mut m)
        .expect("scans")
        .net_detections()
        .len();
    assert!(
        many > 20 * few,
        "hiding more screams louder: {few} vs {many}"
    );
}

/// "While they employ a wide variety of resource-hiding techniques, they can
/// all be uniformly detected by GhostBuster's diff-based approach."
/// (Conclusions, on the 12 real-world programs)
#[test]
fn all_twelve_windows_samples_detected_by_the_same_framework() {
    let mut names = std::collections::BTreeSet::new();
    for (i, sample) in file_hiding_corpus()
        .into_iter()
        .chain(process_hiding_corpus())
        .enumerate()
    {
        let mut m = victim(90 + i as u64);
        let infection = sample.infect(&mut m).expect("infects");
        if !names.insert(infection.ghostware.clone()) {
            continue;
        }
        let sweep = GhostBuster::new()
            .with_advanced(AdvancedSource::ThreadTable)
            .inside_sweep(&mut m)
            .expect("sweeps");
        assert!(sweep.is_infected(), "{} evaded", infection.ghostware);
    }
    assert_eq!(names.len(), 12, "{names:?}");
}
