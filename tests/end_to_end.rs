//! Cross-crate end-to-end tests: the full corpus against the full detector,
//! asserting the paper's detection-completeness claims (Figures 3, 4, 6).

use strider_ghostbuster_repro::prelude::*;

fn victim(seed: u64) -> Machine {
    standard_lab_machine("victim", &WorkloadSpec::small(seed), false).expect("machine builds")
}

#[test]
fn every_file_hiding_sample_is_fully_detected_with_zero_false_positives() {
    for (i, sample) in file_hiding_corpus().into_iter().enumerate() {
        let mut m = victim(10 + i as u64);
        let infection = sample.infect(&mut m).expect("infects");
        let report = GhostBuster::new().scan_files_inside(&mut m).expect("scans");
        let details: Vec<String> = report
            .net_detections()
            .iter()
            .map(|d| d.detail.clone())
            .collect();
        for hidden in &infection.hidden_files {
            assert!(
                details.contains(&hidden.to_string()),
                "{}: missed {hidden}",
                infection.ghostware
            );
        }
        assert_eq!(
            details.len(),
            infection.hidden_files.len(),
            "{}: extra findings {details:?}",
            infection.ghostware
        );
        assert!(report.noise_detections().is_empty());
    }
}

#[test]
fn every_registry_hiding_sample_is_fully_detected() {
    for (i, sample) in registry_hiding_corpus().into_iter().enumerate() {
        let mut m = victim(30 + i as u64);
        let infection = sample.infect(&mut m).expect("infects");
        let report = GhostBuster::new()
            .scan_registry_inside(&mut m)
            .expect("scans");
        assert!(
            !report.net_detections().is_empty(),
            "{}: no hook findings",
            infection.ghostware
        );
        for entry in &infection.hidden_asep_entries {
            let found = report.net_detections().iter().any(|d| {
                entry.split(" -> ").all(|part| {
                    d.detail
                        .to_ascii_lowercase()
                        .contains(&part.to_ascii_lowercase())
                })
            });
            assert!(found, "{}: missed hook {entry}", infection.ghostware);
        }
    }
}

#[test]
fn every_process_hiding_sample_detected_fu_only_in_advanced_mode() {
    for (i, sample) in process_hiding_corpus().into_iter().enumerate() {
        let name = sample.name().to_string();
        let mut m = victim(50 + i as u64);
        let infection = sample.infect(&mut m).expect("infects");

        let normal = GhostBuster::new()
            .scan_processes_inside(&mut m)
            .expect("scans");
        let advanced = GhostBuster::new()
            .with_advanced(AdvancedSource::ThreadTable)
            .scan_processes_inside(&mut m)
            .expect("scans");
        let modules = GhostBuster::new()
            .scan_modules_inside(&mut m)
            .expect("scans");

        for proc_name in &infection.hidden_process_names {
            let in_normal = normal
                .net_detections()
                .iter()
                .any(|d| d.detail.contains(proc_name));
            let in_advanced = advanced
                .net_detections()
                .iter()
                .any(|d| d.detail.contains(proc_name));
            assert!(in_advanced, "{name}: advanced mode missed {proc_name}");
            if name == "FU" {
                assert!(!in_normal, "FU is invisible to the APL-based scan");
            } else {
                assert!(in_normal, "{name}: normal mode missed {proc_name}");
            }
        }
        for module in &infection.hidden_module_names {
            assert!(
                modules
                    .net_detections()
                    .iter()
                    .any(|d| d.detail.contains(module)),
                "{name}: missed module {module}"
            );
        }
    }
}

#[test]
fn multi_infection_machine_all_samples_attributed() {
    // Several families coexisting on one machine, as in a real compromise.
    let mut m = victim(99);
    let hd = HackerDefender::default().infect(&mut m).expect("hxdef");
    let urbin = Urbin.infect(&mut m).expect("urbin");
    let fu = Fu::default().infect(&mut m).expect("fu");
    let sweep = GhostBuster::new()
        .with_advanced(AdvancedSource::ThreadTable)
        .inside_sweep(&mut m)
        .expect("sweeps");
    let all: Vec<String> = sweep
        .files
        .net_detections()
        .iter()
        .chain(sweep.hooks.net_detections().iter())
        .chain(sweep.processes.net_detections().iter())
        .map(|d| d.detail.clone())
        .collect();
    for expected in ["hxdef100.exe", "msvsres.dll", "fu_payload.exe"] {
        assert!(
            all.iter().any(|d| d.contains(expected)),
            "missing {expected} in {all:?}"
        );
    }
    let _ = (hd, urbin, fu);
}

#[test]
fn fu_can_stack_on_hxdef_and_advanced_mode_still_wins() {
    // "One can even use the FU rootkit to hide the other process-hiding
    // ghostware programs to increase their stealth."
    let mut m = victim(100);
    HackerDefender::default().infect(&mut m).expect("hxdef");
    let pid = m.kernel().find_by_name("hxdef100.exe")[0];
    let fu = Fu { target: Some(pid) };
    fu.infect(&mut m).expect("fu");

    // Normal mode: the NtDll detour already hides it from the API, and DKOM
    // hides it from the APL — the diff of two doctored views is empty.
    let normal = GhostBuster::new()
        .scan_processes_inside(&mut m)
        .expect("scan");
    assert!(!normal
        .net_detections()
        .iter()
        .any(|d| d.detail.contains("hxdef100.exe")));

    let advanced = GhostBuster::new()
        .with_advanced(AdvancedSource::ThreadTable)
        .scan_processes_inside(&mut m)
        .expect("scan");
    assert!(advanced
        .net_detections()
        .iter()
        .any(|d| d.detail.contains("hxdef100.exe")));
}

#[test]
fn infected_sweep_emits_full_telemetry_span_tree() {
    let mut m = victim(101);
    HackerDefender::default().infect(&mut m).expect("hxdef");
    let telemetry = Telemetry::new();
    let sweep = GhostBuster::new()
        .with_telemetry(telemetry.clone())
        .inside_sweep(&mut m)
        .expect("sweeps");
    assert!(sweep.is_infected());

    let report = sweep.telemetry.as_ref().expect("telemetry attached");
    let root = report.find_span("sweep.inside").expect("sweep span");

    // All four resource pipelines report their phases under the sweep.
    for (pipeline, phases) in [
        ("files", &["high_scan", "low_scan", "diff"][..]),
        ("registry", &["high_scan", "low_scan", "diff"][..]),
        ("processes", &["high_scan", "low_scan", "diff"][..]),
        ("modules", &["high_scan", "low_scan", "diff"][..]),
    ] {
        let scan = root
            .child(&format!("{pipeline}.scan_inside"))
            .unwrap_or_else(|| panic!("missing {pipeline}.scan_inside"));
        for phase in phases {
            assert!(
                scan.find(&format!("{pipeline}.{phase}")).is_some(),
                "missing {pipeline}.{phase}"
            );
        }
    }

    // Every view counted a non-zero number of entries.
    for view in [
        "files.entries.HighLevelWin32",
        "files.entries.LowLevelMft",
        "registry.entries.HighLevelWin32",
        "registry.entries.LowLevelHiveParse",
        "processes.entries.HighLevelWin32",
        "processes.entries.LowLevelApl",
        "modules.entries.HighLevelWin32",
        "modules.entries.LowLevelKernelModules",
    ] {
        assert!(
            report.counters.get(view).copied().unwrap_or(0) > 0,
            "counter {view} missing or zero"
        );
    }

    // The hook-chain trace attributes hxdef's lies to its NtDll detours.
    for pipeline in ["files", "registry", "processes"] {
        let high = root
            .find(&format!("{pipeline}.high_scan"))
            .expect("high scan span");
        assert_eq!(
            high.attr("diverted_at").map(ToString::to_string),
            Some("NtdllCode".to_string()),
            "{pipeline}: wrong or missing divergence level"
        );
    }

    // Phase totals aggregate each span name across the tree.
    let totals = report.phase_totals();
    assert!(totals.contains_key("files.high_scan"));
    assert!(totals["files.high_scan"].count >= 1);
}

#[test]
fn scan_gap_zero_means_zero_false_positives_inside() {
    // Repeated inside sweeps on a churning but clean machine: always silent.
    let mut m = standard_lab_machine("clean", &WorkloadSpec::medium(3), true).expect("machine");
    for round in 0..5 {
        m.tick(97);
        let sweep = GhostBuster::new().inside_sweep(&mut m).expect("sweeps");
        assert_eq!(sweep.suspicious_count(), 0, "round {round}: {sweep}");
        assert_eq!(sweep.noise_count(), 0, "round {round}");
    }
}
