//! The adversarial arms-race matrix: every evasive tactic against every
//! scan posture, in the style of the paper's result tables.
//!
//! Rows are [`EvasiveTactic`]s, columns are scan modes:
//!
//! | tactic                 | naive single | naive stabilized | hardened | outside |
//! |------------------------|--------------|------------------|----------|---------|
//! | unhide-during-low-scan | caught       | **defeated**     | caught   | caught  |
//! | rehook-after-sweep     | see test     | **defeated**     | caught   | caught  |
//! | flicker-hiding         | **defeated** | **defeated**     | caught   | caught  |
//!
//! Two invariants anchor the table: every tactic defeats at least one
//! naive mode (the arms race is real), and **no** tactic defeats the
//! hardened sweep or the outside-the-box sweep. The outside scan stays
//! undefeatable by construction — `Machine::snapshot_disk` never touches
//! the scan tap the ghostware senses through — and the hardened policy's
//! quorum diff turns the one thing adaptive hiding cannot avoid
//! (inconsistency across passes) into [`NoiseClass::Flickering`]
//! findings.
//!
//! Everything here is deterministic: machines are rebuilt per cell, and
//! all randomness (detector and adversary) flows from pinned seeds.

use strider_ghostbuster_repro::prelude::*;

/// A fresh lab machine with one evasive infection installed.
fn infected(tactic: EvasiveTactic) -> Machine {
    let mut m = Machine::with_base_system("evasion-lab").expect("machine builds");
    EvasiveGhostware::new(tactic)
        .infect(&mut m)
        .expect("infects");
    m
}

fn inside(policy: ScanPolicy, tactic: EvasiveTactic) -> SweepReport {
    let mut m = infected(tactic);
    GhostBuster::new()
        .with_policy(policy)
        .inside_sweep(&mut m)
        .expect("sweeps")
}

fn outside(tactic: EvasiveTactic) -> SweepReport {
    let mut m = infected(tactic);
    GhostBuster::new()
        .with_policy(ScanPolicy::hardened())
        .winpe_outside_sweep(&mut m, 100)
        .expect("sweeps")
}

/// The tactic parameters the matrix pins. Each is tuned to *actually*
/// defeat its naive column — a weak adversary would make the hardened
/// column's win meaningless.
fn unhide() -> EvasiveTactic {
    // Honest for a million queries after any raw read: effectively
    // "honest until reboot", the strongest version of the tactic.
    EvasiveTactic::UnhideDuringLowScan { window: 1_000_000 }
}

fn rehook() -> EvasiveTactic {
    // Six consecutive same-kind enumeration queries fingerprint a bulk
    // scan; once sensed, lies stay down effectively forever.
    EvasiveTactic::RehookAfterSweep {
        burst: 6,
        rehook_after: 1_000_000,
    }
}

fn flicker() -> EvasiveTactic {
    // Grace covers every appearance a naive sweep can cause; only the
    // hardened sweep's quorum passes and decoy queries burn through it.
    EvasiveTactic::FlickerHiding {
        seed: 41,
        grace: 12,
    }
}

#[test]
fn unhide_during_low_scan_beats_stabilization_but_not_quorum() {
    // Naive single pass: the files lie is collected *before* the first
    // raw volume read, so the rootkit is still lying — caught.
    let single = inside(ScanPolicy::strict(), unhide());
    assert!(single.is_infected(), "single-pass sweep must catch it");

    // Stabilized: pass 1 disagrees with the honest passes 2 and 3, which
    // agree with each other — the stabilizer accepts the clean pair.
    let stabilized = inside(ScanPolicy::resilient(), unhide());
    assert!(
        !stabilized.is_infected(),
        "the tactic must defeat two-passes-agree stabilization: {stabilized}"
    );

    // Hardened: the lying first pass is outvoted but not forgotten — it
    // surfaces as a flickering finding.
    let hardened = inside(ScanPolicy::hardened(), unhide());
    assert!(hardened.is_infected(), "quorum diff must catch it");
    assert!(
        hardened.flicker_score() > 0,
        "the catch is flicker-scored: {hardened}"
    );
}

#[test]
fn rehook_after_sweep_beats_stabilization_but_not_decoys() {
    // Stabilized: pass 1's enumeration burst is sensed early, lies drop,
    // and the later (honest, agreeing) passes win the stabilizer.
    let stabilized = inside(ScanPolicy::resilient(), rehook());
    assert!(
        !stabilized.is_infected(),
        "the tactic must defeat stabilized sweeps: {stabilized}"
    );

    // Hardened: decoy queries cap every same-kind run below the burst
    // threshold, so the sensor never trips and the lies are *stable* —
    // caught by the ordinary cross-view diff in every quorum pass.
    let hardened = inside(ScanPolicy::hardened(), rehook());
    assert!(hardened.is_infected(), "decoys must blind the burst sensor");
    assert!(
        hardened.suspicious_count() > hardened.flicker_score(),
        "rehook lies are stable under decoys, not flickering: {hardened}"
    );
}

#[test]
fn flicker_hiding_beats_naive_sweeps_but_not_flicker_scoring() {
    // Both naive modes: every resource is within its grace allowance for
    // the handful of appearances a naive sweep causes — fully visible,
    // nothing to diff.
    let single = inside(ScanPolicy::strict(), flicker());
    assert!(
        !single.is_infected(),
        "grace must cover a single-pass sweep: {single}"
    );
    let stabilized = inside(ScanPolicy::resilient(), flicker());
    assert!(
        !stabilized.is_infected(),
        "grace must cover a stabilized sweep: {stabilized}"
    );

    // Hardened: quorum passes plus decoy traffic exhaust the grace, the
    // coin starts hiding, and the inconsistency is the detection.
    let hardened = inside(ScanPolicy::hardened(), flicker());
    assert!(
        hardened.is_infected(),
        "quorum passes must exhaust the grace: {hardened}"
    );
}

#[test]
fn no_tactic_defeats_the_outside_the_box_sweep() {
    for (name, tactic) in [
        ("unhide-during-low-scan", unhide()),
        ("rehook-after-sweep", rehook()),
        ("flicker-hiding", flicker()),
    ] {
        let report = outside(tactic);
        assert!(
            report.is_infected(),
            "{name} must not survive the outside-the-box sweep: {report}"
        );
    }
}

#[test]
fn every_tactic_defeats_at_least_one_naive_mode() {
    // The arms race is real: each tactic wins somewhere, or the hardened
    // policy would be hardening against nothing.
    for (name, tactic) in [
        ("unhide-during-low-scan", unhide()),
        ("rehook-after-sweep", rehook()),
        ("flicker-hiding", flicker()),
    ] {
        let single = inside(ScanPolicy::strict(), tactic);
        let stabilized = inside(ScanPolicy::resilient(), tactic);
        assert!(
            !single.is_infected() || !stabilized.is_infected(),
            "{name} defeats no naive mode — not an evasion tactic at all"
        );
    }
}

#[test]
fn hardened_sweeps_are_byte_identical_for_equal_seeds() {
    // All detector randomization (pipeline order, enumeration shuffles,
    // decoy scheduling) derives from the policy seed, so a fixed seed
    // reproduces the sweep byte for byte — the property that makes
    // randomized fleet sweeps diffable across machines and months.
    let run = |seed: u64| {
        let policy =
            ScanPolicy::supervised().with_hardening(Some(EvasionHardening::with_seed(seed)));
        inside(policy, flicker()).to_string()
    };
    assert_eq!(run(7), run(7), "equal seeds: byte-identical reports");
    assert_eq!(run(99), run(99), "any fixed seed reproduces");
}
