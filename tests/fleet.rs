//! Fleet-scale integration tests: a seeded 64-machine fleet swept on the
//! work-stealing pool, merged-sketch equality against a serial merge,
//! shard-level fault isolation, and kill-mid-fleet resume.
//!
//! Everything runs on a [`FakeClock`]: stalled devices are polled in
//! simulated time, so "a shard stalls past its two-millisecond budget"
//! costs microseconds of wall clock.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::obs::FakeClock;

/// The supervised fleet policy every test drives: resilient scanning with
/// per-pipeline/per-sweep budgets on a shared fake clock.
fn fleet_policy(clock: Arc<FakeClock>) -> ScanPolicy {
    ScanPolicy::resilient()
        .with_clock(clock)
        .with_poll(100_000, 0)
        .with_pipeline_budget(2_000_000)
        .with_sweep_budget(10_000_000)
}

fn detector(clock: Arc<FakeClock>) -> GhostBuster {
    GhostBuster::new()
        .with_advanced(AdvancedSource::ThreadTable)
        .with_policy(fleet_policy(clock))
}

// ---------------------------------------------------------------------
// Exact fleet statistics and merge equality on the worker pool
// ---------------------------------------------------------------------

#[test]
fn pool_sweep_of_64_machines_reports_exact_rate_and_merge_equal_sketches() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(64, 6401).with_infected(16)).unwrap();
    assert_eq!(fleet.seeded_infected(), 16);

    let scheduler = FleetScheduler::new(detector(clock)).with_workers(4);
    let report = scheduler.sweep(&mut fleet).unwrap();

    // Exact fleet infection rate: every seeded machine detected, nothing
    // else flagged.
    assert_eq!(report.machines, 64);
    assert_eq!(report.swept, 64);
    assert_eq!(report.infected, 16, "{report}");
    assert_eq!(report.seeded_infected, 16);
    assert!((report.infection_rate() - 0.25).abs() < 1e-12);
    assert!(report.unswept.is_empty());
    for result in report.results() {
        assert_eq!(
            result.report.is_infected(),
            result.seeded_infected,
            "{} wrong verdict",
            result.shard
        );
    }

    // Prevalence tables: the five families cycle over 16 infections, and
    // every family/technique seeded is detected at full rate.
    assert_eq!(report.families.len(), 5, "{:?}", report.families);
    assert_eq!(report.families.values().map(|p| p.seeded).sum::<u64>(), 16);
    for (family, p) in &report.families {
        assert_eq!(p.detected, p.seeded, "family {family} missed");
    }
    assert!(!report.techniques.is_empty());
    for (technique, p) in &report.techniques {
        assert_eq!(p.detected, p.seeded, "technique {technique} missed");
    }

    // Health rollup: all four pipelines clean on all 64 shards.
    for pipeline in ["files", "registry", "processes", "modules"] {
        let rollup = &report.health[pipeline];
        assert_eq!((rollup.ok, rollup.salvaged, rollup.degraded), (64, 0, 0));
    }

    // Merged-quantile equality: merging each shard's sketches serially in
    // shard order (the "single registry" merge) must produce *exactly* the
    // fleet report's sketches — bucket counts add, so the merge is
    // order-independent even though the pool finished shards in an
    // arbitrary interleaving.
    let mut serial: BTreeMap<String, HistogramSketch> = BTreeMap::new();
    for result in report.results() {
        let telemetry = result
            .report
            .telemetry
            .as_ref()
            .expect("swept shards carry telemetry");
        for (name, sketch) in &telemetry.histograms {
            serial.entry(name.clone()).or_default().merge(sketch);
        }
    }
    assert_eq!(serial, report.latency);
    for probe in [
        "files.dir_query_ns",
        "registry.key_probe_ns",
        "modules.proc_query_ns",
    ] {
        let fleet_sketch = &report.latency[probe];
        let serial_sketch = &serial[probe];
        assert!(fleet_sketch.count() > 0, "{probe} recorded nothing");
        for pct in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(
                fleet_sketch.percentile(pct),
                serial_sketch.percentile(pct),
                "{probe} p{pct} differs"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fault isolation: one stalled shard degrades alone
// ---------------------------------------------------------------------

#[test]
fn stalled_shard_lands_degraded_without_sinking_the_fleet_report() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(8, 777).with_infected(2)).unwrap();
    fleet.machines_mut()[5]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));

    // One worker: the fleet's shards share one *fake* clock, and the
    // stalled shard's deadline polling advances it by whole pipeline
    // budgets — a concurrent shard would see that jump mid-scan and time
    // out too. Serial shards start their deadlines after the jump, so the
    // degradation stays exactly where it was injected.
    let scheduler = FleetScheduler::new(detector(clock)).with_workers(1);
    let mut checkpoint = FleetCheckpoint::new(&fleet);
    let report = scheduler
        .sweep_checkpointed(&mut fleet, &mut checkpoint)
        .unwrap();

    // Every shard reported — the stall cost one pipeline of one shard.
    assert_eq!(report.swept, 8);
    assert!(report.unswept.is_empty());
    let stalled = report.result(ShardId(5)).unwrap();
    assert_eq!(
        stalled.report.health.files,
        PipelineStatus::Degraded {
            reason: "operation timed out".to_string()
        }
    );
    assert!(stalled.report.health.registry.is_ok());
    let rollup = &report.health["files"];
    assert_eq!((rollup.ok, rollup.degraded), (7, 1));
    for pipeline in ["registry", "processes", "modules"] {
        assert_eq!(report.health[pipeline].degraded, 0);
    }
    // The infections elsewhere in the fleet are still found.
    assert_eq!(report.infected, 2);

    // A timeout is a reason to re-run, not a result: the stalled shard's
    // files pipeline is not checkpointed, so only that shard is unfinished.
    assert_eq!(checkpoint.unfinished_shards(), vec![ShardId(5)]);

    // Clear the fault and resume: the seven finished shards are restored
    // verbatim, shard 5 alone is re-swept, and the fleet completes clean.
    fleet.machines_mut()[5]
        .machine
        .set_fault_injector(FaultInjector::new());
    let resumed = scheduler
        .sweep_checkpointed(&mut fleet, &mut checkpoint)
        .unwrap();
    assert!(checkpoint.is_complete());
    assert_eq!(resumed.swept, 8);
    for result in resumed.results() {
        assert_eq!(
            result.restored,
            result.shard != ShardId(5),
            "{}",
            result.shard
        );
    }
    assert_eq!(resumed.health["files"].degraded, 0);
    assert_eq!(resumed.infected, 2);
}

// ---------------------------------------------------------------------
// Kill-mid-fleet: stop, serialize the checkpoint, resume the rest
// ---------------------------------------------------------------------

#[test]
fn killed_fleet_sweep_resumes_only_the_unfinished_shards() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(6, 31).with_infected(3)).unwrap();
    // One worker, batch size one: shards complete one at a time, so the
    // stop lands early enough to leave work behind.
    let scheduler = FleetScheduler::new(detector(clock))
        .with_workers(1)
        .with_batch(1);

    let mut checkpoint = FleetCheckpoint::new(&fleet);
    let mut seen = 0;
    let report = scheduler
        .sweep_streaming(&mut fleet, &mut checkpoint, |_| {
            seen += 1;
            if seen >= 2 {
                FleetControl::Stop
            } else {
                FleetControl::Continue
            }
        })
        .unwrap();

    // The stop left shards behind, and the checkpoint knows exactly which:
    // a shard is either complete in the checkpoint or due a re-sweep.
    // (Cancellation may interrupt a shard mid-sweep — its result was
    // reported this run, but its pipelines were not checkpointed.)
    let done: BTreeSet<ShardId> = (0..6)
        .map(ShardId)
        .filter(|id| !checkpoint.unfinished_shards().contains(id))
        .collect();
    let unfinished = checkpoint.unfinished_shards();
    assert!(!unfinished.is_empty(), "stop must leave work behind");
    assert!(done.len() >= 2, "two results were observed before the stop");
    assert!(!checkpoint.is_complete());
    assert_eq!(
        report.swept + report.unswept.len() as u64,
        6,
        "every shard is either reported or unswept"
    );
    // Unswept shards are necessarily unfinished in the checkpoint.
    for id in &report.unswept {
        assert!(unfinished.contains(id), "{id} unswept but checkpointed");
    }

    // The checkpoint survives the kill as JSON.
    let mut parsed = FleetCheckpoint::deserialize(&checkpoint.serialize()).unwrap();
    assert_eq!(parsed, checkpoint);

    // Resume from the parsed checkpoint: complete shards restore verbatim
    // (no scan, no telemetry), unfinished shards re-sweep, and the fleet
    // statistics come out exact.
    let resumed = scheduler
        .sweep_checkpointed(&mut fleet, &mut parsed)
        .unwrap();
    assert!(parsed.is_complete());
    assert_eq!(resumed.swept, 6);
    assert!(resumed.unswept.is_empty());
    for result in resumed.results() {
        assert_eq!(
            result.restored,
            done.contains(&result.shard),
            "{} should {}have been restored",
            result.shard,
            if done.contains(&result.shard) {
                ""
            } else {
                "not "
            }
        );
        if result.restored {
            assert!(result.report.telemetry.is_none());
        }
    }
    assert_eq!(resumed.infected, 3);
    assert_eq!(resumed.seeded_infected, 3);
}

// ---------------------------------------------------------------------
// Fleet monitor: incidents carry their shard and its evidence
// ---------------------------------------------------------------------

#[test]
fn fleet_monitor_tags_incidents_with_shard_and_flight_evidence() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(4, 91)).unwrap();
    let mut monitor = FleetMonitor::new(GhostBuster::new().with_policy(fleet_policy(clock)))
        .with_config(MonitorConfig::default().with_interval_ns(1_000_000_000));
    assert_eq!(monitor.record_baselines(&mut fleet).unwrap(), 4);

    // Quiet fleet: no incidents across two scheduled passes.
    let calm = monitor.run(&mut fleet, 2).unwrap();
    assert!(calm.iter().all(|p| p.incidents.is_empty()));

    // A rootkit lands on shard 2 and its volume starts stalling.
    HackerDefender::default()
        .infect(&mut fleet.machines_mut()[2].machine)
        .unwrap();
    fleet.machines_mut()[2]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(5)));

    let pass = monitor.observe(&mut fleet).unwrap();
    assert!(
        pass.incidents.iter().all(|i| i.shard == ShardId(2)),
        "{:?}",
        pass.incidents
    );
    assert!(pass
        .incidents
        .iter()
        .any(|i| matches!(i.incident, MonitorIncident::NewHiddenResource { .. })));
    assert!(pass
        .incidents
        .iter()
        .any(|i| matches!(i.incident, MonitorIncident::LatencyRegression { .. })));
    for incident in &pass.incidents {
        assert!(
            !incident.incident.flight().is_empty(),
            "incident must carry the shard's flight dump: {incident}"
        );
    }
    assert_eq!(pass.infected_shards(), vec![ShardId(2)]);
    assert_eq!(monitor.series("fleet.infected").unwrap().last(), Some(1.0));
}

// ---------------------------------------------------------------------
// Fleet alerting: rollup rules fire on spikes and export to Prometheus
// ---------------------------------------------------------------------

#[test]
fn fleet_infection_spike_rule_fires_and_exports_prometheus_text() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(8, 47)).unwrap();
    let mut monitor = FleetMonitor::new(GhostBuster::new().with_policy(fleet_policy(clock)))
        .with_config(MonitorConfig::default().with_interval_ns(1_000_000_000))
        .with_alert_policy(FleetAlertPolicy::default().with_infection_rate_max(0.25));
    monitor.record_baselines(&mut fleet).unwrap();

    // A quiet pass: rate 0, nothing pending or firing.
    let calm = monitor.observe(&mut fleet).unwrap();
    assert!(calm.transitions.is_empty(), "{:?}", calm.transitions);

    // Rootkits land on 3 of 8 shards: infection rate 0.375 > 0.25.
    for shard in [1usize, 4, 6] {
        HackerDefender::default()
            .infect(&mut fleet.machines_mut()[shard].machine)
            .unwrap();
    }
    let pass = monitor.observe(&mut fleet).unwrap();
    assert_eq!(
        monitor.series("fleet.infection_rate").unwrap().last(),
        Some(0.375)
    );
    assert!(monitor.alerts().is_firing("fleet.infection_spike"));
    assert!(
        pass.transitions
            .iter()
            .any(|t| t.rule == "fleet.infection_spike" && t.severity == Severity::Critical),
        "{:?}",
        pass.transitions
    );
    // The fleet monitor keeps its own black box for alert transitions.
    assert!(monitor
        .flight()
        .events
        .iter()
        .any(|e| e.what == "fleet.infection_spike"));

    // Operators scrape the same state as Prometheus text.
    let dir = std::env::temp_dir().join(format!("strider-fleet-alerts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = monitor.write_prom_in(&dir, "fleet").unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains(
            "strider_alert_active{rule=\"fleet.infection_spike\",severity=\"critical\"} 1"
        ),
        "{text}"
    );
    assert!(text.contains("fleet_infection_rate 0.375"), "{text}");
    assert!(text.contains("strider_fleet_passes_total 2"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();

    // Disinfect wipes nothing here — but a fresh clean fleet pass would
    // resolve the rule; the merged sweep report exports too.
    let report = FleetScheduler::new(detector(Arc::new(FakeClock::default())))
        .sweep(&mut fleet)
        .unwrap();
    let expo = report.prometheus().render();
    assert!(expo.contains("strider_fleet_swept_total 8"), "{expo}");
    assert!(
        expo.contains("strider_fleet_infection_rate 0.375"),
        "{expo}"
    );
}

// ---------------------------------------------------------------------
// Hardened-policy plumb-through
// ---------------------------------------------------------------------

#[test]
fn hardened_policy_flows_through_the_scheduler_to_every_shard() {
    // Half the fleet runs flicker-hiding evasive rootkits. The standard
    // resilient fleet policy misses every one (the tactic is built to
    // defeat stabilized sweeps); swapping *only* the detector's policy
    // for the hardened preset catches every one — proof the scheduler
    // clones the hardened policy into each shard's sweep rather than
    // falling back to a default.
    let tactic = EvasiveTactic::FlickerHiding {
        seed: 41,
        grace: 12,
    };
    let build = || {
        let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(6, 4242)).unwrap();
        for shard in fleet.machines_mut().iter_mut().take(3) {
            EvasiveGhostware::new(tactic)
                .infect(&mut shard.machine)
                .unwrap();
        }
        fleet
    };

    let naive = FleetScheduler::new(detector(Arc::new(FakeClock::default()))).with_workers(3);
    let report = naive.sweep(&mut build()).unwrap();
    assert_eq!(report.infected, 0, "naive fleet sweep is blind: {report}");

    let hardened = GhostBuster::new()
        .with_policy(ScanPolicy::hardened().with_clock(Arc::new(FakeClock::default())));
    let scheduler = FleetScheduler::new(hardened).with_workers(3);
    let report = scheduler.sweep(&mut build()).unwrap();
    assert_eq!(
        report.infected, 3,
        "hardened policy must reach every shard: {report}"
    );
}

// ---------------------------------------------------------------------
// Self-healing: retry budgets, recovery, and quarantine
// ---------------------------------------------------------------------

/// A heal policy with a tiny backoff window so retries cost microseconds
/// of fake-clock time.
fn heal(max_attempts: u32) -> FleetHealPolicy {
    FleetHealPolicy::default()
        .with_max_attempts(max_attempts)
        .with_backoff(100_000, 400_000)
}

#[test]
fn permanently_stalled_shard_is_quarantined_with_flight_evidence() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(6, 61).with_infected(2)).unwrap();
    // Infections land on shards 0 and 3; stall a clean shard forever.
    fleet.machines_mut()[1]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));

    let scheduler = FleetScheduler::new(detector(clock))
        .with_workers(1)
        .with_heal(heal(2));
    let report = scheduler.sweep(&mut fleet).unwrap();

    // The sick shard burned its budget and was fenced — not silently
    // dropped, and not an Err that sank the fleet.
    assert_eq!(report.quarantined, vec![ShardId(1)], "{report}");
    let fenced = report
        .result(ShardId(1))
        .expect("quarantined shard keeps its result");
    match &fenced.disposition {
        ShardDisposition::Quarantined {
            attempts,
            reason,
            evidence,
        } => {
            assert_eq!(*attempts, 2);
            assert!(reason.contains("files"), "{reason}");
            assert!(
                evidence.events.iter().any(|e| e.what == "shard.attempt"),
                "evidence must show the failed attempts: {evidence:?}"
            );
            assert!(evidence.events.iter().any(|e| e.what == "shard.quarantine"));
        }
        other => panic!("expected quarantine, got {other:?}"),
    }

    // The fence keeps the untrusted verdict out of every aggregate: five
    // shards swept, both seeded infections (shards 0 and 3) still found,
    // and the health rollup only counts the healthy shards.
    assert_eq!(report.swept, 5);
    assert_eq!(report.infected, 2);
    assert_eq!(report.seeded_infected, 2);
    let rollup = &report.health["files"];
    assert_eq!((rollup.ok, rollup.degraded), (5, 0));
    assert!(report.unswept.is_empty());
    assert!(!report.is_complete_and_healthy());
}

#[test]
fn transiently_stalled_shard_recovers_on_a_retry() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(4, 43).with_infected(1)).unwrap();
    // 25 pending polls: the first attempt's 2 ms files budget drains at
    // most 20 of them and times out; the retry drains the rest and
    // completes inside its (fresh) budget.
    fleet.machines_mut()[2]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(25)));

    let scheduler = FleetScheduler::new(detector(clock))
        .with_workers(1)
        .with_heal(heal(3));
    let report = scheduler.sweep(&mut fleet).unwrap();

    assert!(report.quarantined.is_empty(), "{report}");
    assert_eq!(report.swept, 4);
    let healed = report.result(ShardId(2)).unwrap();
    match healed.disposition {
        ShardDisposition::Recovered { attempts } => assert!(attempts >= 2, "{attempts}"),
        ref other => panic!("expected a recovery, got {other:?}"),
    }
    assert!(
        healed.report.health.files.is_ok(),
        "{:?}",
        healed.report.health
    );
    assert!(report.is_complete_and_healthy(), "{report}");
    // Untouched shards swept clean on the first attempt.
    assert_eq!(
        report.result(ShardId(1)).unwrap().disposition,
        ShardDisposition::Swept
    );
}

// ---------------------------------------------------------------------
// Durable sweeps: kill-anywhere resume and persistent quarantine
// ---------------------------------------------------------------------

fn durable_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("strider-fleet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn durable_sweep_killed_mid_journal_resumes_to_an_identical_digest() {
    use strider_support::fault::CrashPlan;
    use strider_support::store::RecordStore;

    let spec = FleetSpec::clean(5, 1951).with_infected(2);
    let build = || FleetRegistry::seeded(&spec).unwrap();
    let scheduler = || {
        FleetScheduler::new(detector(Arc::new(FakeClock::default())))
            .with_workers(1)
            .with_batch(1)
    };
    let dir = durable_dir("kill-resume");

    // Reference: an uninterrupted durable run, measuring journal bytes.
    let plan = Arc::new(CrashPlan::never());
    let store = RecordStore::open(dir.join("ref.wal"))
        .unwrap()
        .with_crash_plan(plan.clone());
    let reference = scheduler()
        .sweep_durable(&mut build(), &store, DurabilityMode::WalAppend)
        .unwrap()
        .result_digest();
    let total_bytes = plan.written();
    assert!(total_bytes > 0);

    // Kill mid-journal (about two thirds in — inside a shard record),
    // then restart: fresh registry, reopened store, same call.
    let path = dir.join("killed.wal");
    let plan = Arc::new(CrashPlan::at_write_byte(total_bytes * 2 / 3));
    let store = RecordStore::open(&path).unwrap().with_crash_plan(plan);
    let err = scheduler()
        .sweep_durable(&mut build(), &store, DurabilityMode::WalAppend)
        .unwrap_err();
    assert!(err.is_injected_crash(), "{err}");

    let store = RecordStore::open(&path).unwrap();
    let resumed = scheduler()
        .sweep_durable(&mut build(), &store, DurabilityMode::WalAppend)
        .unwrap();
    assert!(
        resumed.results().iter().any(|r| r.restored),
        "the journal must have saved some shards"
    );
    assert_eq!(resumed.result_digest(), reference);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn quarantine_survives_the_durable_store_and_stays_fenced_on_resume() {
    use strider_support::store::RecordStore;

    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(4, 71).with_infected(1)).unwrap();
    fleet.machines_mut()[3]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
    let scheduler = FleetScheduler::new(detector(clock))
        .with_workers(1)
        .with_heal(heal(2));

    let dir = durable_dir("quarantine");
    let store = RecordStore::open(dir.join("fleet.wal")).unwrap();
    let first = scheduler
        .sweep_durable(&mut fleet, &store, DurabilityMode::WalAppend)
        .unwrap();
    assert_eq!(first.quarantined, vec![ShardId(3)]);

    // Restart against the same store: the fence is restored from the
    // journal — the sick shard is NOT re-swept (its stall would burn the
    // budget again), and the digest matches the first run exactly.
    let store = RecordStore::open(dir.join("fleet.wal")).unwrap();
    let mut fresh = FleetRegistry::seeded(&FleetSpec::clean(4, 71).with_infected(1)).unwrap();
    fresh.machines_mut()[3]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
    let second = scheduler
        .sweep_durable(&mut fresh, &store, DurabilityMode::WalAppend)
        .unwrap();
    assert_eq!(second.quarantined, vec![ShardId(3)]);
    assert_eq!(second.result_digest(), first.result_digest());
    match &second.result(ShardId(3)).unwrap().disposition {
        ShardDisposition::Quarantined {
            attempts, evidence, ..
        } => {
            assert_eq!(*attempts, 2);
            assert!(!evidence.events.is_empty(), "evidence survives the journal");
        }
        other => panic!("expected a restored quarantine, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// Monitor self-healing: failing shards are fenced, not fatal
// ---------------------------------------------------------------------

#[test]
fn monitor_quarantines_a_failing_shard_instead_of_sinking_the_fleet() {
    let clock = Arc::new(FakeClock::default());
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(3, 97)).unwrap();
    let mut monitor = FleetMonitor::new(detector(clock)).with_quarantine_after(2);
    assert_eq!(monitor.record_baselines(&mut fleet).unwrap(), 3);

    // Break shard 1 after the baselines: every later pass degrades it.
    fleet.machines_mut()[1]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));

    // Pass 1: the failure is surfaced, counted, and the pass still
    // completes for the whole fleet.
    let pass = monitor.observe(&mut fleet).unwrap();
    assert_eq!(pass.failures.len(), 1, "{:?}", pass.failures);
    assert_eq!(pass.failures[0].shard, ShardId(1));
    assert_eq!(pass.failures[0].consecutive, 1);
    assert_eq!(pass.shards.len(), 3);
    assert!(pass.quarantined.is_empty());

    // Pass 2: second consecutive failure trips the fence.
    let pass = monitor.observe(&mut fleet).unwrap();
    assert_eq!(pass.failures[0].consecutive, 2);
    assert_eq!(pass.quarantined, vec![ShardId(1)]);
    let fenced = monitor.quarantined();
    assert_eq!(fenced.len(), 1);
    assert_eq!(fenced[0].shard, ShardId(1));
    assert!(
        fenced[0]
            .evidence
            .events
            .iter()
            .any(|e| e.what == "fleet.shard_failure"),
        "quarantine carries the failure trail"
    );

    // Pass 3: the fenced shard is skipped — two shards observed, no new
    // failures, and the rollup series records the fence.
    let pass = monitor.observe(&mut fleet).unwrap();
    assert_eq!(pass.shards.len(), 2);
    assert_eq!(pass.shard_ids, vec![ShardId(0), ShardId(2)]);
    assert!(pass.failures.is_empty());
    assert_eq!(
        monitor.series("fleet.quarantined").unwrap().last(),
        Some(1.0)
    );

    // Operator fixes the machine and lifts the fence: the next pass
    // observes all three shards again, clean.
    fleet.machines_mut()[1]
        .machine
        .set_fault_injector(FaultInjector::new());
    assert!(monitor.unquarantine(ShardId(1)));
    let pass = monitor.observe(&mut fleet).unwrap();
    assert_eq!(pass.shards.len(), 3);
    assert!(pass.failures.is_empty(), "{:?}", pass.failures);
    assert!(monitor.quarantined().is_empty());
}
