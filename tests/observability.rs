//! Diagnosability integration tests: flight-recorder black boxes on
//! degraded pipelines, the continuous sweep monitor's regression
//! detection, Chrome-trace export, and bounded always-on telemetry.
//!
//! Everything runs on a [`FakeClock`] with the deterministic base-system
//! workload, so failures reproduce bit-for-bit: stalls advance simulated
//! time via polling, latency "regressions" are injected fault plans, and
//! the monitor's incident stream is a pure function of the scenario.

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::json::JsonValue;
use strider_support::obs::{FakeClock, FlightEventKind, FLIGHT_CAPACITY, SKETCH_MAX_BUCKETS};

fn infected_machine() -> Machine {
    let mut m = Machine::with_base_system("victim").unwrap();
    HackerDefender::default().infect(&mut m).unwrap();
    m
}

/// A resilient policy with a 2 ms pipeline budget, polling stalled reads
/// every 100 µs on the given fake clock.
fn supervised_policy(clock: Arc<FakeClock>) -> ScanPolicy {
    ScanPolicy::resilient()
        .with_clock(clock)
        .with_poll(100_000, 0)
        .with_pipeline_budget(2_000_000)
        .with_sweep_budget(10_000_000)
}

// ---------------------------------------------------------------------
// Black boxes: a degraded pipeline ships its own evidence trail
// ---------------------------------------------------------------------

#[test]
fn degraded_pipeline_carries_a_flight_dump_ending_at_the_failure() {
    let mut m = infected_machine();
    m.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
    let clock = Arc::new(FakeClock::default());
    let gb = GhostBuster::new()
        .with_policy(supervised_policy(clock.clone()))
        .with_telemetry(Telemetry::with_clock(clock));

    let report = gb.inside_sweep(&mut m).unwrap();

    assert!(
        matches!(report.health.files, PipelineStatus::Degraded { .. }),
        "{}",
        report.health
    );
    let dump = report
        .black_box("files")
        .expect("degraded pipeline snapshots the flight recorder");
    assert!(!dump.is_empty(), "black box must not be empty");
    let last = dump.last().expect("non-empty dump has a last event");
    assert_eq!(last.kind, FlightEventKind::Mark);
    assert_eq!(last.what, "files");
    assert_eq!(
        last.detail, "pipeline degraded: operation timed out",
        "the dump ends at the failure record"
    );
    // The events leading up to it include the device-level stall the
    // injector produced — the "what happened just before" evidence.
    assert!(
        dump.events
            .iter()
            .any(|e| e.kind == FlightEventKind::Fault && e.what == "volume.read"),
        "device stall events precede the failure:\n{}",
        dump.render()
    );
    // Healthy pipelines ship no black box.
    assert!(report.black_box("registry").is_none());

    // The report's Display output surfaces the black box too.
    let rendered = report.to_string();
    assert!(
        rendered.contains("black box files:"),
        "report display mentions the black box:\n{rendered}"
    );
}

// ---------------------------------------------------------------------
// SweepMonitor: baseline comparison raises typed incidents
// ---------------------------------------------------------------------

fn fake_monitor(clock: Arc<FakeClock>) -> SweepMonitor {
    SweepMonitor::new(GhostBuster::new().with_policy(supervised_policy(clock)))
        .with_config(MonitorConfig::default().with_interval_ns(1_000_000))
}

#[test]
fn monitor_raises_an_incident_when_a_file_becomes_hidden() {
    let clock = Arc::new(FakeClock::default());
    let mut machine = Machine::with_base_system("victim").unwrap();
    let mut monitor = fake_monitor(clock);

    let baseline = monitor.record_baseline(&mut machine).unwrap();
    assert!(baseline.findings.is_empty(), "clean machine at baseline");

    // Quiet periods raise nothing.
    let calm = monitor.observe(&mut machine).unwrap();
    assert!(calm.incidents.is_empty(), "{:?}", calm.incidents);

    // Then the machine is infected between sweeps.
    HackerDefender::default().infect(&mut machine).unwrap();
    let alarmed = monitor.observe(&mut machine).unwrap();

    let hidden: Vec<_> = alarmed
        .incidents
        .iter()
        .filter_map(|i| match i {
            MonitorIncident::NewHiddenResource {
                pipeline,
                identity,
                flight,
                ..
            } => Some((pipeline.as_str(), identity.as_str(), flight)),
            _ => None,
        })
        .collect();
    assert!(
        hidden
            .iter()
            .any(|(pipeline, identity, _)| *pipeline == "files" && identity.contains("hxdef")),
        "the newly hidden file is reported: {:?}",
        alarmed.incidents
    );
    for (_, _, flight) in &hidden {
        assert!(!flight.is_empty(), "incidents carry the flight dump");
    }
    // No latency regression was injected, so none is reported.
    assert!(
        !alarmed
            .incidents
            .iter()
            .any(|i| matches!(i, MonitorIncident::LatencyRegression { .. })),
        "{:?}",
        alarmed.incidents
    );
}

#[test]
fn monitor_flags_an_injected_latency_regression() {
    let clock = Arc::new(FakeClock::default());
    let mut machine = Machine::with_base_system("victim").unwrap();
    let mut monitor = fake_monitor(clock);
    monitor.record_baseline(&mut machine).unwrap();

    // A finite stall: the file pipeline still completes (after five
    // 100 µs polls on the fake clock) but is now ~500 µs slower than the
    // instantaneous baseline — past the default 2x + 100 µs threshold.
    machine.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(5)));
    let observation = monitor.observe(&mut machine).unwrap();

    assert!(
        observation.report.health.files.is_ok(),
        "the stall resolves within budget — this is a slowdown, not an outage: {}",
        observation.report.health
    );
    let regression = observation
        .incidents
        .iter()
        .find_map(|i| match i {
            MonitorIncident::LatencyRegression {
                pipeline,
                baseline_ns,
                observed_ns,
                flight,
            } if pipeline == "files" => Some((*baseline_ns, *observed_ns, flight)),
            _ => None,
        })
        .expect("files latency regression is raised");
    let (baseline_ns, observed_ns, flight) = regression;
    assert!(
        observed_ns >= 500_000,
        "five 100 µs polls show up in the duration: {observed_ns}"
    );
    assert!(observed_ns > baseline_ns);
    assert!(
        flight
            .events
            .iter()
            .any(|e| e.kind == FlightEventKind::Fault && e.detail.contains("stalled")),
        "the incident's flight dump shows the stall:\n{}",
        flight.render()
    );
    // The rolling series saw both the calm baseline-shaped sweep and the
    // slow one.
    let series = monitor.series("files.duration_ns").expect("series exists");
    assert_eq!(series.len(), 1);
    assert!(series.last().unwrap() >= 500_000.0);
}

#[test]
fn monitor_reports_a_health_downgrade_with_the_black_box() {
    let clock = Arc::new(FakeClock::default());
    let mut machine = Machine::with_base_system("victim").unwrap();
    let mut monitor = fake_monitor(clock);
    monitor.record_baseline(&mut machine).unwrap();

    machine.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
    let observation = monitor.observe(&mut machine).unwrap();

    let downgrade = observation
        .incidents
        .iter()
        .find_map(|i| match i {
            MonitorIncident::HealthDowngrade {
                pipeline,
                reason,
                flight,
            } if pipeline == "files" => Some((reason.clone(), flight)),
            _ => None,
        })
        .expect("files health downgrade is raised");
    assert_eq!(downgrade.0, "operation timed out");
    assert!(!downgrade.1.is_empty());
}

#[test]
fn monitor_baseline_survives_a_json_round_trip_across_monitors() {
    let clock = Arc::new(FakeClock::default());
    let mut machine = Machine::with_base_system("victim").unwrap();
    let mut monitor = fake_monitor(clock.clone());
    let serialized = monitor.record_baseline(&mut machine).unwrap().serialize();

    // A fresh monitor (fleet restart) resumes from the stored snapshot and
    // still detects the infection.
    let mut resumed = fake_monitor(clock);
    resumed.set_baseline(SweepBaseline::deserialize(&serialized).unwrap());
    HackerDefender::default().infect(&mut machine).unwrap();
    let observation = resumed.observe(&mut machine).unwrap();
    assert!(
        observation
            .incidents
            .iter()
            .any(|i| matches!(i, MonitorIncident::NewHiddenResource { .. })),
        "{:?}",
        observation.incidents
    );
}

// ---------------------------------------------------------------------
// Chrome-trace export: one timeline, four pipeline threads
// ---------------------------------------------------------------------

#[test]
fn chrome_trace_distinguishes_the_four_pipeline_threads() {
    let mut m = infected_machine();
    let clock = Arc::new(FakeClock::default());
    let telemetry = Telemetry::with_clock(clock.clone());
    GhostBuster::new()
        .with_policy(supervised_policy(clock))
        .with_telemetry(telemetry.clone())
        .inside_sweep(&mut m)
        .unwrap();
    let report = telemetry.report();

    // The export round-trips through the hermetic JSON parser.
    let trace = JsonValue::parse(&report.chrome_trace().render()).unwrap();
    let events = trace.as_arr().expect("trace_event array format");
    assert!(!events.is_empty());

    let mut pipeline_tids = std::collections::BTreeMap::new();
    for event in events {
        let obj = event.as_obj().expect("every trace event is an object");
        let field = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let str_field = |k: &str| field(k).and_then(|v| v.as_str().ok());
        let ph = str_field("ph").expect("ph");
        assert!(field("pid").and_then(|v| v.as_u64().ok()).is_some(), "pid");
        let tid = field("tid").and_then(|v| v.as_u64().ok()).expect("tid");
        let name = str_field("name").expect("name");
        match ph {
            "X" => {
                assert!(field("ts").and_then(|v| v.as_f64().ok()).is_some());
                assert!(field("dur").and_then(|v| v.as_f64().ok()).is_some());
                if let Some(pipeline) = name.strip_suffix(".scan_inside") {
                    pipeline_tids.insert(pipeline.to_string(), tid);
                }
            }
            "i" => assert!(field("ts").and_then(|v| v.as_f64().ok()).is_some()),
            "M" => assert_eq!(name, "thread_name"),
            "C" => {
                // Allocation counter samples ride alongside the spans.
                assert_eq!(name, "mem");
                assert!(field("ts").and_then(|v| v.as_f64().ok()).is_some());
            }
            other => panic!("unexpected trace phase {other:?}"),
        }
    }
    assert_eq!(
        pipeline_tids.keys().collect::<Vec<_>>(),
        ["files", "modules", "processes", "registry"],
        "all four pipelines appear"
    );
    let mut tids: Vec<u64> = pipeline_tids.values().copied().collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 4, "each pipeline ran on its own thread");
}

// ---------------------------------------------------------------------
// Bounded always-on telemetry
// ---------------------------------------------------------------------

#[test]
fn a_million_samples_stay_under_the_documented_bucket_cap() {
    let telemetry = Telemetry::new();
    // Adversarial spread: ~9 decades of latencies, plus zeros.
    for i in 0..1_000_000u64 {
        let value = ((i % 997) + 1) as f64 * 10f64.powi((i % 9) as i32);
        telemetry.histogram_record("stress.latency_ns", value);
    }
    telemetry.histogram_record("stress.latency_ns", 0.0);
    let report = telemetry.report();
    let sketch = &report.histograms["stress.latency_ns"];
    assert_eq!(sketch.count(), 1_000_001);
    assert!(
        sketch.bucket_count() <= SKETCH_MAX_BUCKETS,
        "{} buckets exceeds the documented cap",
        sketch.bucket_count()
    );
    // Quantiles still answer from bounded state.
    assert!(sketch.percentile(50.0).is_some());
    assert_eq!(sketch.percentile(0.0), Some(0.0));
}

#[test]
fn flight_recorder_events_do_not_grow_the_report_json_unboundedly() {
    let clock = Arc::new(FakeClock::default());
    let telemetry = Telemetry::with_clock(clock.clone());
    let sized_render = |t: &Telemetry| {
        use strider_support::json::ToJson;
        t.report().to_json().render().len()
    };

    for i in 0..FLIGHT_CAPACITY {
        clock.advance(10);
        telemetry.recorder().mark("warmup", &format!("event {i}"));
    }
    let after_fill = sized_render(&telemetry);

    // Ten more rings' worth of events: the ring overwrites, the report
    // JSON stays the same size (modulo timestamp digit drift).
    for i in 0..FLIGHT_CAPACITY * 10 {
        clock.advance(10);
        telemetry.recorder().mark("steady", &format!("event {i}"));
    }
    let after_flood = sized_render(&telemetry);

    let report = telemetry.report();
    assert_eq!(report.flight.len(), FLIGHT_CAPACITY, "capacity respected");
    assert_eq!(report.flight.dropped, (FLIGHT_CAPACITY * 10) as u64);
    assert!(
        after_flood < after_fill + after_fill / 5,
        "report JSON must not grow with event volume: {after_fill} -> {after_flood}"
    );
}
