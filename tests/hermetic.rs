//! Hermeticity guard: the build must never reach for a registry.
//!
//! The workspace is intentionally zero-dependency — every crate depends
//! only on sibling path crates (ultimately on `strider-support`, which has
//! no dependencies at all). This test walks every `Cargo.toml` in the
//! repository and fails if any dependency section names a crate without a
//! `path` (directly or via `workspace = true` into a path-only
//! `[workspace.dependencies]` table), i.e. anything that would make
//! `cargo build --offline` need crates.io.

use std::fs;
use std::path::{Path, PathBuf};

fn manifest_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable directory") {
        let entry = entry.expect("readable entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` holds vendored fingerprints; `.git` is not ours to scan.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_manifests(&path, out);
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// The dependency-table headers whose entries we audit. `[package]` keys
/// like `version.workspace = true` are inheritance, not dependencies, and
/// are skipped by only looking inside these sections.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn is_dep_section(header: &str) -> bool {
    DEP_SECTIONS.contains(&header)
        || header.strip_prefix("target.").is_some_and(|rest| {
            rest.split('.')
                .next_back()
                .is_some_and(|s| DEP_SECTIONS.contains(&s))
        })
}

#[test]
fn every_dependency_is_a_workspace_path() {
    let mut manifests = Vec::new();
    collect_manifests(&manifest_root(), &mut manifests);
    assert!(
        manifests.len() >= 13,
        "expected the root + all crate manifests, found {}",
        manifests.len()
    );

    let mut offending = Vec::new();
    for manifest in &manifests {
        let text = fs::read_to_string(manifest).expect("readable manifest");
        let mut in_dep_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                in_dep_section = is_dep_section(header.trim());
                continue;
            }
            if !in_dep_section {
                continue;
            }
            // Every entry must be `name = { path = ... }`, a bare
            // `name.path = ...`, or `name.workspace = true` /
            // `name = { workspace = true }`.
            let hermetic = line.contains("path =")
                || line.contains("path=")
                || line.contains("workspace = true")
                || line.contains("workspace=true");
            if !hermetic {
                offending.push(format!(
                    "{}:{}: {}",
                    manifest.display(),
                    lineno + 1,
                    raw.trim()
                ));
            }
        }
    }

    assert!(
        offending.is_empty(),
        "non-path dependencies found (these would break the offline build):\n{}",
        offending.join("\n")
    );
}

#[test]
fn every_crate_directory_is_audited() {
    // The workspace members glob (`crates/*`) only picks up directories
    // with manifests; a crate vendored without one — or a manifest the
    // audit walk somehow skips — would dodge the dependency audit above.
    let root = manifest_root();
    let mut manifests = Vec::new();
    collect_manifests(&root, &mut manifests);
    for entry in fs::read_dir(root.join("crates")).expect("crates dir") {
        let entry = entry.expect("readable entry");
        if !entry.path().is_dir() {
            continue;
        }
        let manifest = entry.path().join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "{} has no Cargo.toml — the workspace glob would skip it",
            entry.path().display()
        );
        assert!(
            manifests.contains(&manifest),
            "{} escaped the hermeticity audit walk",
            manifest.display()
        );
    }
}

#[test]
fn support_crate_declares_every_replacement_module() {
    // The support crate is the in-tree replacement for the external
    // ecosystem; each capability the workspace leans on must exist as a
    // `pub mod` so a future refactor cannot silently drop one (the fault
    // module, for instance, is the seam the whole resilience layer and its
    // CI stage hang off).
    let lib = manifest_root().join("crates/support/src/lib.rs");
    let text = fs::read_to_string(&lib).expect("support lib.rs");
    for module in [
        "json", "bytes", "sync", "rng", "check", "bench", "obs", "prof", "fault", "task", "alert",
        "store",
    ] {
        assert!(
            text.contains(&format!("pub mod {module};")),
            "strider-support lost its `{module}` module"
        );
    }
}

#[test]
fn evasion_seam_modules_stay_declared() {
    // The adversarial arms race spans three crates: the observation tap
    // the ghostware senses through, the evasive samples themselves, and
    // the scanner-side hardening plumbing. A refactor that drops any of
    // these modules silently disarms `tests/evasion_matrix.rs`.
    for (lib, module) in [
        ("crates/winapi/src/lib.rs", "tap"),
        ("crates/ghostware/src/lib.rs", "evasive"),
        ("crates/core/src/lib.rs", "harden"),
    ] {
        let text = fs::read_to_string(manifest_root().join(lib)).expect("readable lib.rs");
        assert!(
            text.contains(&format!("mod {module};")),
            "{lib} lost its `{module}` module"
        );
    }
}

#[test]
fn support_crate_has_no_dependencies_at_all() {
    let manifest = manifest_root().join("crates/support/Cargo.toml");
    let text = fs::read_to_string(&manifest).expect("support manifest");
    let mut in_dep_section = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_dep_section = is_dep_section(header.trim());
            continue;
        }
        assert!(
            !in_dep_section || line.is_empty(),
            "strider-support must stay dependency-free, found: {raw}"
        );
    }
}
