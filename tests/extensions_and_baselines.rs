//! Section 5 extensions and baseline comparisons, exercised across crates.

use strider_ghostbuster_repro::prelude::*;

fn victim(seed: u64) -> Machine {
    standard_lab_machine("victim", &WorkloadSpec::small(seed), false).expect("machine builds")
}

#[test]
fn injection_turns_every_process_into_a_ghostbuster() {
    let mut m = victim(1);
    UtilityTargetedHider::default()
        .infect(&mut m)
        .expect("infects");
    m.spawn_process("tlist.exe", "C:\\windows\\system32\\tlist.exe")
        .expect("spawns");

    // The plain tool is not a target and sees no lie.
    assert!(!GhostBuster::new()
        .inside_sweep(&mut m)
        .expect("sweep")
        .is_infected());

    // Injected: the targeted utilities' views disagree with the truth.
    let report = injected_sweep(&m).expect("sweeps");
    assert!(report.is_infected());
    let hosts: Vec<&str> = report
        .lied_to()
        .iter()
        .map(|r| r.host_image.as_str())
        .collect();
    assert!(hosts.contains(&"tlist.exe"));
    assert!(hosts.contains(&"explorer.exe"));
    // Non-targeted processes saw the truth.
    assert!(!hosts.contains(&"csrss.exe"));
}

#[test]
fn scanner_aware_hider_beaten_by_injection_into_the_av_scanner() {
    let mut m = victim(2);
    ScannerAwareHider::default()
        .infect(&mut m)
        .expect("infects");
    let inocit = m
        .ensure_process("InocIT.exe", "C:\\Program Files\\eTrust\\InocIT.exe")
        .expect("spawn");

    // The signature scanner alone: blind (the files are hidden from it).
    let hits = SignatureScanner::with_default_database()
        .scan(&m, &inocit)
        .expect("scan");
    assert!(!hits.iter().any(|h| h.signature.contains("Sneaky")));

    // GhostBuster DLL injected into InocIT.exe: the diff from its context.
    let files = FileScanner::new();
    let truth = files.low_scan(&m).expect("low");
    let lie = files
        .high_scan(&m, &inocit, ChainEntry::Win32)
        .expect("high");
    let report = files.diff(&truth, &lie);
    assert!(report
        .net_detections()
        .iter()
        .any(|d| d.detail.contains("sneaky.exe")));
}

#[test]
fn mass_hiding_innocents_makes_detection_easier_not_harder() {
    let mut m = victim(3);
    let hider = FileHider::advanced_hide_folders()
        .with_targets(vec!["c:\\program files".into(), "c:\\temp".into()]);
    hider.infect(&mut m).expect("infects");
    let report = GhostBuster::new().scan_files_inside(&mut m).expect("scan");
    assert!(
        report.net_detections().len() > 50,
        "a large hidden-file count is a serious anomaly: {}",
        report.net_detections().len()
    );
}

#[test]
fn hook_scanner_false_positive_on_benign_wrapper_cross_view_silent() {
    let mut m = victim(4);
    install_benign_wrapper(&mut m, "detours-app");
    assert_eq!(HookScanner::new().scan(&m).len(), 1);
    assert!(!GhostBuster::new()
        .inside_sweep(&mut m)
        .expect("sweep")
        .is_infected());
}

#[test]
fn cross_time_diff_catches_nonhiding_malware_that_cross_view_cannot() {
    // A dropper that does NOT hide: cross-view is silent by design (there
    // is no lie), cross-time reports the new files.
    let mut m = victim(5);
    let ct = CrossTimeDiff::new();
    let baseline = ct.checkpoint(&m);
    m.tick(1);
    m.volume_mut()
        .create_file(
            &"C:\\windows\\system32\\dropper.exe".parse().unwrap(),
            b"MZ bad",
        )
        .unwrap();
    let sweep = GhostBuster::new().inside_sweep(&mut m).expect("sweep");
    assert!(!sweep.is_infected(), "nothing is hidden");
    let changes = ct.diff(&m, &baseline);
    assert!(changes.added.iter().any(|p| p.contains("dropper.exe")));
}

#[test]
fn naming_trick_registry_value_detected_inside() {
    let mut m = victim(6);
    NamingTrick.infect(&mut m).expect("infects");
    let report = GhostBuster::new()
        .scan_registry_inside(&mut m)
        .expect("scan");
    assert!(
        report
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("\\0")),
        "the NUL-embedded Run value must be flagged: {report}"
    );
}

#[test]
fn unix_and_windows_detectors_share_the_framework() {
    // The same seed produces both a Windows and a Unix detection run.
    let mut w = victim(7);
    HackerDefender::default().infect(&mut w).expect("hxdef");
    assert!(GhostBuster::new()
        .inside_sweep(&mut w)
        .expect("sweep")
        .is_infected());

    let mut u = UnixMachine::with_base_system("ux");
    Superkit.infect(&mut u);
    let lie = u.ls_scan_all();
    assert!(UnixGhostBuster::new().outside_diff(&u, &lie).is_infected());
}
