//! Supervised-sweep integration tests: deadlines against stalled devices,
//! cooperative cancellation, circuit breakers, and checkpoint/resume.
//!
//! The scenario behind all of them: a truth source that never answers. A
//! transient fault fails fast and retries; a *stall* simply never completes,
//! and an unsupervised detector waits on it forever — the ghostware wins by
//! denial of service. The supervised sweep engine bounds every pipeline with
//! a deadline, observes a cancellation token at each loop iteration, trips a
//! circuit breaker on repeated failures, and checkpoints finished pipelines
//! so a killed sweep resumes where it left off. Every test runs on a
//! [`FakeClock`]: polls advance simulated time, so "two seconds of stalling"
//! costs microseconds of wall clock.

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::obs::{Clock, FakeClock};

fn infected_machine() -> Machine {
    let mut m = Machine::with_base_system("victim").unwrap();
    HackerDefender::default().infect(&mut m).unwrap();
    m
}

/// A resilient policy with a 2 ms pipeline budget, polling stalled reads
/// every 100 µs on the given fake clock.
fn supervised_policy(clock: Arc<FakeClock>) -> ScanPolicy {
    ScanPolicy::resilient()
        .with_clock(clock)
        .with_poll(100_000, 0)
        .with_pipeline_budget(2_000_000)
        .with_sweep_budget(10_000_000)
}

// ---------------------------------------------------------------------
// Deadlines: a permanently stalled truth source costs one pipeline, not
// the sweep
// ---------------------------------------------------------------------

#[test]
fn stalled_volume_times_out_one_pipeline_within_its_budget() {
    let mut m = infected_machine();
    m.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
    let clock = Arc::new(FakeClock::default());
    let telemetry = Telemetry::new();
    let gb = GhostBuster::new()
        .with_policy(supervised_policy(clock.clone()))
        .with_telemetry(telemetry.clone());

    let report = gb.inside_sweep(&mut m).unwrap();

    // Only the file pipeline is lost, with the timeout as its cause.
    assert_eq!(
        report.health.files,
        PipelineStatus::Degraded {
            reason: "operation timed out".to_string()
        }
    );
    assert!(report.health.registry.is_ok(), "{}", report.health);
    assert!(report.health.processes.is_ok(), "{}", report.health);
    assert!(report.health.modules.is_ok(), "{}", report.health);
    // The other pipelines still produced findings.
    assert!(report.hooks.has_detections());
    assert!(report.processes.has_detections());

    // The sweep completed within the file pipeline's budget (plus at most
    // one poll interval of overshoot) — it did not wait out the stall.
    assert!(
        clock.now_ns() <= 2_100_000,
        "sweep finished at {} ns",
        clock.now_ns()
    );

    let tel = telemetry.report();
    assert_eq!(tel.counters["sweep.timeouts"], 1);
    assert_eq!(tel.counters["sweep.degraded.files"], 1);
    assert!(!tel.counters.contains_key("sweep.degraded.registry"));
}

#[test]
fn finite_stall_is_waited_out_under_the_deadline() {
    let mut m = infected_machine();
    m.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(5)));
    let clock = Arc::new(FakeClock::default());
    let gb = GhostBuster::new().with_policy(supervised_policy(clock.clone()));
    let report = gb.inside_sweep(&mut m).unwrap();
    assert!(report.health.is_all_ok(), "{}", report.health);
    assert!(
        report.files.has_detections(),
        "the slow read still answered"
    );
    assert_eq!(clock.now_ns(), 500_000, "five polls at 100 µs each");
}

// ---------------------------------------------------------------------
// Cancellation: cooperative, observed at the next checkpoint
// ---------------------------------------------------------------------

#[test]
fn cancelled_token_degrades_every_pipeline_without_scanning() {
    let mut m = infected_machine();
    let token = CancellationToken::new();
    token.cancel();
    let telemetry = Telemetry::new();
    let gb = GhostBuster::new()
        .with_policy(ScanPolicy::resilient())
        .with_telemetry(telemetry.clone())
        .with_cancellation(token);
    let report = gb.inside_sweep(&mut m).unwrap();
    for status in [
        &report.health.files,
        &report.health.registry,
        &report.health.processes,
        &report.health.modules,
    ] {
        assert_eq!(
            *status,
            PipelineStatus::Degraded {
                reason: "operation cancelled".to_string()
            }
        );
    }
    assert_eq!(report.suspicious_count(), 0, "no pipeline got to scan");
    let tel = telemetry.report();
    let sweep = tel.find_span("sweep.inside").unwrap();
    assert!(
        sweep.attr("cancelled_at").is_some(),
        "the sweep span records where cancellation was observed"
    );
}

#[test]
fn cancellation_mid_stall_stops_the_poll_loop() {
    // A stalled read is being polled; cancelling the token is observed at
    // the next poll checkpoint even though no deadline is set.
    let m = {
        let mut m = infected_machine();
        m.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
        m
    };
    let clock = Arc::new(FakeClock::default());
    let token = CancellationToken::new();
    // Cancel "from outside" after ~0.5 ms of simulated polling: a watcher
    // thread waits for the fake clock to reach the mark.
    let watcher = {
        let clock = clock.clone();
        let token = token.clone();
        std::thread::spawn(move || {
            while clock.now_ns() < 500_000 {
                std::thread::yield_now();
            }
            token.cancel();
        })
    };
    let scanner = FileScanner::new()
        .with_policy(
            ScanPolicy::resilient()
                .with_clock(clock.clone())
                .with_poll(100_000, u32::MAX),
        )
        .with_supervision(Supervision::new(token, None));
    let err = scanner.low_scan(&m).unwrap_err();
    watcher.join().unwrap();
    assert_eq!(err, NtStatus::Cancelled);
}

// ---------------------------------------------------------------------
// Circuit breakers: repeated pipeline failures stop hammering the device
// ---------------------------------------------------------------------

#[test]
fn breaker_trips_after_threshold_and_admits_a_probe_after_cooldown() {
    let mut m = infected_machine();
    m.set_fault_injector(FaultInjector::new().stall_hive_reads(Stall::forever()));
    let clock = Arc::new(FakeClock::default());
    let telemetry = Telemetry::new();
    let gb = GhostBuster::new()
        .with_policy(supervised_policy(clock.clone()).with_breaker(2, 50_000_000))
        .with_telemetry(telemetry.clone());
    assert!(gb.breakers().is_some(), "policy armed the breakers");

    // Sweeps 1 and 2: the registry pipeline burns its full budget timing
    // out; the second failure trips the breaker.
    for _ in 0..2 {
        let report = gb.inside_sweep(&mut m).unwrap();
        assert!(report.health.registry.is_degraded());
    }
    assert_eq!(
        gb.breakers().unwrap().state_of("registry"),
        Some(BreakerState::Open)
    );
    assert_eq!(telemetry.report().counters["breaker.open"], 1);

    // Sweep 3: the open breaker rejects the pipeline instantly — no budget
    // is spent waiting on the stalled device again.
    let before = clock.now_ns();
    let report = gb.inside_sweep(&mut m).unwrap();
    assert_eq!(
        report.health.registry,
        PipelineStatus::Degraded {
            reason: "circuit breaker open".to_string()
        }
    );
    assert_eq!(
        clock.now_ns(),
        before,
        "a rejected pipeline never touches the device"
    );
    assert!(report.health.files.is_ok(), "other pipelines unaffected");

    // After the cool-down the breaker admits one half-open probe; the
    // device is still stalled, so the probe fails and it re-opens.
    clock.advance(50_000_000);
    assert_eq!(
        gb.breakers().unwrap().state_of("registry"),
        Some(BreakerState::HalfOpen)
    );
    let report = gb.inside_sweep(&mut m).unwrap();
    assert_eq!(
        report.health.registry,
        PipelineStatus::Degraded {
            reason: "operation timed out".to_string()
        },
        "the probe ran (and timed out) rather than being rejected"
    );
    assert_eq!(
        gb.breakers().unwrap().state_of("registry"),
        Some(BreakerState::Open)
    );
}

// ---------------------------------------------------------------------
// Checkpoint/resume: finished pipelines are never re-run
// ---------------------------------------------------------------------

#[test]
fn interrupted_pipeline_is_not_checkpointed_and_reruns_on_resume() {
    let mut m = infected_machine();
    m.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
    let clock = Arc::new(FakeClock::default());
    let gb = GhostBuster::new().with_policy(supervised_policy(clock.clone()));

    // Sweep 1: files times out; the other three pipelines finish and are
    // checkpointed. The timed-out pipeline is *not* — a timeout is a reason
    // to re-run, not a result.
    let mut checkpoint = SweepCheckpoint::new(&m);
    let first = gb
        .inside_sweep_checkpointed(&mut m, &mut checkpoint)
        .unwrap();
    assert!(first.health.registry.is_ok());
    assert!(checkpoint.files.is_none(), "interrupted: not checkpointed");
    assert!(checkpoint.registry.is_some());
    assert!(checkpoint.processes.is_some());
    assert!(checkpoint.modules.is_some());
    assert_eq!(checkpoint.unfinished(), vec!["files"]);

    // The checkpoint survives serialization (the form a killed sweep
    // leaves on disk).
    let restored = SweepCheckpoint::deserialize(&checkpoint.serialize()).unwrap();
    assert_eq!(restored, checkpoint);

    // The stalled device recovers; resume re-runs only the file pipeline.
    m.clear_fault_injector();
    let telemetry = Telemetry::new();
    let gb2 = GhostBuster::new()
        .with_policy(supervised_policy(clock))
        .with_telemetry(telemetry.clone());
    let mut restored = restored;
    let resumed = gb2.resume(&mut m, &mut restored).unwrap();
    assert!(resumed.health.is_all_ok(), "{}", resumed.health);
    assert!(restored.is_complete());

    // Telemetry proves the checkpointed pipelines were skipped: only the
    // file pipeline emitted a scan span under this sweep.
    let tel = telemetry.report();
    let sweep = tel.find_span("sweep.inside").unwrap();
    assert!(sweep.child("files.scan_inside").is_some());
    for skipped in [
        "registry.scan_inside",
        "processes.scan_inside",
        "modules.scan_inside",
    ] {
        assert!(sweep.child(skipped).is_none(), "{skipped} must be skipped");
    }

    // The stitched-together report matches an uninterrupted sweep.
    let full = GhostBuster::new()
        .with_policy(ScanPolicy::resilient())
        .inside_sweep(&mut m)
        .unwrap();
    assert_eq!(resumed.files, full.files);
    assert_eq!(resumed.hooks, full.hooks);
    assert_eq!(resumed.processes, full.processes);
    assert_eq!(resumed.modules, full.modules);
    assert_eq!(resumed.health, full.health);
}

#[test]
fn checkpoint_after_two_pipelines_resumes_into_an_identical_report() {
    // The on-disk shape a sweep killed after two pipelines leaves behind:
    // files and registry recorded, processes and modules still to run.
    let mut m = infected_machine();
    let gb = GhostBuster::new().with_policy(ScanPolicy::resilient());
    let mut checkpoint = SweepCheckpoint::new(&m);
    let full = gb
        .inside_sweep_checkpointed(&mut m, &mut checkpoint)
        .unwrap();
    checkpoint.processes = None;
    checkpoint.modules = None;
    assert_eq!(checkpoint.unfinished(), vec!["processes", "modules"]);

    // Round-trip through JSON, then resume with a fresh detector.
    let mut restored = SweepCheckpoint::deserialize(&checkpoint.serialize()).unwrap();
    let telemetry = Telemetry::new();
    let gb2 = GhostBuster::new()
        .with_policy(ScanPolicy::resilient())
        .with_telemetry(telemetry.clone());
    let resumed = gb2.resume(&mut m, &mut restored).unwrap();

    assert_eq!(resumed.files, full.files);
    assert_eq!(resumed.hooks, full.hooks);
    assert_eq!(resumed.processes, full.processes);
    assert_eq!(resumed.modules, full.modules);
    assert_eq!(resumed.health, full.health);
    assert!(resumed.is_infected());

    let tel = telemetry.report();
    let sweep = tel.find_span("sweep.inside").unwrap();
    assert!(sweep.child("files.scan_inside").is_none());
    assert!(sweep.child("registry.scan_inside").is_none());
    assert!(sweep.child("processes.scan_inside").is_some());
    assert!(sweep.child("modules.scan_inside").is_some());
}

#[test]
fn resume_rejects_a_checkpoint_from_another_machine() {
    let mut other = Machine::with_base_system("other").unwrap();
    let checkpoint = SweepCheckpoint::new(&other);
    let mut m = infected_machine();
    let mut cp = checkpoint;
    let err = GhostBuster::new().resume(&mut m, &mut cp).unwrap_err();
    assert_eq!(err, NtStatus::InvalidParameter);
    // The right machine accepts it.
    assert!(GhostBuster::new().resume(&mut other, &mut cp).is_ok());
}

// ---------------------------------------------------------------------
// Panic isolation: a crashing parser degrades one pipeline
// ---------------------------------------------------------------------

#[test]
fn pipelines_run_isolated_from_scanner_panics() {
    // Directly exercise the isolation seam the sweep runs every pipeline
    // behind: the panic is converted to an error, not propagated.
    let result = strider_support::sync::run_isolated("boom", || -> u32 {
        panic!("parser invariant violated")
    });
    assert_eq!(result.unwrap_err(), "parser invariant violated");
}
