//! Fault-injection integration tests: retries against transient device
//! failures, salvage-mode scans over corrupted truth sources, stabilization
//! against scan-gap flicker, and graceful per-pipeline degradation.
//!
//! The driving scenario is the paper's own operating reality: GhostBuster
//! runs on live, possibly half-broken machines, and a detector that aborts
//! on the first bad sector protects the ghostware better than the user.
//! Every test here is deterministic — transient faults count down, fault
//! plans are seeded, and backoff runs against a [`FakeClock`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::FaultPlan;
use strider_support::obs::{Clock, FakeClock};

fn infected_machine() -> Machine {
    let mut m = Machine::with_base_system("victim").unwrap();
    HackerDefender::default().infect(&mut m).unwrap();
    m
}

fn hook_identities(report: &DiffReport) -> Vec<String> {
    let mut ids: Vec<String> = report
        .net_detections()
        .iter()
        .map(|d| d.identity.clone())
        .collect();
    ids.sort();
    ids
}

// ---------------------------------------------------------------------
// Transient faults + retry backoff
// ---------------------------------------------------------------------

#[test]
fn fault_transient_volume_reads_are_retried_on_a_fake_clock() {
    let mut m = Machine::with_base_system("t").unwrap();
    m.set_fault_injector(FaultInjector::new().fail_volume_reads(2));
    let clock = Arc::new(FakeClock::default());
    let scanner = FileScanner::new().with_policy(ScanPolicy::resilient().with_clock(clock.clone()));
    let snap = scanner.low_scan(&m).unwrap();
    assert!(
        !snap.is_empty(),
        "scan succeeded after two transient failures"
    );
    assert_eq!(
        clock.now_ns(),
        3_000_000,
        "exactly 1 ms + 2 ms of backoff, nothing more"
    );
}

#[test]
fn fault_strict_policy_fails_fast_on_transient_reads() {
    let mut m = Machine::with_base_system("t").unwrap();
    m.set_fault_injector(FaultInjector::new().fail_volume_reads(1));
    let err = FileScanner::new().low_scan(&m).unwrap_err();
    assert_eq!(err, NtStatus::DeviceNotReady);
    // The countdown was consumed: a second attempt succeeds.
    assert!(FileScanner::new().low_scan(&m).is_ok());
}

#[test]
fn fault_transient_hive_reads_are_retried() {
    let mut m = infected_machine();
    m.set_fault_injector(FaultInjector::new().fail_hive_reads(3));
    let clock = Arc::new(FakeClock::default());
    let scanner =
        RegistryScanner::new().with_policy(ScanPolicy::resilient().with_clock(clock.clone()));
    let snap = scanner.low_scan(&m).unwrap();
    assert!(!snap.is_empty());
    assert!(clock.now_ns() > 0, "backoff was actually taken");
}

// ---------------------------------------------------------------------
// Salvage: corrupted truth sources keep the sweep useful
// ---------------------------------------------------------------------

#[test]
fn fault_sweep_with_corrupted_hive_bin_still_reports_surviving_aseps() {
    // Baseline: which ASEP hooks does a clean-read sweep report?
    let mut m = infected_machine();
    let baseline = GhostBuster::new().inside_sweep(&mut m).unwrap();
    let expected = hook_identities(&baseline.hooks);
    assert!(!expected.is_empty(), "hxdef hides service hooks");

    // Damage a 64-byte run in the middle of the SOFTWARE hive copy. The
    // hxdef hooks live in SYSTEM\CurrentControlSet\Services, a different
    // hive file, so salvage must keep them reachable.
    let software: NtPath = "HKLM\\SOFTWARE".parse().unwrap();
    let len = m.copy_hive_bytes(&software).unwrap().len();
    m.set_fault_injector(
        FaultInjector::new().corrupt_hive(software, FaultPlan::new(7).zero_range(len / 3, 64)),
    );

    let telemetry = Telemetry::new();
    let report = GhostBuster::new()
        .with_policy(ScanPolicy::resilient())
        .with_telemetry(telemetry.clone())
        .inside_sweep(&mut m)
        .unwrap();

    assert_eq!(
        hook_identities(&report.hooks),
        expected,
        "every hidden ASEP from undamaged bins is still reported"
    );
    let defects = report.health.registry.defect_count();
    assert!(
        defects > 0,
        "the damaged bin surfaced as defects: {:?}",
        report.health.registry
    );
    assert!(!report.health.is_all_ok());
    assert!(
        report.health.degraded_pipelines().is_empty(),
        "salvaged, not lost"
    );
    // The counter accumulates across stabilization passes, so it is some
    // multiple of the per-pass defect count health reports.
    let counted = telemetry.report().counters["registry.defects"];
    assert!(
        counted >= defects && counted.is_multiple_of(defects),
        "{counted} vs {defects}"
    );
    let rendered = report.to_string();
    assert!(rendered.contains("health:"), "{rendered}");
    assert!(rendered.contains("salvaged"), "{rendered}");
}

#[test]
fn fault_salvage_reads_through_a_truncated_volume_image() {
    let mut m = infected_machine();
    // Chop the tail off every raw volume read: the strict parser refuses,
    // salvage keeps the prefix.
    m.set_fault_injector(FaultInjector::new().corrupt_volume(FaultPlan::new(3).truncate_to(0.9)));
    assert!(FileScanner::new().low_scan(&m).is_err(), "strict refuses");
    let scanner = FileScanner::new().with_policy(ScanPolicy::resilient());
    let snap = scanner.low_scan(&m).unwrap();
    assert!(!snap.is_empty(), "the surviving prefix still parses");
    assert!(snap.meta.io.defects > 0, "the lost tail is accounted for");
}

// ---------------------------------------------------------------------
// Degradation: an unrecoverable truth source loses one pipeline, not four
// ---------------------------------------------------------------------

#[test]
fn fault_unrecoverable_volume_degrades_only_the_files_pipeline() {
    let mut m = infected_machine();
    let baseline = GhostBuster::new().inside_sweep(&mut m).unwrap();
    assert!(baseline.health.is_all_ok());
    assert!(baseline.files.has_detections());

    // Destroy the image header on every read: no retry or salvage level
    // can recover a volume whose magic is gone. (Strict policy: the old
    // behavior would have failed the whole sweep.)
    m.set_fault_injector(FaultInjector::new().corrupt_volume(FaultPlan::new(1).zero_range(0, 16)));
    let report = GhostBuster::new().inside_sweep(&mut m).unwrap();

    assert!(
        report.health.files.is_degraded(),
        "{:?}",
        report.health.files
    );
    assert_eq!(report.health.degraded_pipelines(), vec!["files"]);
    assert!(report.files.net_detections().is_empty());
    // The other three pipelines are byte-for-byte the clean baseline.
    assert_eq!(
        hook_identities(&report.hooks),
        hook_identities(&baseline.hooks)
    );
    assert_eq!(
        hook_identities(&report.processes),
        hook_identities(&baseline.processes)
    );
    assert_eq!(
        hook_identities(&report.modules),
        hook_identities(&baseline.modules)
    );
    let rendered = report.to_string();
    assert!(rendered.contains("DEGRADED"), "{rendered}");
}

#[test]
fn fault_dead_dump_degrades_the_volatile_pipelines_of_the_winpe_flow() {
    let mut m = infected_machine();
    // The dump device never comes back: more failures than any retry
    // budget. Disk-based pipelines must still complete.
    m.set_fault_injector(FaultInjector::new().fail_dump_reads(100));
    let clock = Arc::new(FakeClock::default());
    let report = GhostBuster::new()
        .with_policy(ScanPolicy::resilient().with_clock(clock))
        .winpe_outside_sweep(&mut m, 150)
        .unwrap();

    assert!(report.health.processes.is_degraded());
    assert!(report.health.modules.is_degraded());
    assert_eq!(
        report.health.degraded_pipelines(),
        vec!["processes", "modules"]
    );
    assert!(
        report
            .files
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("hxdef100.exe")),
        "the file pipeline still catches hxdef from the disk image"
    );
    assert!(report.hooks.has_detections());
}

// ---------------------------------------------------------------------
// Stabilization: scan-gap flicker vs a consistent lie
// ---------------------------------------------------------------------

/// A machine with a hook that hides `flicker.txt` from exactly one
/// enumeration — transient churn, not a resident hider.
fn machine_with_one_shot_hider() -> Machine {
    let mut m = Machine::with_base_system("victim").unwrap();
    m.volume_mut()
        .create_file(&"C:\\flicker.txt".parse().unwrap(), b"x")
        .unwrap();
    let armed = Arc::new(AtomicBool::new(true));
    m.install_ntdll_hook(
        "one-shot",
        vec![QueryKind::Files],
        HookScope::All,
        Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
            let present = rows
                .iter()
                .any(|r| r.name().to_win32_lossy().contains("flicker"));
            if present && armed.swap(false, Ordering::SeqCst) {
                return rows
                    .into_iter()
                    .filter(|r| !r.name().to_win32_lossy().contains("flicker"))
                    .collect();
            }
            rows
        }),
    );
    m
}

#[test]
fn fault_single_pass_sweep_reports_one_shot_flicker() {
    let mut m = machine_with_one_shot_hider();
    let report = GhostBuster::new().inside_sweep(&mut m).unwrap();
    assert!(
        report
            .files
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("flicker")),
        "without stabilization the transient lie is (wrongly) reported"
    );
}

#[test]
fn fault_stabilization_passes_filter_out_one_shot_flicker() {
    let mut m = machine_with_one_shot_hider();
    let report = GhostBuster::new()
        .with_policy(ScanPolicy::strict().with_stabilization(3))
        .inside_sweep(&mut m)
        .unwrap();
    assert!(
        !report
            .files
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("flicker")),
        "two agreeing passes outvote the flicker"
    );
}

#[test]
fn fault_stabilization_keeps_a_consistent_hider_visible() {
    let mut m = infected_machine();
    let report = GhostBuster::new()
        .with_policy(ScanPolicy::resilient())
        .inside_sweep(&mut m)
        .unwrap();
    assert!(
        report
            .files
            .net_detections()
            .iter()
            .any(|d| d.detail.contains("hxdef100.exe")),
        "a resident rootkit lies identically on every pass"
    );
    assert!(report.is_infected());
    assert!(report.health.is_all_ok());
}
