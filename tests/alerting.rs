//! Alerting-plane integration tests: declarative alert rules riding the
//! sweep monitor, `for_ns` hysteresis on the fake clock, absence rules
//! catching stalled heartbeats, and the Prometheus-text exposition files
//! operators scrape.
//!
//! Everything runs on a [`FakeClock`], so the Pending→Firing→Resolved
//! lifecycle is a pure function of the scenario: a stall advances
//! simulated time by exactly five 100 µs polls, and a rule with a 2.5 ms
//! hold fires on exactly the pass where the breach has been sustained
//! that long.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::obs::{Clock, FakeClock, FlightEventKind, FlightRecorder};

fn supervised_policy(clock: Arc<FakeClock>) -> ScanPolicy {
    ScanPolicy::resilient()
        .with_clock(clock)
        .with_poll(100_000, 0)
        .with_pipeline_budget(2_000_000)
        .with_sweep_budget(10_000_000)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strider-{name}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A finite volume stall: five 100 µs polls, so the files pipeline
/// completes ~500 µs slower than the instantaneous baseline. Re-armed
/// before every sweep so each pass sees the same slowdown.
fn arm_stall(machine: &mut Machine) {
    machine.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(5)));
}

// ---------------------------------------------------------------------
// The headline lifecycle: a hand-written rule with hysteresis fires
// deterministically, leaves evidence everywhere, and resolves
// ---------------------------------------------------------------------

#[test]
fn custom_rule_with_hysteresis_fires_and_resolves_deterministically() {
    let clock = Arc::new(FakeClock::default());
    let mut machine = Machine::with_base_system("victim").unwrap();
    let mut monitor =
        SweepMonitor::new(GhostBuster::new().with_policy(supervised_policy(clock.clone())))
            .with_rule(
                AlertRule::new(
                    "slow_files",
                    "files.duration_ns",
                    AlertCondition::Above(400_000.0),
                )
                .with_for_ns(2_500_000)
                .with_severity(Severity::Critical),
            );
    monitor.record_baseline(&mut machine).unwrap();

    // Pass 1 (t≈0): the stall pushes files.duration_ns to ~500 µs. The
    // rule is breached but held by `for_ns`: Pending, not Firing.
    arm_stall(&mut machine);
    let pass1 = monitor.observe(&mut machine).unwrap();
    assert_eq!(
        monitor.alerts().state("slow_files"),
        Some(AlertState::Pending)
    );
    assert!(!monitor.alerts().is_firing("slow_files"));
    assert!(
        pass1
            .transitions
            .iter()
            .any(|t| t.rule == "slow_files" && t.to == AlertState::Pending),
        "{:?}",
        pass1.transitions
    );

    // Pass 2, one simulated millisecond later: the breach has been held
    // ~1.5 ms < 2.5 ms. Hysteresis: still Pending, never Firing early.
    clock.advance(1_000_000);
    arm_stall(&mut machine);
    let pass2 = monitor.observe(&mut machine).unwrap();
    assert_eq!(
        monitor.alerts().state("slow_files"),
        Some(AlertState::Pending)
    );
    assert!(
        pass2.transitions.iter().all(|t| t.rule != "slow_files"),
        "no transition while the hold is running: {:?}",
        pass2.transitions
    );

    // Pass 3, another millisecond on: the breach has now been sustained
    // ~3.0 ms ≥ 2.5 ms — the rule fires on exactly this pass.
    clock.advance(1_000_000);
    arm_stall(&mut machine);
    let pass3 = monitor.observe(&mut machine).unwrap();
    assert!(monitor.alerts().is_firing("slow_files"));
    let firing = pass3
        .transitions
        .iter()
        .find(|t| t.rule == "slow_files")
        .expect("the pending→firing transition is reported");
    assert_eq!(firing.from, AlertState::Pending);
    assert_eq!(firing.to, AlertState::Firing);
    assert_eq!(firing.severity, Severity::Critical);

    // The same transition is durable in the alert log…
    assert!(
        monitor
            .alert_log()
            .entries()
            .any(|t| t.rule == "slow_files" && t.to == AlertState::Firing),
        "{:?}",
        monitor.alert_log().entries().collect::<Vec<_>>()
    );
    // …and visible in the sweep's own flight dump, next to the fault
    // events that caused it.
    let flight = pass3
        .report
        .telemetry
        .as_ref()
        .expect("monitored sweeps carry telemetry")
        .flight
        .clone();
    assert!(
        flight
            .events
            .iter()
            .any(|e| e.kind == FlightEventKind::Alert
                && e.what == "slow_files"
                && e.detail.contains("firing")),
        "alert transition lands in the black box:\n{}",
        flight.render()
    );

    // While firing, the exposition file an operator scrapes says so.
    let dir = scratch_dir("alerting-lifecycle");
    let path = monitor.write_prom_in(&dir, "lifecycle").unwrap();
    assert_eq!(path.file_name().unwrap(), "TELEMETRY_EXPO_lifecycle.prom");
    let text = fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("strider_alert_active{rule=\"slow_files\",severity=\"critical\"} 1"),
        "{text}"
    );
    assert!(text.contains("# TYPE strider_alert_active gauge"), "{text}");
    fs::remove_dir_all(&dir).unwrap();

    // Pass 4: the stall is gone, the sweep is instantaneous again, and
    // the rule resolves — Firing → Inactive, transition on this pass.
    clock.advance(1_000_000);
    machine.set_fault_injector(FaultInjector::new());
    let pass4 = monitor.observe(&mut machine).unwrap();
    assert!(!monitor.alerts().is_firing("slow_files"));
    let resolved = pass4
        .transitions
        .iter()
        .find(|t| t.rule == "slow_files")
        .expect("the firing→inactive transition is reported");
    assert_eq!(resolved.from, AlertState::Firing);
    assert_eq!(resolved.to, AlertState::Inactive);
    // Lifetime: inactive→pending, pending→firing, firing→inactive.
    assert_eq!(monitor.alerts().transitions("slow_files"), 3);
}

// ---------------------------------------------------------------------
// Absence rules: a stalled shard stops heartbeating and the engine says so
// ---------------------------------------------------------------------

#[test]
fn absence_rule_detects_a_stalled_heartbeat_and_recovers() {
    let clock = Arc::new(FakeClock::default());
    let recorder = FlightRecorder::new(clock.clone());
    let mut engine = AlertEngine::with_rules(vec![AlertRule::new(
        "shard_heartbeat_lost",
        "shard.heartbeat",
        AlertCondition::Absent {
            window_ns: 3_000_000,
        },
    )
    .with_severity(Severity::Critical)]);

    // Healthy: a heartbeat every simulated millisecond.
    let mut metrics = BTreeMap::new();
    let mut heartbeat = TimeSeries::new(16);
    for _ in 0..3 {
        clock.advance(1_000_000);
        heartbeat.push(clock.now_ns(), 1.0);
    }
    metrics.insert("shard.heartbeat".to_string(), heartbeat);
    assert!(engine
        .evaluate(&metrics, clock.now_ns(), Some(&recorder))
        .is_empty());

    // The shard stalls: 3.5 ms with no heartbeat blows the 3 ms window.
    clock.advance(3_500_000);
    let transitions = engine.evaluate(&metrics, clock.now_ns(), Some(&recorder));
    assert!(engine.is_firing("shard_heartbeat_lost"), "{transitions:?}");
    assert!(transitions
        .iter()
        .any(|t| t.rule == "shard_heartbeat_lost" && t.to == AlertState::Firing));
    assert!(recorder
        .snapshot()
        .events
        .iter()
        .any(|e| e.kind == FlightEventKind::Alert && e.what == "shard_heartbeat_lost"));

    // The shard comes back; the next heartbeat resolves the alert.
    metrics
        .get_mut("shard.heartbeat")
        .unwrap()
        .push(clock.now_ns(), 1.0);
    let resolved = engine.evaluate(&metrics, clock.now_ns(), Some(&recorder));
    assert!(!engine.is_firing("shard_heartbeat_lost"));
    assert!(resolved
        .iter()
        .any(|t| t.rule == "shard_heartbeat_lost" && t.to == AlertState::Inactive));
}

// ---------------------------------------------------------------------
// Built-in monitor rules keep the old incident semantics
// ---------------------------------------------------------------------

#[test]
fn built_in_rules_drive_incidents_and_expose_their_state() {
    let clock = Arc::new(FakeClock::default());
    let mut machine = Machine::with_base_system("victim").unwrap();
    let mut monitor = SweepMonitor::new(GhostBuster::new().with_policy(supervised_policy(clock)));
    monitor.record_baseline(&mut machine).unwrap();

    HackerDefender::default().infect(&mut machine).unwrap();
    let observation = monitor.observe(&mut machine).unwrap();

    // The infection trips the built-in new-finding rule, and the incident
    // stream is derived from exactly that rule's firing state.
    assert!(monitor.alerts().is_firing("new_hidden_resource"));
    assert!(observation
        .incidents
        .iter()
        .any(|i| matches!(i, MonitorIncident::NewHiddenResource { .. })));
    let prom = monitor.prometheus().render();
    assert!(
        prom.contains("strider_alert_active{rule=\"new_hidden_resource\",severity=\"critical\"} 1"),
        "{prom}"
    );
    assert!(prom.contains("strider_monitor_sweeps_total 1"), "{prom}");
}
