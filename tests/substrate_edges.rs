//! Edge-case and failure-injection tests across the substrate crates.

use strider_ghostbuster_repro::prelude::*;
use strider_nt_core::{NtPath, NtStatus, NtString, Tick, MAX_PATH};

// ---------------------------------------------------------------------
// NTFS
// ---------------------------------------------------------------------

#[test]
fn empty_volume_image_roundtrips() {
    let vol = NtfsVolume::new("C:");
    let raw = VolumeImage::parse(&vol.to_image()).unwrap();
    assert_eq!(raw.entries().len(), 1, "just the root");
    assert!(raw.file_paths().is_empty());
    assert!(raw.all_paths().is_empty(), "root itself is not listed");
}

#[test]
fn max_path_boundary_is_exact() {
    // Build a path of exactly MAX_PATH characters: visible. One more: not.
    let mut p = NtPath::root_of("C:");
    // "C:" is 2 chars; each component adds 1 (separator) + len.
    let remaining = MAX_PATH - p.char_len();
    let comp_len = 50;
    let full_comps = (remaining - 1) / (comp_len + 1);
    for i in 0..full_comps {
        p = p.join(format!("{:049}x", i));
    }
    let leftover = MAX_PATH - p.char_len() - 1;
    assert!(leftover > 0);
    p = p.join("y".repeat(leftover));
    assert_eq!(p.char_len(), MAX_PATH);
    assert!(p.is_win32_visible());
    let over = p.join("z");
    assert!(!over.is_win32_visible());
}

#[test]
fn deep_tree_paths_reconstruct() {
    let mut vol = NtfsVolume::new("C:");
    let mut path = NtPath::root_of("C:");
    for i in 0..40 {
        path = path.join(format!("d{i}"));
    }
    vol.mkdir_p(&path).unwrap();
    vol.create_file(&path.join("leaf.txt"), b"x").unwrap();
    let raw = VolumeImage::parse(&vol.to_image()).unwrap();
    let (p, _) = &raw.file_paths()[0];
    assert_eq!(p.depth(), 41);
    assert!(p.to_string().ends_with("leaf.txt"));
}

#[test]
fn many_alternate_data_streams_roundtrip() {
    let mut vol = NtfsVolume::new("C:");
    vol.create_file(&"C:\\host".parse().unwrap(), b"main")
        .unwrap();
    for i in 0..20 {
        vol.add_stream(&"C:\\host".parse().unwrap(), format!("s{i}"), &[i as u8])
            .unwrap();
    }
    let raw = VolumeImage::parse(&vol.to_image()).unwrap();
    let (_, entry) = &raw.file_paths()[0];
    assert_eq!(entry.ads_names.len(), 20);
    assert_eq!(entry.data_len, 4 + 20);
}

#[test]
fn volume_rejects_writing_through_a_file_as_directory() {
    let mut vol = NtfsVolume::new("C:");
    vol.create_file(&"C:\\f".parse().unwrap(), b"x").unwrap();
    assert!(vol.mkdir_p(&"C:\\f\\sub".parse().unwrap()).is_err());
    assert!(vol.create_file(&"C:\\f\\g".parse().unwrap(), b"y").is_err());
}

// ---------------------------------------------------------------------
// Hive
// ---------------------------------------------------------------------

#[test]
fn empty_hive_roundtrips() {
    let hive = Hive::new("HKLM\\EMPTY".parse().unwrap(), "C:\\e".parse().unwrap());
    let raw = RawHive::parse(&hive.to_bytes()).unwrap();
    assert!(raw.root().values.is_empty());
    assert!(raw.root().subkeys.is_empty());
    assert!(raw.all_values().is_empty());
}

#[test]
fn wide_and_deep_key_trees_roundtrip() {
    let mut root = Key::new("SOFTWARE");
    for i in 0..50 {
        let k = root.subkey_or_create(&NtString::from(format!("wide{i}").as_str()), Tick(1));
        k.set_value(Value::new("v", ValueData::Dword(i)));
    }
    let mut cur = root.subkey_or_create(&NtString::from("deep"), Tick(1));
    for i in 0..30 {
        cur = cur.subkey_or_create(&NtString::from(format!("level{i}").as_str()), Tick(1));
    }
    cur.set_value(Value::new("bottom", ValueData::sz("here")));
    let hive = Hive::from_root(
        "HKLM\\SOFTWARE".parse().unwrap(),
        "C:\\sw".parse().unwrap(),
        root,
    );
    let raw = RawHive::parse(&hive.to_bytes()).unwrap();
    assert_eq!(raw.root().subkeys.len(), 51);
    assert_eq!(raw.all_values().len(), 51);
    let deep_path: Vec<NtString> = std::iter::once(NtString::from("deep"))
        .chain((0..30).map(|i| NtString::from(format!("level{i}").as_str())))
        .collect();
    assert!(raw.descend(&deep_path).is_some());
}

#[test]
fn registry_value_types_render_consistently_across_views() {
    // Every value type must produce identical (identity-relevant) renderings
    // from the live API view and the raw-parse view, or clean machines would
    // show phantom diffs.
    let mut m = Machine::with_base_system("t").unwrap();
    let key: NtPath = "HKLM\\SOFTWARE\\TypeZoo".parse().unwrap();
    m.registry_mut().create_key(&key).unwrap();
    let reg = m.registry_mut();
    reg.set_value(&key, "sz", ValueData::sz("text")).unwrap();
    reg.set_value(
        &key,
        "expand",
        ValueData::ExpandSz(NtString::from("%windir%\\x")),
    )
    .unwrap();
    reg.set_value(&key, "dword", ValueData::Dword(0xabcd))
        .unwrap();
    reg.set_value(&key, "bin", ValueData::Binary(vec![1, 2, 3, 4, 5]))
        .unwrap();
    reg.set_value(
        &key,
        "multi",
        ValueData::MultiSz(vec![NtString::from("a"), NtString::from("b")]),
    )
    .unwrap();

    let gb = GhostBuster::new();
    let ctx = m.ensure_process("ghostbuster.exe", "C:\\gb.exe").unwrap();
    let report = gb.registry_scanner().scan_full_inside(&m, &ctx).unwrap();
    assert!(!report.has_detections(), "{report}");
    assert!(
        report.phantom_in_lie.is_empty(),
        "{:?}",
        report.phantom_in_lie
    );
}

// ---------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------

#[test]
fn empty_kernel_dump_roundtrips() {
    let k = Kernel::new();
    let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
    assert!(dump.processes().is_empty());
    assert!(dump.processes_via_apl().is_empty());
    assert!(dump.threads().is_empty());
}

#[test]
fn scheduler_with_no_threads_idles() {
    let mut k = Kernel::new();
    assert!(k.schedule_next().is_none());
}

#[test]
fn mass_spawn_and_kill_preserves_invariants() {
    let mut k = Kernel::with_base_processes();
    let mut pids = Vec::new();
    for i in 0..200 {
        pids.push(
            k.spawn(&format!("w{i}.exe"), "C:\\w.exe".parse().unwrap(), None)
                .unwrap(),
        );
    }
    assert_eq!(k.active_process_list().len(), 209);
    for &pid in pids.iter().step_by(2) {
        k.kill(pid).unwrap();
    }
    assert_eq!(k.active_process_list().len(), 109);
    assert_eq!(k.processes_via_threads().len(), 109);
    // The APL walk order is stable and cycle-free after heavy churn.
    let walk = k.active_process_list();
    let mut dedup = walk.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), walk.len());
}

#[test]
fn driver_reload_after_unload() {
    let mut k = Kernel::new();
    k.load_driver("d1", "C:\\d1.sys".parse().unwrap());
    k.unload_driver("d1").unwrap();
    k.load_driver("d1", "C:\\d1.sys".parse().unwrap());
    assert_eq!(k.drivers().len(), 1);
}

// ---------------------------------------------------------------------
// Machine / chain
// ---------------------------------------------------------------------

#[test]
fn module_query_for_dead_pid_errors() {
    let m = Machine::with_base_system("t").unwrap();
    let ctx = m.context_for_name("explorer.exe").unwrap();
    let err = m.query(
        &ctx,
        &Query::ModuleList {
            pid: strider_nt_core::Pid(9996),
        },
        ChainEntry::Win32,
    );
    assert_eq!(err, Err(NtStatus::NoSuchProcess));
}

#[test]
fn reg_enum_on_value_free_key_returns_empty_not_error() {
    let mut m = Machine::with_base_system("t").unwrap();
    m.registry_mut()
        .create_key(&"HKLM\\SOFTWARE\\EmptyKey".parse().unwrap())
        .unwrap();
    let ctx = m.context_for_name("explorer.exe").unwrap();
    let rows = m
        .query(
            &ctx,
            &Query::RegEnumValues {
                key: "HKLM\\SOFTWARE\\EmptyKey".parse().unwrap(),
            },
            ChainEntry::Win32,
        )
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn stacked_hooks_compose_subtractively() {
    // Multiple hiders at different levels: the union of their filters is
    // hidden, and removing one restores exactly its share.
    use std::sync::Arc;
    let mut m = Machine::with_base_system("t").unwrap();
    for name in ["alpha.txt", "beta.txt", "gamma.txt"] {
        m.volume_mut()
            .create_file(&format!("C:\\temp\\{name}").parse().unwrap(), b"x")
            .unwrap();
    }
    let hide = |needle: &'static str| {
        Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
            rows.into_iter()
                .filter(|r| !r.name().to_win32_lossy().contains(needle))
                .collect::<Vec<_>>()
        })
    };
    m.install_iat_hook(
        "kit-a",
        vec![QueryKind::Files],
        HookScope::All,
        hide("alpha"),
    );
    m.install_ntdll_hook(
        "kit-b",
        vec![QueryKind::Files],
        HookScope::All,
        hide("beta"),
    );
    let ctx = m.context_for_name("explorer.exe").unwrap();
    let q = Query::DirectoryEnum {
        path: "C:\\temp".parse().unwrap(),
    };
    let rows = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name().to_win32_lossy(), "gamma.txt");
    m.remove_software("kit-a");
    let rows = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
    assert_eq!(rows.len(), 2, "alpha restored, beta still hidden");
}

#[test]
fn corrupt_volume_image_fails_scan_cleanly() {
    struct Garbage;
    impl strider_winapi::RawImageTamper for Garbage {
        fn tamper(&self, mut bytes: Vec<u8>) -> Vec<u8> {
            bytes.truncate(6);
            bytes
        }
    }
    let mut m = Machine::with_base_system("t").unwrap();
    m.add_image_tamper("evil", std::sync::Arc::new(Garbage));
    let ctx = m.context_for_name("explorer.exe").unwrap();
    let err = FileScanner::new().scan_inside(&m, &ctx);
    assert!(matches!(err, Err(NtStatus::CorruptStructure(_))));
}

#[test]
fn context_for_dead_pid_is_none() {
    let m = Machine::with_base_system("t").unwrap();
    assert!(m.context_for(strider_nt_core::Pid(424242)).is_none());
    assert!(m.context_for_name("nope.exe").is_none());
}
