//! Property-based tests over the core data structures and invariants.
//!
//! Runs on the in-tree shrinking harness (`strider_support::check`), which
//! replaced `proptest`: generators are closures over a seeded
//! [`SplitMix64`], properties return `Result<(), String>`, and failures
//! shrink to a minimal counterexample. Shrinking is value-based, so a
//! shrunk input can fall outside a generator's invariant (e.g. an empty
//! name where the generator guaranteed `[a-z][a-z0-9]*`); properties guard
//! those cases with an early `Ok(())`.

use strider_ghostbuster_repro::prelude::*;
use strider_nt_core::{NtPath, NtString, Tick};
use strider_support::check::{check, gen, Config};
use strider_support::fault::FaultPlan;
use strider_support::rng::SplitMix64;
use strider_support::{prop_assert, prop_assert_eq, prop_assert_ne};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// The old `"[a-z][a-z0-9]{0,10}"` strategy.
fn name(rng: &mut SplitMix64) -> String {
    gen::name(rng, 1, 11)
}

/// Raw material for a counted name that may embed a NUL: `(a, Some(b))`
/// becomes `a \0 b`; `(a, None)` is just `a`. Kept as plain strings so the
/// harness can shrink them; [`nt_name`] builds the `NtString` in the prop.
fn nt_name_parts(rng: &mut SplitMix64) -> (String, Option<String>) {
    (name(rng), gen::option_of(rng, name))
}

fn nt_name(parts: &(String, Option<String>)) -> NtString {
    match &parts.1 {
        None => NtString::from(parts.0.as_str()),
        Some(b) => {
            let mut units: Vec<u16> = parts.0.encode_utf16().collect();
            units.push(0);
            units.extend(b.encode_utf16());
            NtString::from_units(&units)
        }
    }
}

/// A random file tree as (path components under C:\, contents) pairs.
fn file_tree(rng: &mut SplitMix64) -> Vec<(Vec<String>, Vec<u8>)> {
    gen::vec_of(rng, 0, 24, |r| {
        (gen::vec_of(r, 1, 3, name), gen::bytes(r, 0, 63))
    })
}

// ---------------------------------------------------------------------
// NtString / NtPath
// ---------------------------------------------------------------------

#[test]
fn fold_key_is_idempotent_and_case_insensitive() {
    check(
        "fold_key_is_idempotent_and_case_insensitive",
        Config::default(),
        name,
        |n| {
            let lower = NtString::from(n.to_ascii_lowercase().as_str());
            let upper = NtString::from(n.to_ascii_uppercase().as_str());
            prop_assert_eq!(lower.fold_key(), upper.fold_key());
            prop_assert!(lower.eq_ignore_case(&upper));
            Ok(())
        },
    );
}

#[test]
fn display_string_never_loses_units() {
    check(
        "display_string_never_loses_units",
        Config::default(),
        nt_name_parts,
        |parts| {
            let n = nt_name(parts);
            // Rendering shows every unit (NULs become escapes), so two
            // distinct counted names never collapse to the same display
            // *and* fold key.
            let display = n.to_display_string();
            if n.contains_nul() {
                prop_assert!(display.contains("\\0"));
                prop_assert_ne!(display, n.to_win32_lossy());
            } else {
                prop_assert_eq!(display, n.to_win32_lossy());
            }
            Ok(())
        },
    );
}

#[test]
fn path_roundtrip_through_display() {
    check(
        "path_roundtrip_through_display",
        Config::default(),
        |rng| gen::vec_of(rng, 0, 4, name),
        |parts| {
            if parts.iter().any(String::is_empty) {
                return Ok(()); // shrunk below the generator's invariant
            }
            let mut p = NtPath::root_of("C:");
            for part in parts {
                p = p.join(part.as_str());
            }
            let rendered = p.to_string();
            let reparsed: NtPath = rendered.parse().unwrap();
            prop_assert!(reparsed.eq_ignore_case(&p));
            prop_assert_eq!(reparsed.depth(), parts.len());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// NTFS volume + raw image parser
// ---------------------------------------------------------------------

#[test]
fn volume_image_roundtrip_preserves_the_file_set() {
    check(
        "volume_image_roundtrip_preserves_the_file_set",
        Config::with_cases(64),
        file_tree,
        |tree| {
            let mut vol = NtfsVolume::new("C:");
            vol.set_clock(Tick(5));
            let mut expected: Vec<String> = Vec::new();
            for (parts, data) in tree {
                if parts.is_empty() || parts.iter().any(String::is_empty) {
                    continue; // shrunk below the generator's invariant
                }
                let mut path = NtPath::root_of("C:");
                for p in &parts[..parts.len() - 1] {
                    path = path.join(p.as_str());
                }
                // A component may already exist as a file; such entries are
                // simply skipped, as the OS would reject them.
                if vol.mkdir_p(&path).is_err() {
                    continue;
                }
                let file = path.join(parts.last().unwrap().as_str());
                if vol.create_file(&file, data).is_ok() {
                    expected.push(file.fold_key());
                }
            }
            expected.sort();
            expected.dedup();

            let raw = VolumeImage::parse(&vol.to_image()).unwrap();
            let mut parsed: Vec<String> =
                raw.file_paths().iter().map(|(p, _)| p.fold_key()).collect();
            parsed.sort();
            prop_assert_eq!(parsed, expected);
            Ok(())
        },
    );
}

#[test]
fn removed_files_never_reappear_in_the_image() {
    check(
        "removed_files_never_reappear_in_the_image",
        Config::with_cases(64),
        file_tree,
        |tree| {
            let mut vol = NtfsVolume::new("C:");
            let mut live: Vec<NtPath> = Vec::new();
            for (parts, data) in tree {
                let Some(first) = parts.first().filter(|p| !p.is_empty()) else {
                    continue; // shrunk below the generator's invariant
                };
                let file = NtPath::root_of("C:").join(first.as_str());
                if vol.create_file(&file, data).is_ok() {
                    live.push(file);
                }
            }
            // Remove every other file.
            let mut removed = Vec::new();
            for (i, f) in live.iter().enumerate() {
                if i % 2 == 0 {
                    vol.remove_file(f).unwrap();
                    removed.push(f.fold_key());
                }
            }
            let raw = VolumeImage::parse(&vol.to_image()).unwrap();
            for (p, _) in raw.file_paths() {
                prop_assert!(!removed.contains(&p.fold_key()));
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Hive format
// ---------------------------------------------------------------------

#[test]
fn hive_roundtrip_preserves_values_and_corruption_flags() {
    check(
        "hive_roundtrip_preserves_values_and_corruption_flags",
        Config::with_cases(64),
        |rng| {
            gen::vec_of(rng, 0, 19, |r| {
                (nt_name_parts(r), r.next_u32(), r.chance(1, 2))
            })
        },
        |entries| {
            let mut root = Key::new("SOFTWARE");
            let mut expected = 0usize;
            for (parts, dword, corrupt) in entries {
                let name = nt_name(parts);
                if name.is_empty() {
                    continue; // shrunk below the generator's invariant
                }
                let mut v = Value::new(name, ValueData::Dword(*dword));
                v.corrupt_data = *corrupt;
                if root.set_value(v).is_none() {
                    expected += 1;
                }
            }
            let hive = Hive::from_root(
                "HKLM\\SOFTWARE".parse().unwrap(),
                "C:\\sw".parse().unwrap(),
                root.clone(),
            );
            let raw = RawHive::parse(&hive.to_bytes()).unwrap();
            prop_assert_eq!(raw.root().values.len(), expected);
            for rv in &raw.root().values {
                let orig = root.value(&rv.name).unwrap();
                prop_assert_eq!(rv.corrupt, orig.corrupt_data);
                if !rv.corrupt {
                    prop_assert_eq!(rv.type_code, 4u32);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn hive_parser_never_panics_on_mutated_bytes() {
    check(
        "hive_parser_never_panics_on_mutated_bytes",
        Config::with_cases(64),
        |rng| {
            (
                gen::vec_of(rng, 1, 7, name),
                rng.next_u32() as u16,
                rng.next_u8(),
            )
        },
        |(entries, flip_at, flip_to)| {
            let mut root = Key::new("ROOT");
            for e in entries {
                if e.is_empty() {
                    continue; // shrunk below the generator's invariant
                }
                root.subkey_or_create(&NtString::from(e.as_str()), Tick(1));
            }
            let hive = Hive::from_root(
                "HKLM\\SOFTWARE".parse().unwrap(),
                "C:\\x".parse().unwrap(),
                root,
            );
            let mut bytes = hive.to_bytes();
            let idx = (*flip_at as usize) % bytes.len();
            bytes[idx] = *flip_to;
            // Must return Ok or Err — never panic, never loop.
            let _ = RawHive::parse(&bytes);
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Kernel: DKOM invariants
// ---------------------------------------------------------------------

#[test]
fn apl_is_always_a_subset_of_the_thread_table_view() {
    check(
        "apl_is_always_a_subset_of_the_thread_table_view",
        Config::with_cases(64),
        |rng| gen::bytes(rng, 0, 39),
        |ops| {
            let mut k = Kernel::with_base_processes();
            let mut spawned: Vec<strider_nt_core::Pid> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op % 4 {
                    0 => {
                        let pid = k
                            .spawn(&format!("p{i}.exe"), "C:\\p.exe".parse().unwrap(), None)
                            .unwrap();
                        spawned.push(pid);
                    }
                    1 => {
                        if let Some(&pid) = spawned.get((*op as usize / 4) % spawned.len().max(1)) {
                            let _ = k.dkom_unlink(pid);
                        }
                    }
                    2 => {
                        if let Some(&pid) = spawned.get((*op as usize / 4) % spawned.len().max(1)) {
                            let _ = k.dkom_relink(pid);
                        }
                    }
                    _ => {
                        if let Some(pid) = spawned.pop() {
                            let _ = k.kill(pid);
                        }
                    }
                }
                let apl = k.active_process_list();
                let threads = k.processes_via_threads();
                for pid in &apl {
                    prop_assert!(threads.contains(pid), "APL member missing from threads");
                }
                // The thread table is exactly the live process set.
                prop_assert_eq!(threads.len(), k.processes().count());
                // APL has no duplicates (links intact).
                let mut sorted = apl.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), apl.len());
            }
            Ok(())
        },
    );
}

#[test]
fn crash_dump_roundtrip_matches_live_views() {
    check(
        "crash_dump_roundtrip_matches_live_views",
        Config::with_cases(64),
        |rng| rng.next_u8(),
        |&unlink_mask| {
            let mut k = Kernel::with_base_processes();
            let mut pids = Vec::new();
            for i in 0..4 {
                pids.push(
                    k.spawn(&format!("x{i}.exe"), "C:\\x.exe".parse().unwrap(), None)
                        .unwrap(),
                );
            }
            for (i, &pid) in pids.iter().enumerate() {
                if unlink_mask & (1 << i) != 0 {
                    k.dkom_unlink(pid).unwrap();
                }
            }
            let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
            prop_assert_eq!(dump.processes_via_apl(), k.active_process_list());
            prop_assert_eq!(dump.processes_via_threads(), k.processes_via_threads());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// The cross-view diff itself
// ---------------------------------------------------------------------

#[test]
fn diff_partitions_the_truth() {
    check(
        "diff_partitions_the_truth",
        Config::with_cases(64),
        |rng| gen::vec_of(rng, 0, 29, |r| (name(r), r.chance(1, 2))),
        |keys| {
            use strider_ghostbuster::{ScanMeta, Snapshot, ViewKind};
            let mut truth: Snapshot<String> =
                Snapshot::new(ScanMeta::new(ViewKind::LowLevelMft, Tick(1)));
            let mut lie: Snapshot<String> =
                Snapshot::new(ScanMeta::new(ViewKind::HighLevelWin32, Tick(1)));
            // Last occurrence wins for duplicate keys, matching Snapshot::insert.
            let resolved: std::collections::BTreeMap<String, bool> = keys.iter().cloned().collect();
            let mut hidden_expected = std::collections::BTreeSet::new();
            for (k, visible) in &resolved {
                truth.insert(k.clone(), k.clone());
                if *visible {
                    lie.insert(k.clone(), k.clone());
                } else {
                    hidden_expected.insert(k.clone());
                }
            }
            let report = cross_view_diff(&truth, &lie, |key, fact: &String| Detection {
                kind: ResourceKind::File,
                identity: key.to_string(),
                detail: fact.clone(),
                category: None,
                noise: NoiseClass::Suspicious,
            });
            let got: std::collections::BTreeSet<String> = report
                .detections
                .iter()
                .map(|d| d.identity.clone())
                .collect();
            prop_assert_eq!(got, hidden_expected);
            prop_assert!(report.phantom_in_lie.is_empty());
            Ok(())
        },
    );
}

#[test]
fn diff_of_identical_snapshots_is_empty() {
    check(
        "diff_of_identical_snapshots_is_empty",
        Config::with_cases(64),
        |rng| gen::vec_of(rng, 0, 29, name),
        |keys| {
            use strider_ghostbuster::{ScanMeta, Snapshot, ViewKind};
            let mut a: Snapshot<String> =
                Snapshot::new(ScanMeta::new(ViewKind::LowLevelMft, Tick(1)));
            let mut b: Snapshot<String> =
                Snapshot::new(ScanMeta::new(ViewKind::HighLevelWin32, Tick(1)));
            for k in keys {
                a.insert(k.clone(), k.clone());
                b.insert(k.clone(), k.clone());
            }
            let report = cross_view_diff(&a, &b, |key, fact: &String| Detection {
                kind: ResourceKind::File,
                identity: key.to_string(),
                detail: fact.clone(),
                category: None,
                noise: NoiseClass::Suspicious,
            });
            prop_assert!(!report.has_detections());
            prop_assert!(report.phantom_in_lie.is_empty());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// End-to-end: arbitrary pattern hiding is always detected
// ---------------------------------------------------------------------

#[test]
fn any_substring_hider_is_detected_inside_the_box() {
    check(
        "any_substring_hider_is_detected_inside_the_box",
        Config::with_cases(16),
        |rng| gen::lowercase(rng, 4, 8),
        |pattern| {
            use std::sync::Arc;
            if pattern.is_empty() {
                return Ok(()); // shrunk below the generator's invariant
            }
            let mut m = Machine::with_base_system("prop").unwrap();
            let path: NtPath = format!("C:\\windows\\{pattern}-payload.exe")
                .parse()
                .unwrap();
            m.volume_mut().create_file(&path, b"MZ").unwrap();
            let needle = pattern.clone();
            m.install_ntdll_hook(
                "prop-hider",
                vec![QueryKind::Files],
                HookScope::All,
                Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
                    rows.into_iter()
                        .filter(|r| !r.name().to_win32_lossy().contains(needle.as_str()))
                        .collect()
                }),
            );
            let report = GhostBuster::new().scan_files_inside(&mut m).unwrap();
            // The payload is hidden from the API and must be detected — unless
            // the pattern happens to hide base-system files too, in which case
            // they are *also* detected (never fewer findings than hidden files).
            prop_assert!(report
                .net_detections()
                .iter()
                .any(|d| d.detail == path.to_string()));
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Unix substrate
// ---------------------------------------------------------------------

#[test]
fn lkm_hiding_is_always_caught_by_the_clean_boot_diff() {
    check(
        "lkm_hiding_is_always_caught_by_the_clean_boot_diff",
        Config::with_cases(32),
        |rng| {
            (
                gen::lowercase(rng, 2, 6),
                gen::vec_of(rng, 1, 5, |r| gen::lowercase(r, 1, 8)),
            )
        },
        |(suffix, files)| {
            if suffix.is_empty() || files.is_empty() || files.iter().any(String::is_empty) {
                return Ok(()); // shrunk below the generator's invariant
            }
            let pattern = format!(".{suffix}");
            let mut m = UnixMachine::with_base_system("prop");
            for f in files {
                m.fs_mut()
                    .create_file(&format!("/usr/lib/{pattern}/{f}"), b"ELF");
            }
            m.load_lkm("prop-kit", &[pattern.as_str()]);
            let lie = m.ls_scan_all();
            prop_assert!(!lie.iter().any(|p| p.contains(pattern.as_str())));
            let gb = UnixGhostBuster::new();
            let report = gb.outside_diff(&m, &lie);
            for f in files {
                let path = format!("/usr/lib/{pattern}/{f}");
                prop_assert!(
                    report.net_detections().iter().any(|d| d.path == path),
                    "missing {path}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn unix_remove_never_leaves_orphans() {
    check(
        "unix_remove_never_leaves_orphans",
        Config::with_cases(32),
        |rng| gen::vec_of(rng, 0, 19, |r| (gen::lowercase(r, 1, 5), r.chance(1, 2))),
        |ops| {
            if ops.iter().any(|(n, _)| n.is_empty()) {
                return Ok(()); // shrunk below the generator's invariant
            }
            let mut m = UnixMachine::with_base_system("prop");
            for (name, deep) in ops {
                if *deep {
                    m.fs_mut()
                        .create_file(&format!("/tmp/{name}/inner/{name}"), b"x");
                } else {
                    m.fs_mut().create_file(&format!("/tmp/{name}"), b"x");
                }
            }
            for (name, _) in ops {
                let _ = m.fs_mut().remove(&format!("/tmp/{name}"));
            }
            // No file under a removed directory survives.
            for p in m.offline_scan() {
                if let Some(rest) = p.strip_prefix("/tmp/") {
                    let orphaned = ops
                        .iter()
                        .any(|(n, _)| rest.starts_with(&format!("{n}/")) || rest == n.as_str());
                    prop_assert!(!orphaned, "orphan survived: {}", p);
                }
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Hive: NUL-embedded *key* names
// ---------------------------------------------------------------------

#[test]
fn nul_key_names_roundtrip_and_render_distinctly() {
    check(
        "nul_key_names_roundtrip_and_render_distinctly",
        Config::with_cases(32),
        |rng| (gen::lowercase(rng, 1, 6), gen::lowercase(rng, 1, 6)),
        |(a, b)| {
            if a.is_empty() || b.is_empty() {
                return Ok(()); // shrunk below the generator's invariant
            }
            let mut units: Vec<u16> = a.encode_utf16().collect();
            units.push(0);
            units.extend(b.encode_utf16());
            let sneaky = NtString::from_units(&units);
            let mut root = Key::new("SOFTWARE");
            root.subkey_or_create(&sneaky, Tick(1));
            let hive = Hive::from_root(
                "HKLM\\SOFTWARE".parse().unwrap(),
                "C:\\sw".parse().unwrap(),
                root,
            );
            let raw = RawHive::parse(&hive.to_bytes()).unwrap();
            let recovered = &raw.root().subkeys[0].name;
            prop_assert_eq!(recovered, &sneaky);
            prop_assert!(recovered.to_display_string().contains("\\0"));
            prop_assert_eq!(recovered.to_win32_lossy(), a.clone());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// SSDT restoration always disables SSDT-level hiding
// ---------------------------------------------------------------------

#[test]
fn ssdt_restore_always_reveals() {
    check(
        "ssdt_restore_always_reveals",
        Config::with_cases(16),
        |rng| gen::lowercase(rng, 4, 8),
        |pattern| {
            use std::sync::Arc;
            use strider_kernel::SyscallId;
            if pattern.is_empty() {
                return Ok(()); // shrunk below the generator's invariant
            }
            let mut m = Machine::with_base_system("prop").unwrap();
            let path: NtPath = format!("C:\\temp\\{pattern}.sys").parse().unwrap();
            m.volume_mut().create_file(&path, b"MZ").unwrap();
            let needle = pattern.clone();
            m.install_ssdt_hook(
                "prop-ssdt",
                SyscallId::NtQueryDirectoryFile,
                vec![QueryKind::Files],
                Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
                    rows.into_iter()
                        .filter(|r| !r.name().to_win32_lossy().contains(needle.as_str()))
                        .collect()
                }),
            );
            let ctx = m.context_for_name("explorer.exe").unwrap();
            let q = Query::DirectoryEnum {
                path: "C:\\temp".parse().unwrap(),
            };
            let hidden = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
            prop_assert!(hidden.is_empty());
            // The documented countermeasure: direct dispatch-table restoration.
            m.kernel_mut()
                .ssdt_mut()
                .restore(SyscallId::NtQueryDirectoryFile);
            let revealed = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
            prop_assert_eq!(revealed.len(), 1);
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Cost model: structure of the timing results
// ---------------------------------------------------------------------

#[test]
fn cost_model_is_monotone_in_disk_scale() {
    check(
        "cost_model_is_monotone_in_disk_scale",
        Config::default(),
        |rng| 1.0 + rng.next_f64() * 59.0,
        |&extra_gb| {
            if !(1.0..=60.0).contains(&extra_gb) {
                return Ok(()); // shrunk below the generator's invariant
            }
            let mut profiles = paper_profiles();
            let base = profiles.remove(0);
            let mut bigger = base.clone();
            bigger.disk_used_gb += extra_gb;
            let t_base = CostModel::new(base).file_scan_seconds();
            let t_big = CostModel::new(bigger).file_scan_seconds();
            prop_assert!(t_big > t_base);
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Fault injection: corrupted images never panic either parser tier
// ---------------------------------------------------------------------

/// `FAULT_SEED=<n>` re-bases the corruption properties on a chosen seed —
/// the knob `scripts/verify.sh` pins for reproducible CI runs.
fn fault_config(cases: u32) -> Config {
    let mut config = Config::with_cases(cases);
    if let Some(seed) = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        config.seed = seed;
    }
    config
}

#[test]
fn fault_corrupted_volume_images_never_panic_either_parser() {
    check(
        "fault_corrupted_volume_images_never_panic_either_parser",
        fault_config(64),
        |rng| (file_tree(rng), rng.next_u64()),
        |(tree, seed)| {
            let mut vol = NtfsVolume::new("C:");
            for (parts, data) in tree {
                let Some(first) = parts.first().filter(|p| !p.is_empty()) else {
                    continue; // shrunk below the generator's invariant
                };
                let _ = vol.create_file(&NtPath::root_of("C:").join(first.as_str()), data);
            }
            let plan = FaultPlan::random(*seed);
            let corrupted = plan.apply(&vol.to_image());
            // Strict tier: Ok or Err, never a panic.
            let _ = VolumeImage::parse(&corrupted);
            // Salvage tier: always a value; defects stay within the image.
            let salvaged = VolumeImage::parse_salvage(&corrupted);
            for d in &salvaged.defects {
                prop_assert!(d.offset <= corrupted.len() as u64);
            }
            if plan.is_noop() {
                prop_assert!(salvaged.is_clean());
            }
            Ok(())
        },
    );
}

#[test]
fn fault_corrupted_hives_never_panic_either_parser() {
    check(
        "fault_corrupted_hives_never_panic_either_parser",
        fault_config(64),
        |rng| {
            (
                gen::vec_of(rng, 0, 9, |r| (name(r), r.next_u32())),
                rng.next_u64(),
            )
        },
        |(entries, seed)| {
            let mut root = Key::new("ROOT");
            for (n, dword) in entries {
                if n.is_empty() {
                    continue; // shrunk below the generator's invariant
                }
                let sub = root.subkey_or_create(&NtString::from(n.as_str()), Tick(1));
                sub.set_value(Value::new(n.as_str(), ValueData::Dword(*dword)));
            }
            let hive = Hive::from_root(
                "HKLM\\SOFTWARE".parse().unwrap(),
                "C:\\sw".parse().unwrap(),
                root,
            );
            let plan = FaultPlan::random(*seed);
            let corrupted = plan.apply(&hive.to_bytes());
            let _ = RawHive::parse(&corrupted);
            let salvaged = RawHive::parse_salvage(&corrupted);
            for d in &salvaged.defects {
                prop_assert!(d.offset <= corrupted.len() as u64);
            }
            if plan.is_noop() {
                prop_assert!(salvaged.is_clean());
            }
            Ok(())
        },
    );
}

#[test]
fn fault_corrupted_dumps_never_panic_either_parser() {
    check(
        "fault_corrupted_dumps_never_panic_either_parser",
        fault_config(64),
        |rng| (gen::vec_of(rng, 0, 9, name), rng.next_u64()),
        |(names, seed)| {
            let mut k = Kernel::with_base_processes();
            for n in names {
                if n.is_empty() {
                    continue; // shrunk below the generator's invariant
                }
                let _ = k.spawn(
                    &format!("{n}.exe"),
                    format!("C:\\{n}.exe").parse().unwrap(),
                    None,
                );
            }
            let plan = FaultPlan::random(*seed);
            let corrupted = plan.apply(&k.crash_dump());
            let _ = MemoryDump::parse(&corrupted);
            let salvaged = MemoryDump::parse_salvage(&corrupted);
            for d in &salvaged.defects {
                prop_assert!(d.offset <= corrupted.len() as u64);
            }
            if plan.is_noop() {
                prop_assert!(salvaged.is_clean());
            }
            Ok(())
        },
    );
}

#[test]
fn fault_chaos_sweeps_always_terminate_with_consistent_health() {
    // The liveness property behind the supervised sweep engine: compose
    // random corruption, transient read failures, and stalls — finite or
    // permanent — on the truth sources, and every sweep still terminates
    // before its deadline on the fake clock, never panics, and reports a
    // health verdict consistent with the injected faults (a pipeline times
    // out iff its source stalls forever).
    check(
        "fault_chaos_sweeps_always_terminate_with_consistent_health",
        fault_config(24),
        |rng| (rng.next_u64(), gen::bytes(rng, 6, 6)),
        |(seed, knobs)| {
            use std::sync::Arc;
            use strider_support::fault::Stall;
            use strider_support::obs::{Clock, FakeClock};

            let knob = |i: usize| knobs.get(i).copied().unwrap_or(0);
            // Stall shape per source: 0 = none, 3 = forever, else finite.
            let stall_of = |k: u8| match k % 4 {
                0 => None,
                3 => Some(Stall::forever()),
                n => Some(Stall::after_polls(u32::from(n) * 3)),
            };
            let volume_forever = knob(0) % 4 == 3;
            let hive_forever = knob(1) % 4 == 3;

            let mut m = Machine::with_base_system("chaos").unwrap();
            HackerDefender::default().infect(&mut m).unwrap();
            // A scan-aware adversary rides along, its tactic and knobs
            // seeded from the case: the liveness and health-consistency
            // properties must hold even when the lie *adapts* to the scan
            // while the truth sources fail underneath it.
            let tactic = match seed % 3 {
                0 => EvasiveTactic::UnhideDuringLowScan {
                    window: seed % 509 + 1,
                },
                1 => EvasiveTactic::RehookAfterSweep {
                    burst: seed % 7 + 2,
                    rehook_after: seed % 61 + 1,
                },
                _ => EvasiveTactic::FlickerHiding {
                    seed: *seed,
                    grace: seed % 9,
                },
            };
            EvasiveGhostware::new(tactic).infect(&mut m).unwrap();
            let mut inject = FaultInjector::new()
                .fail_volume_reads(u32::from(knob(2) % 3))
                .fail_hive_reads(u32::from(knob(3) % 3));
            if knob(4) % 2 == 1 {
                inject = inject.corrupt_volume(FaultPlan::random(*seed));
            }
            if knob(5) % 2 == 1 {
                inject = inject.corrupt_hive(
                    "HKLM\\SOFTWARE".parse().unwrap(),
                    FaultPlan::random(seed.wrapping_add(1)),
                );
            }
            if let Some(stall) = stall_of(knob(0)) {
                inject = inject.stall_volume_reads(stall);
            }
            if let Some(stall) = stall_of(knob(1)) {
                inject = inject.stall_hive_reads(stall);
            }
            m.set_fault_injector(inject);

            let clock = Arc::new(FakeClock::default());
            let report = GhostBuster::new()
                .with_policy(
                    ScanPolicy::resilient()
                        .with_clock(clock.clone())
                        .with_backoff(50_000, 200_000)
                        .with_poll(100_000, 0)
                        .with_pipeline_budget(5_000_000)
                        .with_sweep_budget(40_000_000),
                )
                .inside_sweep(&mut m)
                .map_err(|e| format!("sweep failed outright: {e}"))?;

            // Liveness: the sweep finished before the sweep deadline.
            prop_assert!(
                clock.now_ns() < 40_000_000,
                "sweep ran to {} ns",
                clock.now_ns()
            );

            // Health consistency: a permanently stalled source times out its
            // pipeline, and only a permanently stalled source does — finite
            // stalls, transient failures, and corruption are absorbed by
            // polling, retries, and salvage.
            let timed_out = |s: &PipelineStatus| matches!(s, PipelineStatus::Degraded { reason } if reason == "operation timed out");
            prop_assert_eq!(timed_out(&report.health.files), volume_forever);
            prop_assert_eq!(timed_out(&report.health.registry), hive_forever);
            // Process and module scans read no faulted device.
            prop_assert!(report.health.processes.is_ok());
            prop_assert!(report.health.modules.is_ok());
            Ok(())
        },
    );
}

#[test]
fn fault_plan_application_is_deterministic() {
    check(
        "fault_plan_application_is_deterministic",
        fault_config(64),
        |rng| (gen::bytes(rng, 0, 255), rng.next_u64()),
        |(bytes, seed)| {
            let plan = FaultPlan::random(*seed);
            prop_assert_eq!(plan.apply(bytes), plan.apply(bytes));
            prop_assert!(plan.apply(bytes).len() <= bytes.len().max(1));
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Histogram sketches
// ---------------------------------------------------------------------

#[test]
fn histogram_sketch_merge_matches_single_recording() {
    // Bucketing is deterministic per value, so merging partition sketches
    // must reproduce the single-sketch bucket map exactly — quantiles are
    // bit-identical, a stronger bound than the sketch's one-bucket
    // relative-error guarantee.
    check(
        "histogram_sketch_merge_matches_single_recording",
        Config::default(),
        |rng| {
            gen::vec_of(rng, 0, 300, |r| {
                // Spread samples across ~7 decades, including exact zeros.
                let value = if r.chance(1, 16) {
                    0.0
                } else {
                    r.next_f64() * 10f64.powi(r.gen_range(0..8u32) as i32)
                };
                (value, r.next_below(4) as usize)
            })
        },
        |samples| {
            let mut single = HistogramSketch::new();
            let mut parts = vec![HistogramSketch::new(); 4];
            for (value, part) in samples {
                single.record(*value);
                parts[part % 4].record(*value);
            }
            let mut merged = HistogramSketch::new();
            for part in &parts {
                merged.merge(part);
            }
            prop_assert_eq!(merged.count(), single.count());
            prop_assert_eq!(merged.bucket_count(), single.bucket_count());
            for pct in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                prop_assert_eq!(merged.percentile(pct), single.percentile(pct));
            }
            match (merged.mean(), single.mean()) {
                // Partitioning reorders the f64 sum, so the mean may drift
                // by rounding only.
                (Some(a), Some(b)) => {
                    prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
                }
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Prometheus exposition: stable, parseable text for any telemetry
// ---------------------------------------------------------------------

/// Arbitrary telemetry contents: a mixed op tape of counter adds, gauge
/// sets, and histogram records with dotted metric names (which the
/// exposition must sanitize into the Prometheus charset).
fn telemetry_ops(rng: &mut SplitMix64) -> Vec<(u8, String, f64)> {
    gen::vec_of(rng, 0, 24, |r| {
        let kind = r.next_below(3) as u8;
        let prefix = ["c", "g", "h"][kind as usize];
        let name = if r.chance(1, 2) {
            format!("{prefix}{}.{}", gen::name(r, 1, 6), gen::name(r, 1, 6))
        } else {
            format!("{prefix}{}", gen::name(r, 1, 8))
        };
        (kind, name, r.next_f64() * 1e9)
    })
}

#[test]
fn prometheus_exposition_is_stable_and_parseable_for_any_telemetry() {
    use strider_support::alert::prom_name;

    check(
        "prometheus_exposition_is_stable_and_parseable_for_any_telemetry",
        Config::with_cases(64),
        telemetry_ops,
        |ops| {
            let telemetry = Telemetry::new();
            for (kind, name, value) in ops {
                match kind {
                    0 => telemetry.counter_add(name, *value as u64),
                    1 => telemetry.gauge_set(name, *value),
                    _ => telemetry.histogram_record(name, *value),
                }
            }
            let report = telemetry.report();
            let expo = report.prometheus();
            let text = expo.render();

            // Stable: rendering is deterministic, and a second exposition
            // built from the same report is byte-identical.
            prop_assert_eq!(&text, &expo.render());
            prop_assert_eq!(&text, &report.prometheus().render());

            // Parseable: every line is either a `# TYPE` header or a
            // `name[{labels}] value` sample in the Prometheus charset.
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix("# TYPE ") {
                    let mut parts = rest.split(' ');
                    let family = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    prop_assert!(!family.is_empty());
                    prop_assert!(family
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
                    prop_assert!(matches!(kind, "counter" | "gauge" | "histogram"));
                    prop_assert!(parts.next().is_none());
                } else {
                    let (metric, value) = line
                        .rsplit_once(' ')
                        .ok_or_else(|| format!("sample line is `name value`: {line:?}"))?;
                    prop_assert!(
                        value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok()
                    );
                    let bare = metric.split('{').next().unwrap_or("");
                    prop_assert!(!bare.is_empty());
                    prop_assert!(!bare.starts_with(|c: char| c.is_ascii_digit()));
                    prop_assert!(bare
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
                    if metric.len() > bare.len() {
                        prop_assert!(metric.ends_with('}'));
                    }
                }
            }

            // Histogram invariants in the rendered text: cumulative
            // buckets never decrease and the +Inf bucket equals _count.
            for (name, sketch) in &report.histograms {
                let family = prom_name(name);
                let buckets: Vec<u64> = text
                    .lines()
                    .filter(|l| l.starts_with(&format!("{family}_bucket{{le=")))
                    .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
                    .collect();
                prop_assert!(!buckets.is_empty());
                prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
                let count_line = format!("{family}_count {}", sketch.count());
                prop_assert!(text.lines().any(|l| l == count_line));
                prop_assert_eq!(*buckets.last().unwrap(), sketch.count());
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Crash injection: kill-anywhere durable fleet sweeps
// ---------------------------------------------------------------------

use std::sync::Arc;
use strider_support::fault::CrashPlan;
use strider_support::obs::FakeClock;
use strider_support::store::RecordStore;

/// A tiny deterministic fleet (4 machines, 2 infected) swept serially so
/// the journal's write order is reproducible across runs.
fn crash_fleet() -> FleetRegistry {
    FleetRegistry::seeded(&FleetSpec::clean(4, 4242).with_infected(2)).unwrap()
}

fn crash_scheduler() -> FleetScheduler {
    let detector = GhostBuster::new()
        .with_advanced(AdvancedSource::ThreadTable)
        .with_policy(
            ScanPolicy::resilient()
                .with_clock(Arc::new(FakeClock::default()))
                .with_poll(100_000, 0)
                .with_pipeline_budget(2_000_000)
                .with_sweep_budget(10_000_000),
        );
    FleetScheduler::new(detector).with_workers(1).with_batch(1)
}

fn crash_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("strider-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a durable sweep into `store` on a fresh fleet and returns the
/// merged report's digest.
fn durable_digest(store: &RecordStore, mode: DurabilityMode) -> String {
    crash_scheduler()
        .sweep_durable(&mut crash_fleet(), store, mode)
        .unwrap()
        .result_digest()
}

#[test]
fn fault_crash_matrix_wal_sweep_resumes_to_identical_digest_at_every_kill_class() {
    let dir = crash_dir("wal-matrix");

    // Reference: an uninterrupted WAL run. The plan never fires but
    // still counts total journal bytes, and the store read-back gives
    // the exact frame boundaries.
    let plan = Arc::new(CrashPlan::never());
    let store = RecordStore::open(dir.join("ref.wal"))
        .unwrap()
        .with_crash_plan(plan.clone());
    let reference = durable_digest(&store, DurabilityMode::WalAppend);
    let total = plan.written();
    let recovered = store.recover().unwrap();
    assert!(recovered.defects.is_empty());

    // Kill points: every frame boundary (start of each frame, the final
    // good end) plus or minus one byte — the torn-tail class — plus a
    // seeded spread of interior offsets. `FAULT_SEED` re-bases the
    // interior spread, same as the corruption properties.
    let mut offsets: Vec<u64> = Vec::new();
    for boundary in recovered
        .records
        .iter()
        .map(|r| r.offset)
        .chain([recovered.good_end])
    {
        offsets.extend([boundary.saturating_sub(1), boundary, boundary + 1]);
    }
    let seed = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC8A5);
    let mut rng = SplitMix64::seed_from_u64(seed);
    for _ in 0..24 {
        offsets.push(1 + rng.next_below(total));
    }
    offsets.retain(|&o| o < total); // killing at/after the end never fires
    offsets.sort_unstable();
    offsets.dedup();
    assert!(offsets.len() > 12, "matrix too small: {offsets:?}");

    for &offset in &offsets {
        let path = dir.join(format!("kill-{offset}.wal"));
        let store = RecordStore::open(&path)
            .unwrap()
            .with_crash_plan(Arc::new(CrashPlan::at_write_byte(offset)));
        let err = crash_scheduler()
            .sweep_durable(&mut crash_fleet(), &store, DurabilityMode::WalAppend)
            .unwrap_err();
        assert!(err.is_injected_crash(), "offset {offset}: {err}");

        // Restart: reopen (repairing any torn tail), fresh fleet, same
        // sweep. The merged digest must match the uninterrupted run.
        let store = RecordStore::open(&path).unwrap();
        let resumed = durable_digest(&store, DurabilityMode::WalAppend);
        assert_eq!(resumed, reference, "offset {offset} diverged");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fault_crash_matrix_rewrite_sweep_survives_torn_writes_and_mid_rename_kills() {
    let dir = crash_dir("rewrite-matrix");

    let plan = Arc::new(CrashPlan::never());
    let store = RecordStore::open(dir.join("ref.wal"))
        .unwrap()
        .with_crash_plan(plan.clone());
    let reference = durable_digest(&store, DurabilityMode::FullRewrite);
    let total = plan.written();

    // Torn-write spot checks across the rewrite stream (the full matrix
    // runs in WAL mode above; rewrites share the same recovery path).
    for offset in [1, total / 4, total / 2, (total * 3) / 4, total - 1] {
        let path = dir.join(format!("kill-{offset}.wal"));
        let store = RecordStore::open(&path)
            .unwrap()
            .with_crash_plan(Arc::new(CrashPlan::at_write_byte(offset)));
        let err = crash_scheduler()
            .sweep_durable(&mut crash_fleet(), &store, DurabilityMode::FullRewrite)
            .unwrap_err();
        assert!(err.is_injected_crash(), "offset {offset}: {err}");
        let store = RecordStore::open(&path).unwrap();
        assert_eq!(
            durable_digest(&store, DurabilityMode::FullRewrite),
            reference,
            "offset {offset} diverged"
        );
    }

    // The mid-rename class: the temp file is fully written but the
    // atomic swap never happens. The stale temp must not confuse the
    // resume.
    let path = dir.join("kill-rename.wal");
    let store = RecordStore::open(&path)
        .unwrap()
        .with_crash_plan(Arc::new(CrashPlan::before_rename()));
    let err = crash_scheduler()
        .sweep_durable(&mut crash_fleet(), &store, DurabilityMode::FullRewrite)
        .unwrap_err();
    assert!(err.is_injected_crash(), "{err}");
    let store = RecordStore::open(&path).unwrap();
    assert_eq!(
        durable_digest(&store, DurabilityMode::FullRewrite),
        reference,
        "mid-rename kill diverged"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fault_bit_flipped_checkpoint_falls_back_one_generation_without_panic() {
    check(
        "fault_bit_flipped_checkpoint_falls_back_one_generation_without_panic",
        fault_config(48),
        |rng| (rng.next_u64(), rng.next_u64()),
        |(flip_seed, _)| {
            let dir = std::env::temp_dir().join(format!(
                "strider-bitflip-{}-{flip_seed:016x}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            let path = dir.join("cp.store");

            // Two committed generations; the commit image keeps the
            // previous good frame ahead of the new one.
            let store = RecordStore::open(&path).map_err(|e| e.to_string())?;
            store.commit(b"generation-one").map_err(|e| e.to_string())?;
            store.commit(b"generation-two").map_err(|e| e.to_string())?;
            let clean = store.recover().map_err(|e| e.to_string())?;
            prop_assert_eq!(clean.records.len(), 2);
            let newest = clean.records.last().unwrap();
            let (frame_at, frame_len) = (newest.offset, 24 + newest.payload.len() as u64);

            // Flip one seeded bit somewhere inside the newest frame.
            let mut bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
            let mut rng = SplitMix64::seed_from_u64(*flip_seed);
            let at = (frame_at + rng.next_below(frame_len)) as usize;
            bytes[at] ^= 1 << rng.next_below(8);
            std::fs::write(&path, &bytes).map_err(|e| e.to_string())?;

            // Re-open never panics: it distrusts the damaged frame and
            // repairs the file back to the last generation whose
            // checksum still holds (the repair truncates the file, so
            // the read-back is clean again).
            let damaged_len = bytes.len() as u64;
            let repaired = RecordStore::open(&path)
                .map_err(|e| e.to_string())?
                .recover()
                .map_err(|e| e.to_string())?;
            prop_assert!(!repaired.records.is_empty(), "gen 1 must survive");
            prop_assert_eq!(
                repaired.records[0].payload.as_slice(),
                b"generation-one" as &[u8]
            );
            prop_assert!(repaired.records.len() < 2, "gen 2 must be distrusted");
            prop_assert!(
                repaired.good_end < damaged_len,
                "the repair must have cut the damaged frame"
            );
            let _ = std::fs::remove_dir_all(&dir);
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Performance attribution: span timing, alloc accounting, PerfReport
// ---------------------------------------------------------------------

use strider_support::json::{FromJson, JsonValue, ToJson};
use strider_support::obs::{SpanGuard, SpanRecord, TelemetryReport};
use strider_support::prof::{self, AllocStats, PerfReport};

/// A random span program: a tape of `(op, advance_ns, alloc_size)` where
/// `op % 5` selects push-span / pop-span / advance-clock / sleep (counted
/// as wait) / allocate-inside-the-open-span. Unbalanced tapes are fine:
/// stray pops are ignored and open spans are closed at the end.
fn span_tape(rng: &mut SplitMix64) -> Vec<(u8, u64, u32)> {
    gen::vec_of(rng, 0, 48, |r| {
        (
            r.next_below(5) as u8,
            r.next_below(1_000_000),
            r.next_below(4_096) as u32,
        )
    })
}

/// Executes a span tape against a fake-clock telemetry while tracking what
/// each span *should* have been charged. Returns the frozen report, the
/// per-span plan `(allocs, alloc_bytes, spawned_child)` indexed by span
/// number (span `i` is named `s{i}`), and the thread's allocation counters
/// around the run. Everything the executor itself needs is pre-allocated
/// before the window opens, so the only in-window, in-span allocations are
/// the deliberate `Vec::with_capacity` ones plus the telemetry's own
/// bookkeeping — which the span machinery charges to the *parent* scope,
/// keeping leaf spans exact.
fn run_span_tape(
    tape: &[(u8, u64, u32)],
) -> (
    TelemetryReport,
    Vec<(u64, u64, bool)>,
    AllocStats,
    AllocStats,
) {
    use strider_support::obs::Clock as _;
    let clock = Arc::new(FakeClock::default());
    let telemetry = Telemetry::with_clock(clock.clone());
    let pushes = tape.iter().filter(|(op, ..)| op % 5 == 0).count();
    let alloc_ops = tape.iter().filter(|(op, ..)| op % 5 == 4).count();
    let names: Vec<String> = (0..pushes).map(|i| format!("s{i}")).collect();
    let mut planned: Vec<(u64, u64, bool)> = vec![(0, 0, false); pushes];
    let mut holder: Vec<Vec<u8>> = Vec::with_capacity(alloc_ops);
    let mut guards: Vec<(usize, SpanGuard)> = Vec::with_capacity(pushes);
    let mut next_push = 0usize;

    let before = prof::thread_stats();
    for &(op, adv, size) in tape {
        match op % 5 {
            0 => {
                if let Some((parent, _)) = guards.last() {
                    planned[*parent].2 = true;
                }
                let guard = telemetry.span(&names[next_push]);
                guards.push((next_push, guard));
                next_push += 1;
            }
            1 => {
                guards.pop();
            }
            2 => clock.advance(adv % 1_000_000),
            3 => clock.sleep_ns(adv % 1_000_000),
            4 => {
                let size = (size as usize % 4_096).max(1);
                if let Some((open, _)) = guards.last() {
                    planned[*open].0 += 1;
                    planned[*open].1 += size as u64;
                }
                holder.push(Vec::with_capacity(size));
            }
            _ => unreachable!(),
        }
    }
    while guards.pop().is_some() {}
    let after = prof::thread_stats();
    drop(holder);
    (telemetry.report(), planned, before, after)
}

#[test]
fn prof_span_self_times_never_exceed_wall_duration() {
    fn walk(span: &SpanRecord) -> Result<(), String> {
        let kids: u64 = span.children.iter().map(|c| c.duration_ns()).sum();
        prop_assert!(
            kids <= span.duration_ns(),
            "children of {} ({kids} ns) overflow the parent ({} ns)",
            span.name,
            span.duration_ns()
        );
        span.children.iter().try_for_each(walk)
    }
    check(
        "prof_span_self_times_never_exceed_wall_duration",
        Config::with_cases(48),
        span_tape,
        |tape| {
            let (report, ..) = run_span_tape(tape);
            report.spans.iter().try_for_each(walk)?;

            // Self time telescopes: work + wait over the whole tree is
            // exactly the root durations, which fit inside the wall.
            let perf = PerfReport::from_telemetry("prop", &report);
            let roots: u64 = report.spans.iter().map(|s| s.duration_ns()).sum();
            prop_assert_eq!(perf.work_ns + perf.wait_ns, roots);
            prop_assert!(perf.work_ns + perf.wait_ns <= perf.wall_ns);
            prop_assert!(perf.hotspots.len() <= 8);
            Ok(())
        },
    );
}

#[test]
fn prof_span_alloc_attribution_sums_to_thread_totals() {
    fn walk(
        span: &SpanRecord,
        planned: &[(u64, u64, bool)],
        seen: &mut (u64, u64),
    ) -> Result<(), String> {
        let index: usize = span.name[1..]
            .parse()
            .map_err(|e| format!("span name {:?}: {e}", span.name))?;
        let (allocs, bytes, spawned_child) = planned[index];
        prop_assert_eq!(spawned_child, !span.children.is_empty());
        // A span's recorded counters are inclusive; its *self* share is
        // what remains after subtracting the direct children.
        let child_allocs: u64 = span.children.iter().map(|c| c.allocs).sum();
        let child_bytes: u64 = span.children.iter().map(|c| c.alloc_bytes).sum();
        prop_assert!(
            child_allocs <= span.allocs,
            "children overflow {}",
            span.name
        );
        prop_assert!(child_bytes <= span.alloc_bytes);
        let self_allocs = span.allocs - child_allocs;
        let self_bytes = span.alloc_bytes - child_bytes;
        if span.children.is_empty() {
            // Leaf spans are exact: span bookkeeping is charged to the
            // parent scope, so only the deliberate allocations remain.
            prop_assert_eq!(self_allocs, allocs);
            prop_assert_eq!(self_bytes, bytes);
        } else {
            // Interior spans absorb their children's open/close
            // bookkeeping on top of what the tape planned.
            prop_assert!(self_allocs >= allocs);
            prop_assert!(self_bytes >= bytes);
        }
        seen.0 += self_allocs;
        seen.1 += self_bytes;
        span.children
            .iter()
            .try_for_each(|c| walk(c, planned, seen))
    }
    check(
        "prof_span_alloc_attribution_sums_to_thread_totals",
        Config::with_cases(48),
        span_tape,
        |tape| {
            let (report, planned, before, after) = run_span_tape(tape);
            let mut attributed = (0u64, 0u64);
            report
                .spans
                .iter()
                .try_for_each(|s| walk(s, &planned, &mut attributed))?;

            // Everything attributed to a span happened on this thread
            // inside the measurement window...
            let delta_allocs = after.allocs - before.allocs;
            let delta_bytes = after.alloc_bytes - before.alloc_bytes;
            prop_assert!(attributed.0 <= delta_allocs);
            prop_assert!(attributed.1 <= delta_bytes);
            // ...and covers at least the tape's deliberate allocations.
            let wanted: (u64, u64) = planned
                .iter()
                .fold((0, 0), |acc, p| (acc.0 + p.0, acc.1 + p.1));
            prop_assert!(attributed.0 >= wanted.0);
            prop_assert!(attributed.1 >= wanted.1);

            // The counters balance: net live bytes moved by exactly
            // allocated-minus-freed over the same window.
            let delta_freed = after.dealloc_bytes - before.dealloc_bytes;
            prop_assert_eq!(
                after.current_bytes - before.current_bytes,
                delta_bytes as i64 - delta_freed as i64
            );
            Ok(())
        },
    );
}

#[test]
fn prof_perf_report_roundtrips_and_critical_path_is_a_root_chain() {
    check(
        "prof_perf_report_roundtrips_and_critical_path_is_a_root_chain",
        Config::with_cases(48),
        span_tape,
        |tape| {
            let (report, ..) = run_span_tape(tape);
            let perf = PerfReport::from_telemetry("prop", &report);

            // JSON round trip through the hermetic codec is lossless.
            let text = perf.to_json().render();
            let parsed = JsonValue::parse(&text).map_err(|e| e.to_string())?;
            let back = PerfReport::from_json(&parsed).map_err(|e| e.to_string())?;
            prop_assert_eq!(&back, &perf);

            // The critical path is a real root-to-leaf chain: each step
            // names a span at that depth (with its exact duration) that is
            // a child of the previous step, and the last step is a leaf.
            if report.spans.is_empty() {
                prop_assert!(perf.critical_path.is_empty());
                return Ok(());
            }
            prop_assert!(!perf.critical_path.is_empty());
            let mut candidates: Vec<&SpanRecord> = report.spans.iter().collect();
            let mut matched: Vec<&SpanRecord> = Vec::new();
            for step in &perf.critical_path {
                matched = candidates
                    .iter()
                    .copied()
                    .filter(|s| s.name == step.name && s.duration_ns() == step.duration_ns)
                    .collect();
                prop_assert!(!matched.is_empty(), "no span matches step {:?}", step.name);
                candidates = matched.iter().flat_map(|s| s.children.iter()).collect();
            }
            prop_assert!(
                matched.iter().any(|s| s.children.is_empty()),
                "the critical path must end at a leaf span"
            );
            Ok(())
        },
    );
}
