//! Outside-the-box flows across crates: WinPE, VM, crash dumps, and the
//! attacks that degrade each truth source.

use strider_ghostbuster_repro::prelude::*;

fn victim(seed: u64) -> Machine {
    standard_lab_machine("victim", &WorkloadSpec::small(seed), false).expect("machine builds")
}

#[test]
fn winpe_flow_detects_all_persistent_artifacts_of_hxdef() {
    let mut m = victim(1);
    m.tick(400);
    let infection = HackerDefender::default().infect(&mut m).expect("infects");
    let sweep = GhostBuster::new()
        .winpe_outside_sweep(&mut m, 120)
        .expect("flow");
    for hidden in &infection.hidden_files {
        assert!(
            sweep
                .files
                .net_detections()
                .iter()
                .any(|d| d.detail == hidden.to_string()),
            "missed {hidden}"
        );
    }
    assert!(sweep
        .hooks
        .net_detections()
        .iter()
        .any(|d| d.detail.contains("HackerDefender100")));
    // The hidden process came from the pre-reboot crash dump.
    assert!(sweep
        .processes
        .net_detections()
        .iter()
        .any(|d| d.detail.contains("hxdef100.exe")));
}

#[test]
fn winpe_flow_noise_is_service_churn_only_and_classified() {
    let mut m = victim(2);
    m.tick(400);
    let sweep = GhostBuster::new()
        .winpe_outside_sweep(&mut m, 150)
        .expect("flow");
    assert_eq!(sweep.suspicious_count(), 0, "{sweep}");
    for d in sweep.files.noise_detections() {
        assert_eq!(d.noise, NoiseClass::LikelyServiceChurn, "{d}");
    }
}

#[test]
fn vm_flow_zero_gap_zero_false_positives_and_full_detection() {
    let mut m = victim(3);
    m.tick(313);
    let infection = Vanquish::default().infect(&mut m).expect("infects");
    let report = GhostBuster::new().vm_outside_files(&mut m).expect("flow");
    assert!(
        report.noise_detections().is_empty(),
        "zero-gap means zero FPs"
    );
    for hidden in &infection.hidden_files {
        assert!(
            report
                .net_detections()
                .iter()
                .any(|d| d.detail == hidden.to_string()),
            "missed {hidden}"
        );
    }
}

#[test]
fn disk_image_scan_is_immune_to_every_inside_hook() {
    // All interception families at once; the outside scan reads raw bytes.
    let mut m = victim(4);
    HackerDefender::default().infect(&mut m).expect("hxdef");
    ProBotSe::default().infect(&mut m).expect("probot");
    FileHider::hide_folders_xp().infect(&mut m).expect("hider");
    let image = m.snapshot_disk().expect("snapshot");
    let scanner = FileScanner::new();
    let truth = scanner.outside_scan(&image).expect("parse");
    for needle in ["hxdef100.exe", "hidden folder"] {
        assert!(
            truth.iter().any(|(_, f)| f.path.contains(needle)),
            "outside truth missing {needle}"
        );
    }
}

#[test]
fn dump_scrubbing_attack_documented_blind_spot() {
    let mut m = victim(5);
    Fu::default().infect(&mut m).expect("fu");
    let pid = m.kernel().find_by_name("fu_payload.exe")[0];
    m.kernel_mut().register_dump_scrubber(DumpScrub {
        pids: vec![pid],
        module_names: Vec::new(),
    });
    let dump = MemoryDump::parse(&m.kernel().crash_dump()).expect("parse");
    assert!(dump.process(pid).is_none(), "scrubbed from the dump");
    // The *live* advanced scan still sees it: scrubbing only sanitizes the
    // persisted approximation, not the running kernel.
    assert!(m.kernel().processes_via_threads().contains(&pid));
}

#[test]
fn hive_copy_tamper_beats_inside_scan_outside_scan_still_works() {
    use std::sync::Arc;
    struct DropAll;
    impl HiveCopyTamper for DropAll {
        fn tamper(&self, mount: &strider_nt_core::NtPath, bytes: Vec<u8>) -> Vec<u8> {
            // A crude interference: corrupt the copy of the SYSTEM hive so
            // the inside parse fails entirely.
            if mount.to_string().eq_ignore_ascii_case("HKLM\\SYSTEM") {
                bytes[..8.min(bytes.len())].to_vec()
            } else {
                bytes
            }
        }
    }
    let mut m = victim(6);
    HackerDefender::default().infect(&mut m).expect("infects");
    m.add_hive_tamper("hxdef-ng", Arc::new(DropAll));

    let gb = GhostBuster::new();
    // Inside low-level scan now errors: the truth approximation failed.
    assert!(gb.scan_registry_inside(&mut m).is_err());

    // Outside scan of the real disk bytes is unaffected.
    let ctx = gb.enter(&mut m).expect("ctx");
    let lie = gb.registry_scanner().high_scan(&m, &ctx, ChainEntry::Win32);
    let image = m.snapshot_disk().expect("snapshot");
    let truth = gb
        .registry_scanner()
        .outside_scan(&image, OutsideRegistryMode::MountedWin32)
        .expect("parse");
    let report = gb.registry_scanner().diff(&truth, &lie);
    assert!(report
        .net_detections()
        .iter()
        .any(|d| d.detail.contains("HackerDefender100")));
}

#[test]
fn outside_dump_advanced_parse_beats_dkom() {
    let mut m = victim(7);
    Fu::default().infect(&mut m).expect("fu");
    let gb = GhostBuster::new().with_advanced(AdvancedSource::ThreadTable);
    let ctx = gb.enter(&mut m).expect("ctx");
    let lie = gb
        .process_scanner()
        .high_scan(&m, &ctx, ChainEntry::Win32)
        .expect("scan");
    let dump = MemoryDump::parse(&m.kernel().crash_dump()).expect("parse");
    let apl_only = gb.process_scanner().outside_scan(&dump, false);
    let with_threads = gb.process_scanner().outside_scan(&dump, true);
    let r1 = gb.process_scanner().diff(&apl_only, &lie);
    let r2 = gb.process_scanner().diff(&with_threads, &lie);
    assert!(!r1.has_detections());
    assert!(r2
        .net_detections()
        .iter()
        .any(|d| d.detail.contains("fu_payload.exe")));
}

#[test]
fn snapshot_disk_round_trips_through_both_parsers() {
    let mut m = victim(8);
    NamingTrick.infect(&mut m).expect("naming");
    let image = m.snapshot_disk().expect("snapshot");
    // Volume parser.
    let vol = VolumeImage::parse(&image.volume_image).expect("volume parses");
    assert!(vol.file_paths().len() > 100);
    // Every hive parses.
    for (mount, bytes) in &image.hives {
        let raw = RawHive::parse(bytes).expect("hive parses");
        assert!(!raw.root().name.is_empty(), "{mount}");
    }
}

#[test]
fn vm_scanfile_flow_detects_and_is_fp_free() {
    // The fully-automated VM flow: the guest's scan leaves the VM as a
    // serialized scan-result file; the host parses and diffs it.
    let mut m = victim(9);
    m.tick(200);
    let infection = HackerDefender::default().infect(&mut m).expect("infects");
    let report = GhostBuster::new()
        .vm_outside_files_via_scanfile(&mut m)
        .expect("flow");
    for hidden in &infection.hidden_files {
        assert!(
            report
                .net_detections()
                .iter()
                .any(|d| d.detail == hidden.to_string()),
            "missed {hidden}"
        );
    }
    assert!(report.noise_detections().is_empty(), "zero gap, zero FPs");

    // Clean machine: completely silent.
    let mut clean = victim(10);
    clean.tick(200);
    let report = GhostBuster::new()
        .vm_outside_files_via_scanfile(&mut clean)
        .expect("flow");
    assert!(!report.has_detections());
}
