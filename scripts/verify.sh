#!/usr/bin/env bash
# Full offline verification: format check (when rustfmt is installed),
# release build, and the complete test suite — all with --offline, because
# the workspace is hermetic by construction (see tests/hermetic.rs).
#
# Usage: scripts/verify.sh
set -euo pipefail

cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> OK"
