#!/usr/bin/env bash
# Full offline verification: format check (when rustfmt is installed),
# release build, and the complete test suite — all with --offline, because
# the workspace is hermetic by construction (see tests/hermetic.rs).
#
# Usage: scripts/verify.sh
set -euo pipefail

cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint check"
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo build --offline --examples"
cargo build --offline --examples

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

# Fault-injection suite: every test whose name starts with `fault_` —
# corruption property tests, retry/backoff, salvage, and degradation paths.
# The seed is pinned for reproducibility; override with FAULT_SEED=<n> to
# explore a different corruption schedule.
echo "==> fault-injection suite (FAULT_SEED=${FAULT_SEED:-default})"
FAULT_SEED="${FAULT_SEED:-}" cargo test -q --offline --workspace fault

# Liveness suite: the supervised sweep engine's deadline/cancellation/
# breaker/resume tests plus the chaos property (random corruption composed
# with finite and permanent stalls — every sweep must terminate before its
# deadline on the fake clock). Seeds are pinned: the chaos property honours
# FAULT_SEED like the corruption suite above, and both runs below use fixed
# seeds so CI failures reproduce byte-for-byte.
echo "==> liveness suite (deadlines, cancellation, breakers, resume)"
cargo test -q --offline --test supervision
FAULT_SEED="${FAULT_SEED:-20260807}" cargo test -q --offline --test properties \
    fault_chaos_sweeps_always_terminate_with_consistent_health

# Observability suite: flight-recorder black boxes, monitor regression
# detection, Chrome-trace export, and bounded-telemetry guarantees. The
# monitor example is self-validating — it re-parses its own exported JSON
# through support::json, checks the SCAN_TELEMETRY_* schema keys, and
# requires one tid per pipeline in the Chrome trace — so running it green
# IS the check; the file tests below only confirm the artifacts landed.
echo "==> observability suite (flight recorder, monitor, trace export)"
cargo test -q --offline --test observability
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
STRIDER_BENCH_DIR="$OBS_DIR" cargo run -q --offline --example monitor
test -f "$OBS_DIR/SCAN_TELEMETRY_monitor.json"
test -f "$OBS_DIR/SCAN_TRACE_monitor.json"

# Alerting suite: declarative alert rules over timestamped series —
# for_ns hysteresis on the fake clock, absence rules, built-in monitor
# rules, the exposition-format property, and the self-validating example
# (which asserts the whole Pending→Firing→Resolved lifecycle and re-reads
# its own TELEMETRY_EXPO_* file before printing OK).
echo "==> alerting suite (rules, hysteresis, Prometheus exposition)"
cargo test -q --offline --test alerting
cargo test -q --offline --test properties \
    prometheus_exposition_is_stable_and_parseable_for_any_telemetry
STRIDER_BENCH_DIR="$OBS_DIR" cargo run -q --offline --example alerting >/dev/null
test -f "$OBS_DIR/TELEMETRY_EXPO_alerting.prom"

# Fleet suite: the work-stealing fleet scheduler — exact 64-machine fleet
# statistics with merged-sketch equality, shard-level fault isolation,
# kill-mid-fleet checkpoint resume, and shard-tagged monitor incidents.
# The fleet_scan example is self-validating the same way the monitor
# example is: running it green IS the check.
echo "==> fleet suite (scheduler, checkpoint/resume, fleet monitor)"
cargo test -q --offline --test fleet
cargo run -q --offline --example fleet_scan >/dev/null

# Durability suite: the crash-safe state plane. Record-store unit tests,
# the durable-sweep/quarantine fleet tests, and the crash matrix — seeded
# kill points at journal frame boundaries (±1) and random interior bytes,
# each of which must resume to a result digest byte-identical to an
# uninterrupted run — plus the bit-flip generation-fallback property. The
# durability example is self-validating (kill mid-journal, resume, compare
# digests, flip a bit, fall back a generation): running it green IS the
# check. The crash matrix honours FAULT_SEED like the corruption suite.
echo "==> durability suite (record store, crash matrix, quarantine, resume)"
cargo test -q --offline -p strider-support store
cargo test -q --offline -p strider-fleet
cargo test -q --offline --test fleet durable
cargo test -q --offline --test fleet quarantine
FAULT_SEED="${FAULT_SEED:-20260809}" cargo test -q --offline --test properties \
    -- fault_crash_matrix fault_bit_flipped
cargo run -q --offline --example durability >/dev/null

# Evasion suite: the adversarial arms race. The tactic × scan-mode matrix
# (every tactic defeats a naive mode, none defeats the hardened or the
# outside-the-box sweep, fixed seeds give byte-identical hardened reports),
# the chaos property with an evasive adversary riding along, and the
# self-validating evasion example (naive sweep loses, hardened monitor
# raises EvasionSuspected with flight evidence).
echo "==> evasion suite (tactic matrix, hardened sweeps, evasion monitor)"
cargo test -q --offline --test evasion_matrix
cargo run -q --offline --example evasion >/dev/null

# Profiling suite: the performance attribution plane. Allocation-counter
# and critical-path unit tests, the span-program properties (self-time
# bounds, exact leaf alloc attribution, PerfReport round-trips), the
# self-validating profiling example (the hardened-vs-stabilized quorum
# tax decomposed into work/wait/alloc, plus the 64-machine fleet sweep
# merged — scheduler lanes, named workers, all shard spans — into one
# Chrome trace), and a bench_diff smoke run: the committed BENCH_*.json
# baselines diffed against themselves must pass the regression gate.
echo "==> profiling suite (alloc profiler, critical path, fleet trace, bench gate)"
cargo test -q --offline -p strider-support prof
cargo test -q --offline --test properties prof_
STRIDER_BENCH_DIR="$OBS_DIR" cargo run -q --offline --example profiling >/dev/null
test -f "$OBS_DIR/SCAN_PERF_hardened.json"
test -f "$OBS_DIR/FLEET_TRACE_fleet64.json"
scripts/bench_diff >/dev/null

# Rustdoc gate: the public-facing crates must document cleanly — broken
# intra-doc links or missing docs on public items fail the build here, not
# on docs.rs.
echo "==> cargo doc --offline --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q \
    -p strider-fleet -p strider-ghostbuster -p strider-support \
    -p strider-ghostbuster-repro

echo "==> OK"
