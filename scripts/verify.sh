#!/usr/bin/env bash
# Full offline verification: format check (when rustfmt is installed),
# release build, and the complete test suite — all with --offline, because
# the workspace is hermetic by construction (see tests/hermetic.rs).
#
# Usage: scripts/verify.sh
set -euo pipefail

cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint check"
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo build --offline --examples"
cargo build --offline --examples

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> OK"
