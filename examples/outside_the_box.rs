//! The outside-the-box flows: WinPE CD boot (with its reboot-gap false
//! positives and their classification), the crash-dump scan for volatile
//! state, and the zero-gap VM variant.
//!
//! ```sh
//! cargo run --example outside_the_box
//! ```

use strider_ghostbuster_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = standard_lab_machine("field-box", &WorkloadSpec::small(17), true)?;
    machine.tick(400); // the machine has been in use for a while
    HackerDefender::default().infect(&mut machine)?;
    Fu::default().infect(&mut machine)?;

    // --- WinPE flow: scans + crash dump now, reboot, scan the disk image.
    let gb = GhostBuster::new().with_advanced(AdvancedSource::ThreadTable);
    let model = CostModel::new(paper_profiles()[0].clone());
    println!(
        "WinPE flow (boot overhead ≈{:.0}s, dump ≈{:.0}s on the paper's desktop):",
        model.winpe_boot_seconds(),
        model.dump_seconds()
    );
    let sweep = gb.winpe_outside_sweep(&mut machine, 150)?;
    println!("  suspicious findings: {}", sweep.suspicious_count());
    for d in sweep.files.net_detections() {
        println!("    file:    {}", d.detail);
    }
    for d in sweep.hooks.net_detections() {
        println!("    hook:    {}", d.detail);
    }
    for d in sweep.processes.net_detections() {
        println!("    process: {} (from the crash dump)", d.detail);
    }
    println!(
        "  reboot-gap noise, classified and filtered: {} entries",
        sweep.noise_count()
    );
    for d in sweep.files.noise_detections() {
        println!("    noise:   {} [{}]", d.detail, d.noise);
    }
    assert!(sweep.is_infected());
    assert_eq!(
        sweep.files.net_detections().len(),
        3,
        "exactly the rootkit files survive the noise filter"
    );

    // --- VM flow on a clean machine: pause, scan the same image, zero gap.
    let mut clean = standard_lab_machine("vm-guest", &WorkloadSpec::small(18), true)?;
    clean.tick(400);
    let report = GhostBuster::new().vm_outside_files(&mut clean)?;
    println!(
        "\nVM flow on a clean guest: {} findings, {} noise (zero gap → zero FPs)",
        report.net_detections().len(),
        report.noise_detections().len()
    );
    assert!(!report.has_detections());
    Ok(())
}
