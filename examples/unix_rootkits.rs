//! Section 5 on Unix: Darkside, Superkit, Synapsis (LKM `getdents` hooks)
//! and T0rnkit (trojaned `ls`), detected by the same cross-view framework.
//!
//! ```sh
//! cargo run --example unix_rootkits
//! ```

use strider_ghostbuster_repro::prelude::*;
use strider_ghostbuster_repro::workload::populate_unix;
use strider_ghostware::unix::unix_corpus;

fn main() {
    println!(
        "{:<16} {:<20} {:>14} {:>16} {:>6}",
        "rootkit", "technique", "ls-vs-glob", "clean-boot diff", "noise"
    );
    println!("{}", "-".repeat(78));
    for rk in unix_corpus() {
        let mut m = UnixMachine::with_base_system("ux");
        populate_unix(&mut m, 21, 500);
        m.tick(30);
        let infection = rk.infect(&mut m);
        let gb = UnixGhostBuster::new();

        let inside = gb.inside_diff(&m);
        let lie = m.ls_scan_all();
        m.tick(150); // reboot into the live CD
        let outside = gb.outside_diff(&m, &lie);

        println!(
            "{:<16} {:<20} {:>14} {:>16} {:>6}",
            infection.rootkit,
            if infection.uses_lkm {
                "LKM getdents hook"
            } else {
                "trojaned ls"
            },
            if inside.is_infected() {
                "detects"
            } else {
                "blind"
            },
            if outside.is_infected() {
                "detects"
            } else {
                "blind"
            },
            outside.noise_detections().len(),
        );
        for d in outside.net_detections() {
            println!("    hidden: {}", d.path);
        }
        assert!(outside.is_infected());
    }
    println!("{}", "-".repeat(78));
    println!("all four Unix rootkits detected; noise limited to daemon temp/log files");
}
