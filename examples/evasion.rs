//! The adversarial arms race, end to end: a scan-aware flickering rootkit
//! defeats a naive stabilized sweep, then a hardened monitor — randomized
//! scan order, decoy queries, quorum diffing — catches it and raises an
//! `EvasionSuspected` incident with flight-recorder evidence.
//!
//! Self-validating and headless: every step asserts its expected outcome,
//! so CI can run it as a smoke test:
//!
//! ```sh
//! cargo run --example evasion
//! ```

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::obs::FakeClock;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The adversary: hides its file pair, Run-key entry, and process —
    // but only intermittently. Each resource stays visible for its first
    // 12 appearances (outlasting any naive sweep), then vanishes on a
    // seeded coin flip per appearance, so no two scan passes see the
    // same lie.
    let tactic = EvasiveTactic::FlickerHiding {
        seed: 41,
        grace: 12,
    };
    let mut machine = Machine::with_base_system("arms-race-box")?;
    let rootkit = EvasiveGhostware::new(tactic);
    rootkit.infect(&mut machine)?;
    println!("installed {}", rootkit.name());

    // Round 1 — the naive detector. Stabilization re-runs a diff until
    // two consecutive passes agree; with every resource still inside its
    // grace allowance, the passes agree on "nothing hidden".
    let naive = GhostBuster::new()
        .with_policy(ScanPolicy::resilient())
        .inside_sweep(&mut machine)?;
    println!(
        "naive stabilized sweep: {} suspicious — the rootkit wins round 1",
        naive.suspicious_count()
    );
    assert!(
        !naive.is_infected(),
        "the flicker tactic must defeat the naive sweep"
    );

    // Round 2 — the hardened monitor on a fresh copy of the same
    // machine state. Quorum passes and decoy queries burn through the
    // grace; the appear-and-vanish pattern becomes Flickering findings,
    // the `evasion_suspected` built-in rule fires, and typed incidents
    // ship the flight-recorder evidence. No baseline needed: an unstable
    // lie is evidence on its own.
    let mut machine = Machine::with_base_system("arms-race-box")?;
    let rootkit = EvasiveGhostware::new(tactic);
    rootkit.infect(&mut machine)?;
    let clock = Arc::new(FakeClock::default());
    let policy = ScanPolicy::hardened().with_clock(clock);
    let mut monitor = SweepMonitor::new(GhostBuster::new().with_policy(policy));
    let observation = monitor.observe(&mut machine)?;

    println!(
        "hardened sweep: {} suspicious, flicker score {}",
        observation.report.suspicious_count(),
        observation.report.flicker_score()
    );
    assert!(
        observation.report.is_infected(),
        "the hardened sweep must catch the flickering rootkit"
    );
    assert!(
        monitor.alerts().is_firing("evasion_suspected"),
        "the built-in evasion rule must fire"
    );

    let evasion: Vec<_> = observation
        .incidents
        .iter()
        .filter(|i| matches!(i, MonitorIncident::EvasionSuspected { .. }))
        .collect();
    assert!(!evasion.is_empty(), "typed incidents must be raised");
    println!("\nincidents:");
    for incident in &evasion {
        println!("  {incident}");
        println!("    evidence: {} flight events", incident.flight().len());
    }

    // The rootkit's own sensors confirm the duel actually happened: it
    // observed the scans and suppressed rows along the way.
    let sense = rootkit.sense();
    println!(
        "\nadversary sensors: {} queries observed, {} rows flicker-hidden, scanner seen: {}",
        sense.queries_observed, sense.flicker_hides, sense.scanner_seen
    );
    assert!(sense.queries_observed > 0 && sense.flicker_hides > 0);

    println!("\nthe arms race ends where the paper says: the detector that");
    println!("randomizes, decoys, and counts votes cannot be sensed around.");
    Ok(())
}
