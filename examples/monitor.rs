//! Continuous monitoring: record a baseline sweep, watch a machine on a
//! schedule, and raise incidents when a resource hides or a pipeline slows
//! down — then export the alarmed sweep's telemetry and Chrome trace.
//!
//! Self-validating and headless: it runs on a [`FakeClock`], asserts every
//! expected incident fires, and re-parses both exported JSON files through
//! the hermetic parser, so CI can run it as a smoke test:
//!
//! ```sh
//! STRIDER_BENCH_DIR=/tmp cargo run --example monitor
//! ```
//!
//! Open the emitted `SCAN_TRACE_monitor.json` in Perfetto or
//! `chrome://tracing` to see the four pipeline threads side by side.

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::json::JsonValue;
use strider_support::obs::FakeClock;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Arc::new(FakeClock::default());
    let policy = ScanPolicy::resilient()
        .with_clock(clock.clone())
        .with_poll(100_000, 0)
        .with_pipeline_budget(2_000_000)
        .with_sweep_budget(10_000_000);
    let mut machine = Machine::with_base_system("monitored-box")?;
    let mut monitor = SweepMonitor::new(GhostBuster::new().with_policy(policy))
        .with_config(MonitorConfig::default().with_interval_ns(1_000_000_000));

    // One golden sweep becomes the comparison anchor; it would normally be
    // serialized (SweepBaseline::serialize) and stored with the machine.
    let baseline = monitor.record_baseline(&mut machine)?.clone();
    println!(
        "baseline on {:?}: {} findings, {} pipelines timed",
        baseline.machine,
        baseline.findings.len(),
        baseline.pipeline_duration_ns.len()
    );

    // Quiet period: scheduled sweeps, one simulated second apart.
    let calm = monitor.run(&mut machine, 3)?;
    let calm_incidents: usize = calm.iter().map(|o| o.incidents.len()).sum();
    println!("3 scheduled sweeps -> {calm_incidents} incidents");
    assert_eq!(calm_incidents, 0, "a clean machine must stay quiet");

    // Then a rootkit arrives between sweeps, and the volume starts
    // stalling (a slowdown the supervisor absorbs, not an outage).
    HackerDefender::default().infect(&mut machine)?;
    machine.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(5)));

    let observation = monitor.observe(&mut machine)?;
    println!("\nincidents after infection + stall:");
    for incident in &observation.incidents {
        println!("  {incident}");
        println!("    evidence: {} flight events", incident.flight().len());
    }
    assert!(
        observation
            .incidents
            .iter()
            .any(|i| matches!(i, MonitorIncident::NewHiddenResource { .. })),
        "the hidden file must be reported"
    );
    assert!(
        observation
            .incidents
            .iter()
            .any(|i| matches!(i, MonitorIncident::LatencyRegression { .. })),
        "the stall must be reported as a latency regression"
    );

    // Export the alarmed sweep's telemetry + Chrome trace, then validate
    // both round-trip through the hermetic JSON parser.
    let report = observation
        .report
        .telemetry
        .as_ref()
        .expect("monitored sweeps always carry telemetry");
    let telemetry_path = report.write_json("monitor")?;
    let trace_path = report.write_chrome_trace("monitor")?;

    let telemetry_doc = JsonValue::parse(&std::fs::read_to_string(&telemetry_path)?)?;
    let top = telemetry_doc.as_obj()?;
    for key in [
        "spans",
        "threads",
        "counters",
        "gauges",
        "histograms",
        "flight",
    ] {
        assert!(
            top.iter().any(|(k, _)| k == key),
            "telemetry JSON is missing the {key:?} section"
        );
    }

    let trace = JsonValue::parse(&std::fs::read_to_string(&trace_path)?)?;
    let mut pipeline_tids = std::collections::BTreeSet::new();
    for event in trace.as_arr()? {
        let fields = event.as_obj()?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        if get("ph").and_then(|v| v.as_str().ok()) == Some("X")
            && get("name")
                .and_then(|v| v.as_str().ok())
                .is_some_and(|name| name.ends_with(".scan_inside"))
        {
            pipeline_tids.insert(get("tid").and_then(|v| v.as_u64().ok()).expect("tid"));
        }
    }
    assert_eq!(
        pipeline_tids.len(),
        4,
        "the trace must distinguish all four pipeline threads, got {pipeline_tids:?}"
    );

    println!("\ntelemetry: {}", telemetry_path.display());
    println!(
        "trace:     {} ({} pipeline threads)",
        trace_path.display(),
        pipeline_tids.len()
    );
    println!("rolling series tracked: {}", monitor.series_names().len());
    println!("OK");
    Ok(())
}
