//! The alerting plane end to end: declarative rules with hysteresis on a
//! monitored machine, the Pending→Firing→Resolved lifecycle on a fake
//! clock, and the Prometheus-text exposition an operator would scrape.
//!
//! Self-validating and headless: it asserts each lifecycle step, checks
//! the transition evidence in both the alert log and the sweep's flight
//! dump, and re-reads the emitted `.prom` file, so CI can run it as a
//! smoke test:
//!
//! ```sh
//! STRIDER_BENCH_DIR=/tmp cargo run --example alerting
//! ```
//!
//! Point a Prometheus file-based scraper (or `promtool check metrics`) at
//! the emitted `TELEMETRY_EXPO_alerting.prom` to consume the same state.

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::obs::{FakeClock, FlightEventKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Arc::new(FakeClock::default());
    let policy = ScanPolicy::resilient()
        .with_clock(clock.clone())
        .with_poll(100_000, 0)
        .with_pipeline_budget(2_000_000)
        .with_sweep_budget(10_000_000);

    // A hand-written SLO rule rides along with the built-in monitor
    // rules: page when the files pipeline stays above 400 µs for 2.5 ms
    // of sustained breach (the `for_ns` hold suppresses one-off blips).
    let mut monitor = SweepMonitor::new(GhostBuster::new().with_policy(policy))
        .with_config(MonitorConfig::default().with_interval_ns(1_000_000))
        .with_rule(
            AlertRule::new(
                "slow_files",
                "files.duration_ns",
                AlertCondition::Above(400_000.0),
            )
            .with_for_ns(2_500_000)
            .with_severity(Severity::Critical),
        );
    let mut machine = Machine::with_base_system("alerted-box")?;
    monitor.record_baseline(&mut machine)?;
    println!(
        "rules installed: {}",
        monitor
            .alerts()
            .rules()
            .iter()
            .map(|r| r.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The volume starts stalling: ~500 µs of polling per sweep. The rule
    // breaches immediately but only *pends* — the hold is still running.
    let stall = || FaultInjector::new().stall_volume_reads(Stall::after_polls(5));
    machine.set_fault_injector(stall());
    monitor.observe(&mut machine)?;
    println!(
        "pass 1: slow_files is {}",
        monitor.alerts().state("slow_files").unwrap()
    );
    assert_eq!(
        monitor.alerts().state("slow_files"),
        Some(AlertState::Pending)
    );

    // Two more slow passes, one simulated millisecond apart. The breach
    // has been sustained past the hold on the third pass: Firing.
    clock.advance(1_000_000);
    machine.set_fault_injector(stall());
    monitor.observe(&mut machine)?;
    assert!(
        !monitor.alerts().is_firing("slow_files"),
        "hold still running"
    );
    clock.advance(1_000_000);
    machine.set_fault_injector(stall());
    let alarmed = monitor.observe(&mut machine)?;
    println!(
        "pass 3: slow_files is {} after 3.0 ms of sustained breach",
        monitor.alerts().state("slow_files").unwrap()
    );
    assert!(monitor.alerts().is_firing("slow_files"));

    // The transition is evidence, twice over: once in the durable alert
    // log, once in the alarmed sweep's own flight dump.
    for transition in &alarmed.transitions {
        println!("  transition: {transition}");
    }
    assert!(alarmed
        .transitions
        .iter()
        .any(|t| t.rule == "slow_files" && t.to == AlertState::Firing));
    let flight = &alarmed.report.telemetry.as_ref().unwrap().flight;
    assert!(
        flight
            .events
            .iter()
            .any(|e| e.kind == FlightEventKind::Alert && e.what == "slow_files"),
        "the black box records the alert transition"
    );

    // Export what an operator would scrape.
    let path = monitor.write_prom("alerting")?;
    let text = std::fs::read_to_string(&path)?;
    assert!(text.contains("# TYPE strider_alert_active gauge"));
    assert!(
        text.contains("strider_alert_active{rule=\"slow_files\",severity=\"critical\"} 1"),
        "the firing rule is visible in the exposition"
    );
    println!("exposition: {}", path.display());
    for line in text.lines().filter(|l| l.starts_with("strider_alert")) {
        println!("  {line}");
    }

    // The stall clears; the rule resolves on the next pass.
    clock.advance(1_000_000);
    machine.set_fault_injector(FaultInjector::new());
    let resolved = monitor.observe(&mut machine)?;
    assert!(resolved
        .transitions
        .iter()
        .any(|t| t.rule == "slow_files" && t.to == AlertState::Inactive));
    assert!(!monitor.alerts().is_firing("slow_files"));
    println!(
        "pass 4: slow_files resolved ({} lifetime transitions)",
        monitor.alerts().transitions("slow_files")
    );
    println!("OK");
    Ok(())
}
