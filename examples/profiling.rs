//! The performance attribution plane end to end: per-span allocation
//! accounting, the critical-path `PerfReport` decomposing a hardened
//! sweep's quorum tax into work / wait / allocator churn, and a
//! 64-machine fleet sweep merged — scheduler lanes, named worker lanes,
//! and every shard's spans on globally unique tids — into one Chrome
//! trace, with the queue-wait series feeding the worker-starvation rule.
//!
//! Self-validating and headless: it asserts the decomposition, re-parses
//! every exported artifact, and checks the merged trace's lane naming,
//! so CI can run it as a smoke test:
//!
//! ```sh
//! STRIDER_BENCH_DIR=/tmp cargo run --example profiling
//! ```
//!
//! Open the emitted `FLEET_TRACE_fleet64.json` in Perfetto /
//! `chrome://tracing` to see the timeline the assertions describe.

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::json::{FromJson, JsonValue};
use strider_support::obs::{fmt_bytes, fmt_ns, FakeClock, Telemetry};
use strider_support::prof::PerfReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----------------------------------------------------------------
    // Stage 1: decompose the hardened sweep's overhead. Same infected
    // machine, same fake clock, same stalling volume (5 supervised
    // polls of 100 µs before the device answers — the *wait* the
    // decomposition separates from compute); one stabilized sweep, one
    // hardened (randomized multi-pass quorum) sweep.
    // ----------------------------------------------------------------
    let clock = Arc::new(FakeClock::default());
    let sweep_with = |label: &str, policy: ScanPolicy| -> Result<SweepReport, NtStatus> {
        let mut machine = standard_lab_machine(label, &WorkloadSpec::small(7), false)?;
        HackerDefender::default().infect(&mut machine)?;
        machine.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(5)));
        // The pipeline budget supplies the deadline that lets supervised
        // reads poll a stalled device instead of timing out on the spot.
        GhostBuster::new()
            .with_policy(
                policy
                    .with_clock(clock.clone())
                    .with_poll(100_000, 0)
                    .with_pipeline_budget(2_000_000)
                    .with_sweep_budget(10_000_000),
            )
            .with_telemetry(Telemetry::with_clock(clock.clone()))
            .inside_sweep(&mut machine)
    };
    let stabilized = sweep_with("stabilized-box", ScanPolicy::resilient())?;
    let hardened = sweep_with("hardened-box", ScanPolicy::hardened())?;

    let stab_perf = stabilized.perf_report("stabilized").expect("telemetry");
    let hard_perf = hardened.perf_report("hardened").expect("telemetry");
    println!("{}", stab_perf.render());
    println!("{}", hard_perf.render());
    println!(
        "quorum tax: +{} wall, +{} allocated",
        fmt_ns(hard_perf.wall_ns.saturating_sub(stab_perf.wall_ns)),
        fmt_bytes(hard_perf.alloc_bytes.saturating_sub(stab_perf.alloc_bytes)),
    );

    // The stalling volume shows up as attributed wait, not as opaque
    // wall time; and the hardened sweep re-scans under a randomized
    // quorum, so it must do strictly more allocation work — the
    // deterministic component of the quorum tax.
    assert!(stab_perf.wall_ns > 0 && hard_perf.wall_ns > 0);
    assert!(stab_perf.wait_ns > 0 && hard_perf.wait_ns > 0);
    assert!(hard_perf.wall_ns >= stab_perf.wall_ns);
    assert!(hard_perf.allocs > stab_perf.allocs);
    assert!(hard_perf.alloc_bytes > stab_perf.alloc_bytes);
    assert!(!hard_perf.critical_path.is_empty());
    assert!(!hard_perf.hotspots.is_empty() && hard_perf.hotspots.len() <= 8);

    // Per-phase attribution rides on the span tree: every pipeline's
    // scan phase accounts its own heap traffic...
    let telemetry = hardened.telemetry.as_ref().expect("telemetry attached");
    let totals = telemetry.phase_totals();
    for pipeline in ["files", "registry", "processes", "modules"] {
        let phase = &totals[&format!("{pipeline}.scan_inside")];
        assert!(phase.allocs > 0, "{pipeline} scan must allocate");
        assert!(phase.alloc_bytes > 0);
        println!(
            "{pipeline}.scan_inside: {} allocs / {}",
            phase.allocs,
            fmt_bytes(phase.alloc_bytes)
        );
    }
    // ...and the same numbers flow into the Prometheus exposition and
    // the rendered sweep report.
    let prom = telemetry.prometheus().render();
    assert!(prom.contains("strider_phase_allocs_total"));
    assert!(prom.contains("strider_phase_alloc_bytes_total"));
    assert!(hardened.to_string().contains("critical path:"));

    // The PerfReport is an artifact: export, re-parse, compare.
    let perf_path = hard_perf.write_json()?;
    let parsed = PerfReport::from_json(&JsonValue::parse(&std::fs::read_to_string(&perf_path)?)?)?;
    assert_eq!(parsed.label, "hardened");
    assert_eq!(parsed.allocs, hard_perf.allocs);
    assert_eq!(parsed.critical_path.len(), hard_perf.critical_path.len());
    println!("perf report written to {}", perf_path.display());

    // ----------------------------------------------------------------
    // Stage 2: the unified fleet timeline. A hardened 64-machine sweep
    // on a 4-worker pool, every scheduler decision recorded.
    // ----------------------------------------------------------------
    let fleet_clock = Arc::new(FakeClock::default());
    let policy = ScanPolicy::hardened()
        .with_clock(fleet_clock.clone())
        .with_poll(100_000, 0);
    let scheduler = FleetScheduler::new(
        GhostBuster::new()
            .with_advanced(AdvancedSource::ThreadTable)
            .with_policy(policy),
    )
    .with_workers(4);
    let mut fleet = FleetRegistry::seeded(&FleetSpec::clean(64, 2026).with_infected(8))?;
    // Every volume stalls briefly, so each sweep advances the shared
    // fake clock and later shards accumulate measurable queue wait.
    for machine in fleet.machines_mut() {
        machine
            .machine
            .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::after_polls(2)));
    }
    let (report, trace) = scheduler.sweep_traced(&mut fleet)?;
    assert_eq!(report.swept, 64);
    assert_eq!(report.infected, 8);
    assert_eq!(trace.workers, 4);
    assert_eq!(trace.queue_waits().len(), 64, "every shard was scheduled");
    let idle = trace.worker_idle_fraction();
    assert!((0.0..=1.0).contains(&idle));
    println!(
        "fleet: 64 shards, {} steals, queue-wait p95 {}, worker idle {:.0}%",
        trace.steals(),
        fmt_ns(trace.queue_wait_p95_ns()),
        idle * 100.0,
    );

    // One merged Chrome trace: scheduler lane + named worker lanes +
    // every shard's spans on globally unique tids.
    let JsonValue::Arr(events) = trace.chrome_trace() else {
        panic!("chrome trace must be a JSON array");
    };
    let field = |e: &JsonValue, key: &str| e.field(key).ok().cloned();
    let thread_names: Vec<String> = events
        .iter()
        .filter(|e| matches!(field(e, "ph"), Some(JsonValue::Str(p)) if p == "M"))
        .filter_map(|e| {
            field(e, "args")?
                .field("name")
                .ok()
                .and_then(|v| v.as_str().ok().map(str::to_string))
        })
        .collect();
    assert!(thread_names.iter().any(|n| n == "fleet-scheduler"));
    for w in 0..4 {
        let lane = format!("fleet-worker-{w}");
        assert!(thread_names.contains(&lane), "missing {lane}");
    }
    assert!(
        thread_names
            .iter()
            .filter(|n| n.starts_with("shard-"))
            .count()
            >= 64,
        "every shard's pipeline thread is named in the merged trace"
    );
    // Per-shard tids collide when frozen independently; merged they are
    // globally unique and sit above the reserved scheduler/worker lanes.
    let mut scan_tids: Vec<u64> = events
        .iter()
        .filter(|e| {
            matches!(field(e, "cat"), Some(JsonValue::Str(c)) if c == "scan")
                && matches!(field(e, "ph"), Some(JsonValue::Str(p)) if p == "X")
        })
        .filter_map(|e| match field(e, "tid") {
            Some(JsonValue::UInt(t)) => Some(t),
            _ => None,
        })
        .collect();
    scan_tids.sort_unstable();
    scan_tids.dedup();
    assert!(scan_tids.len() >= 64, "{} shard lanes", scan_tids.len());
    assert!(scan_tids.iter().all(|&t| t > 4), "above reserved lanes");

    let trace_path = trace.write_chrome_trace("fleet64")?;
    JsonValue::parse(&std::fs::read_to_string(&trace_path)?)?;
    println!("merged fleet trace written to {}", trace_path.display());

    // The timeline feeds the alerting plane: queue-wait p95 and worker
    // idle fraction become fleet series, and a starvation ceiling turns
    // long deque waits into a firing rule.
    assert!(
        trace.queue_wait_p95_ns() > 0,
        "later shards waited on deques"
    );
    let mut monitor = FleetMonitor::new(scheduler.detector().clone())
        .with_alert_policy(FleetAlertPolicy::default().with_queue_wait_p95_max_ns(1));
    let transitions = monitor.ingest_trace(&trace);
    assert!(monitor.alerts().is_firing("fleet.worker_starvation"));
    assert!(transitions
        .iter()
        .any(|t| t.rule == "fleet.worker_starvation"));
    assert!(monitor
        .series("fleet.worker_idle_fraction")
        .and_then(|s| s.last())
        .is_some());
    println!("fleet.worker_starvation fired: p95 queue wait over ceiling");

    println!("\nprofiling plane OK");
    Ok(())
}
