//! The eTrust dilemma (paper, Section 5): a signature scanner with the
//! correct signatures misses a hiding rootkit; injecting the GhostBuster
//! diff into the scanner process restores detection — so hiding and
//! not-hiding both lose.
//!
//! ```sh
//! cargo run --example av_dilemma
//! ```

use strider_ghostbuster_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = standard_lab_machine("av-lab", &WorkloadSpec::small(13), false)?;
    HackerDefender::default().infect(&mut machine)?;
    let inocit = machine.ensure_process("InocIT.exe", "C:\\Program Files\\eTrust\\InocIT.exe")?;
    let scanner = SignatureScanner::with_default_database();
    println!("signature database: {} entries", scanner.signature_count());

    // Branch 1: the rootkit hides. The scanner enumerates through the hooked
    // APIs and never sees the files.
    let hits = scanner.scan(&machine, &inocit)?;
    println!("\non-demand scan while hiding: {} hits", hits.len());

    // Inject the GhostBuster DLL into InocIT.exe: the scan-and-diff now runs
    // from inside the scanner's own process.
    let files = FileScanner::new();
    let truth = files.low_scan(&machine)?;
    let lie = files.high_scan(&machine, &inocit, ChainEntry::Win32)?;
    let report = files.diff(&truth, &lie);
    println!("GhostBuster injected into InocIT.exe finds:");
    for d in report.net_detections() {
        println!("  {d}");
    }
    assert!(report.has_detections());

    // Branch 2: the rootkit stops hiding to evade the diff — and the plain
    // signature scan promptly catches it.
    machine.remove_software("HackerDefender");
    let hits = scanner.scan(&machine, &inocit)?;
    println!(
        "\non-demand scan after the rootkit stops hiding: {} hits",
        hits.len()
    );
    for h in &hits {
        println!("  {} at {}", h.signature, h.path);
    }
    assert!(!hits.is_empty());

    println!("\ndilemma: hide -> caught by the diff; don't hide -> caught by signatures");
    Ok(())
}
