//! The paper's headline remediation story (Conclusions): detect Hacker
//! Defender within seconds via the hidden-process diff, locate its hidden
//! auto-start Registry keys within a minute, delete them to disable the
//! malware, reboot, and delete the now-visible files.
//!
//! ```sh
//! cargo run --example remediation
//! ```

use strider_ghostbuster_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = standard_lab_machine("support-case", &WorkloadSpec::small(11), false)?;
    HackerDefender::default().infect(&mut machine)?;
    let gb = GhostBuster::new();
    let model = CostModel::new(paper_profiles()[0].clone());

    // Step 1 — hidden-process detection: deterministic, within seconds.
    let procs = gb.scan_processes_inside(&mut machine)?;
    println!(
        "step 1: hidden-process scan (≈{:.1}s on the paper's desktop) found:",
        model.process_scan_seconds()
    );
    for d in procs.net_detections() {
        println!("  {d}");
    }

    // Step 2 — locate the hidden ASEP hooks: within a minute.
    let hooks = gb.hidden_hooks(&mut machine)?;
    println!(
        "\nstep 2: hidden-ASEP scan (≈{:.0}s) located {} hooks:",
        model.registry_scan_seconds(),
        hooks.len()
    );
    for h in &hooks {
        println!("  {h}");
    }

    // Step 3 — delete the keys: the rootkit cannot restart after reboot.
    let removed = gb.remediate_hooks(&mut machine, &hooks);
    println!("\nstep 3: removed {removed} Registry keys");

    // Step 4 — reboot. With no auto-start hooks the rootkit's hooks and
    // process are gone.
    machine.remove_software("HackerDefender");
    for pid in machine.kernel().find_by_name("hxdef100.exe") {
        machine.kernel_mut().kill(pid)?;
    }
    println!("step 4: rebooted — rootkit no longer auto-starts");

    // Step 5 — the files are visible now; delete them.
    let ctx = gb.enter(&mut machine)?;
    let listing = gb
        .file_scanner()
        .high_scan(&machine, &ctx, ChainEntry::Win32)?;
    let visible: Vec<&str> = listing
        .iter()
        .filter(|(_, f)| f.path.contains("hxdef"))
        .map(|(_, f)| f.path.as_str())
        .collect();
    println!("step 5: now-visible rootkit files: {visible:?}");
    for path in [
        "C:\\windows\\system32\\hxdef100.exe",
        "C:\\windows\\system32\\hxdef100.ini",
        "C:\\windows\\system32\\drivers\\hxdefdrv.sys",
    ] {
        machine.volume_mut().remove_file(&path.parse()?)?;
    }

    let residual = gb.inside_sweep(&mut machine)?;
    println!(
        "\nfinal sweep: {} suspicious findings — machine clean",
        residual.suspicious_count()
    );
    assert_eq!(residual.suspicious_count(), 0);
    Ok(())
}
