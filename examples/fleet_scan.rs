//! Enterprise fleet scan on the fleet service: the paper's RIS deployment
//! story — "corporate IT organizations can remotely deploy the solution on
//! a large number of desktops without requiring user cooperation" — run as
//! a supervised, work-stealing fleet sweep with merged reporting, fault
//! isolation, checkpoint/resume, and continuous fleet monitoring.
//!
//! Self-validating and headless: it runs on a [`FakeClock`], asserts the
//! fleet statistics exactly, and survives an injected device stall with a
//! shard-tagged degradation instead of a fleet failure, so CI can run it
//! as a smoke test:
//!
//! ```sh
//! cargo run --example fleet_scan
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::obs::FakeClock;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Arc::new(FakeClock::default());
    let policy = ScanPolicy::resilient()
        .with_clock(clock.clone())
        .with_poll(100_000, 0)
        .with_pipeline_budget(2_000_000)
        .with_sweep_budget(10_000_000);
    let detector = GhostBuster::new()
        .with_advanced(AdvancedSource::ThreadTable)
        .with_policy(policy.clone());

    // ----------------------------------------------------------------
    // Stage 1: sweep a 12-machine fleet (3 seeded infections) on a
    // 4-worker pool and check the merged report exactly.
    // ----------------------------------------------------------------
    let spec = FleetSpec::clean(12, 2026).with_infected(3);
    let mut fleet = FleetRegistry::seeded(&spec)?;
    let scheduler = FleetScheduler::new(detector.clone()).with_workers(4);

    let report = scheduler.sweep(&mut fleet)?;
    println!("{report}");
    assert_eq!(report.swept, 12);
    assert_eq!(report.infected, 3, "every seeded infection is detected");
    assert_eq!(report.seeded_infected, 3);
    for result in report.results() {
        assert_eq!(
            result.report.is_infected(),
            result.seeded_infected,
            "{} wrong verdict",
            result.shard
        );
    }

    // The fleet latency sketches are the exact merge of the per-shard
    // sketches — order-independent, so the pool's interleaving is free.
    let mut serial: BTreeMap<String, HistogramSketch> = BTreeMap::new();
    for result in report.results() {
        let telemetry = result.report.telemetry.as_ref().expect("swept telemetry");
        for (name, sketch) in &telemetry.histograms {
            serial.entry(name.clone()).or_default().merge(sketch);
        }
    }
    assert_eq!(serial, report.latency, "merged sketches must be exact");
    let p95 = report
        .latency_percentile("files.dir_query_ns", 95.0)
        .expect("fleet-wide file-probe sketch");
    println!("fleet files.dir_query_ns p95: {p95:.0} ns");

    // ----------------------------------------------------------------
    // Stage 2: one machine's volume stalls forever. The shard degrades
    // and stays unfinished in the checkpoint; the fleet completes.
    // (One worker: the fleet shares one fake clock, and the stalled
    // shard's polling advances it past concurrent shards' budgets.)
    // ----------------------------------------------------------------
    fleet.machines_mut()[7]
        .machine
        .set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));
    let serial_scheduler = FleetScheduler::new(detector.clone()).with_workers(1);
    let mut checkpoint = FleetCheckpoint::new(&fleet);
    let stalled_run = serial_scheduler.sweep_checkpointed(&mut fleet, &mut checkpoint)?;

    let stalled = stalled_run.result(ShardId(7)).expect("shard reported");
    println!(
        "\nshard-007 under stall: files {}, registry {}",
        stalled.report.health.files, stalled.report.health.registry
    );
    assert!(stalled.report.health.files.is_degraded());
    assert!(stalled.report.health.registry.is_ok());
    assert_eq!(
        stalled_run.swept, 12,
        "the stall cost a pipeline, not the fleet"
    );
    assert_eq!(stalled_run.health["files"].degraded, 1);
    if let Some(black_box) = stalled.report.black_box("files") {
        println!("shard-007 black box: {} flight events", black_box.len());
        assert!(!black_box.is_empty());
    }
    assert_eq!(
        checkpoint.unfinished_shards(),
        vec![ShardId(7)],
        "a timeout is a reason to re-run, not a result"
    );

    // The checkpoint survives a kill as JSON; resume re-sweeps only the
    // stalled shard once the device recovers.
    let mut parsed = FleetCheckpoint::deserialize(&checkpoint.serialize())?;
    fleet.machines_mut()[7]
        .machine
        .set_fault_injector(FaultInjector::new());
    let resumed = serial_scheduler.sweep_checkpointed(&mut fleet, &mut parsed)?;
    assert!(parsed.is_complete());
    assert_eq!(
        resumed
            .results()
            .iter()
            .filter(|r| !r.restored)
            .map(|r| r.shard)
            .collect::<Vec<_>>(),
        vec![ShardId(7)],
        "only the stalled shard is re-swept"
    );
    assert_eq!(resumed.health["files"].degraded, 0);
    println!("resume re-swept shard-007 only; fleet clean");

    // ----------------------------------------------------------------
    // Stage 3: continuous fleet monitoring — per-shard baselines, then a
    // rootkit lands on one machine and the incident arrives shard-tagged
    // with that shard's flight dump as evidence.
    // ----------------------------------------------------------------
    let mut clean_fleet = FleetRegistry::seeded(&FleetSpec::clean(6, 4096))?;
    let mut monitor = FleetMonitor::new(GhostBuster::new().with_policy(policy))
        .with_config(MonitorConfig::default().with_interval_ns(1_000_000_000));
    monitor.record_baselines(&mut clean_fleet)?;
    let calm = monitor.run(&mut clean_fleet, 2)?;
    let calm_incidents: usize = calm.iter().map(|p| p.incidents.len()).sum();
    assert_eq!(calm_incidents, 0, "a clean fleet must stay quiet");

    HackerDefender::default().infect(&mut clean_fleet.machines_mut()[4].machine)?;
    let pass = monitor.observe(&mut clean_fleet)?;
    println!("\nfleet incidents after infection of shard-004:");
    for incident in &pass.incidents {
        println!("  {incident}");
        assert_eq!(incident.shard, ShardId(4));
        assert!(!incident.incident.flight().is_empty());
    }
    assert!(pass
        .incidents
        .iter()
        .any(|i| matches!(i.incident, MonitorIncident::NewHiddenResource { .. })));
    assert_eq!(pass.infected_shards(), vec![ShardId(4)]);
    assert_eq!(monitor.series("fleet.infected").unwrap().last(), Some(1.0));

    println!("\nOK");
    Ok(())
}
