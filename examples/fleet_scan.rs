//! Enterprise fleet scan: the paper's RIS deployment story — "corporate IT
//! organizations can remotely deploy the solution on a large number of
//! desktops without requiring user cooperation". A fleet of machines, a few
//! of them infected with different families, swept inside-the-box and (for
//! the suspicious ones) re-checked with the RIS network-boot outside flow.
//!
//! ```sh
//! cargo run --example fleet_scan
//! ```

use strider_ghostbuster_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infections: [Option<Box<dyn Ghostware>>; 8] = [
        None,
        Some(Box::new(HackerDefender::default())),
        None,
        Some(Box::new(Fu::default())),
        None,
        Some(Box::new(ProBotSe::default())),
        None,
        None,
    ];

    println!(
        "{:<10} {:<8} {:>10} {:>8} {:>12} {:>14}",
        "machine", "class", "suspicious", "noise", "RIS verdict", "ground truth"
    );
    println!("{}", "-".repeat(70));

    let mut correct = 0;
    for (profile, infection) in paper_profiles().iter().zip(infections.iter()) {
        let mut machine = standard_lab_machine(
            profile.name,
            &WorkloadSpec::small(7000 + u64::from(profile.cpu_mhz)),
            profile.ccm_enabled,
        )?;
        machine.tick(350);
        let truly_infected = infection.is_some();
        if let Some(sample) = infection {
            sample.infect(&mut machine)?;
        }

        // Stage 1: the cheap inside-the-box sweep on every desktop.
        let gb = GhostBuster::new().with_advanced(AdvancedSource::ThreadTable);
        let inside = gb.inside_sweep(&mut machine)?;

        // Stage 2: suspicious machines get the RIS network-boot re-check.
        let ris_verdict = if inside.is_infected() {
            let outside = gb.ris_outside_sweep(&mut machine, 100)?;
            if outside.is_infected() {
                "infected"
            } else {
                "clean"
            }
        } else {
            "-"
        };

        let verdict_matches = inside.is_infected() == truly_infected;
        if verdict_matches {
            correct += 1;
        }
        println!(
            "{:<10} {:<8} {:>10} {:>8} {:>12} {:>14}",
            profile.name,
            profile.class.split(' ').next().unwrap_or(""),
            inside.suspicious_count(),
            inside.noise_count(),
            ris_verdict,
            if truly_infected { "infected" } else { "clean" },
        );
        assert!(verdict_matches, "{}: wrong verdict", profile.name);
    }
    println!("{}", "-".repeat(70));
    println!("fleet verdicts correct: {correct}/8");
    Ok(())
}
