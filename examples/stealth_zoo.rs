//! The stealth zoo: every Windows sample from Figures 2–6, each on its own
//! machine, detected by the appropriate GhostBuster scan — the whole
//! evaluation in one run.
//!
//! ```sh
//! cargo run --example stealth_zoo
//! ```

use strider_ghostbuster_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<26} {:<28} {:>6} {:>6} {:>6}",
        "ghostware", "technique", "files", "hooks", "procs"
    );
    println!("{}", "-".repeat(80));

    let mut all_detected = true;
    for (i, sample) in file_hiding_corpus()
        .into_iter()
        .chain(process_hiding_corpus())
        .enumerate()
    {
        let mut machine = standard_lab_machine(
            &format!("zoo-{i}"),
            &WorkloadSpec::small(900 + i as u64),
            false,
        )?;
        let infection = sample.infect(&mut machine)?;
        let gb = GhostBuster::new().with_advanced(AdvancedSource::ThreadTable);
        let sweep = gb.inside_sweep(&mut machine)?;
        let techniques = infection
            .techniques
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("+");
        println!(
            "{:<26} {:<28} {:>6} {:>6} {:>6}",
            infection.ghostware,
            techniques,
            sweep.files.net_detections().len(),
            sweep.hooks.net_detections().len(),
            sweep.processes.net_detections().len() + sweep.modules.net_detections().len(),
        );
        if infection.hides_something() && !sweep.is_infected() {
            all_detected = false;
        }
    }

    println!("{}", "-".repeat(80));
    println!(
        "verdict: {}",
        if all_detected {
            "every hiding sample detected by the cross-view diff"
        } else {
            "MISSED SAMPLES — reproduction broken"
        }
    );
    assert!(all_detected);
    Ok(())
}
