//! Quickstart: build a simulated machine, infect it with Hacker Defender,
//! and run the full inside-the-box GhostBuster sweep.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use strider_ghostbuster_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with the standard Windows base system, a synthetic workload,
    // and the usual always-running services.
    let mut machine = standard_lab_machine("demo-box", &WorkloadSpec::small(7), false)?;
    println!(
        "machine '{}': {} files, {} registry keys, {} processes",
        machine.name(),
        machine.volume().record_count(),
        machine.registry().key_count(),
        machine.kernel().active_process_list().len()
    );

    // A clean sweep first: the cross-view diff reports nothing.
    let clean = GhostBuster::new().inside_sweep(&mut machine)?;
    println!(
        "clean sweep: {} suspicious findings, {} noise\n",
        clean.suspicious_count(),
        clean.noise_count()
    );

    // Infect with Hacker Defender 1.0: files, two service ASEP hooks, and a
    // process, all hidden by NtDll detours.
    let infection = HackerDefender::default().infect(&mut machine)?;
    println!(
        "infected with {} (techniques: {:?})",
        infection.ghostware,
        infection
            .techniques
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );

    // The lie: ordinary enumeration shows nothing.
    let ctx = machine
        .context_for_name("explorer.exe")
        .expect("explorer runs");
    let rows = machine.query(
        &ctx,
        &Query::DirectoryEnum {
            path: "C:\\windows\\system32".parse()?,
        },
        ChainEntry::Win32,
    )?;
    println!(
        "explorer's view of system32 mentions hxdef: {}",
        rows.iter()
            .any(|r| r.name().to_win32_lossy().contains("hxdef"))
    );

    // The cross-view diff exposes everything.
    let sweep = GhostBuster::new().inside_sweep(&mut machine)?;
    println!("\n{sweep}");
    assert!(sweep.is_infected());
    Ok(())
}
