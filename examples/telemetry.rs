//! Telemetry: run a full instrumented sweep, print the span tree with
//! per-phase timings, and export the structured report as JSON.
//!
//! ```sh
//! cargo run --example telemetry
//! ```

use strider_ghostbuster_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = standard_lab_machine("telemetry-box", &WorkloadSpec::small(7), false)?;
    HackerDefender::default().infect(&mut machine)?;

    // One Telemetry registry threads through every scanner in the sweep.
    let telemetry = Telemetry::new();
    let sweep = GhostBuster::new()
        .with_telemetry(telemetry.clone())
        .inside_sweep(&mut machine)?;
    println!(
        "sweep: {} suspicious, {} noise\n",
        sweep.suspicious_count(),
        sweep.noise_count()
    );

    // The span tree: every scan phase with duration and attributes, down to
    // the hook-chain level at which the high-level view diverged.
    let report = sweep.telemetry.as_ref().expect("telemetry attached");
    print!("{}", report.render_tree());

    // Counters: per-pipeline, per-view entry counts. The low-level views
    // seeing *more* entries than the high-level ones is the detection.
    println!();
    for (name, value) in &report.counters {
        println!("{name} = {value}");
    }

    // Export the whole report as JSON (SCAN_TELEMETRY_<label>.json in the
    // current directory, or $STRIDER_BENCH_DIR when set).
    let path = report.write_json("inside_sweep")?;
    println!("\ntelemetry report written to {}", path.display());
    Ok(())
}
