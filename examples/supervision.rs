//! Supervised sweep: a truth source that stalls forever costs one
//! pipeline, not the sweep — and a checkpoint lets the next sweep resume
//! where the interrupted one left off.
//!
//! A rootkit that cannot out-hide the cross-view diff can still try to
//! out-wait it: wedge the raw volume handle and the unsupervised detector
//! blocks forever. The supervised engine bounds every pipeline with a
//! deadline, records the loss as `Degraded` in the health ledger, and
//! checkpoints the pipelines that did finish. Everything runs on a
//! [`FakeClock`], so "two milliseconds of stalling" is simulated instantly.
//!
//! ```sh
//! cargo run --example supervision
//! ```

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::Stall;
use strider_support::obs::{Clock, FakeClock};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::with_base_system("victim")?;
    HackerDefender::default().infect(&mut machine)?;

    // The adversary wedges raw volume reads: every poll comes back
    // STATUS_PENDING, forever.
    machine.set_fault_injector(FaultInjector::new().stall_volume_reads(Stall::forever()));

    let clock = Arc::new(FakeClock::default());
    let policy = ScanPolicy::resilient()
        .with_clock(clock.clone())
        .with_poll(100_000, 0) // poll stalled reads every 100 µs
        .with_pipeline_budget(2_000_000) // 2 ms per pipeline
        .with_sweep_budget(10_000_000); // 10 ms for the whole sweep
    let gb = GhostBuster::new().with_policy(policy.clone());

    // Sweep 1: the file pipeline times out at its deadline; the other three
    // finish normally and land in the checkpoint.
    let mut checkpoint = SweepCheckpoint::new(&machine);
    let report = gb.inside_sweep_checkpointed(&mut machine, &mut checkpoint)?;
    println!("sweep against a wedged volume handle:");
    println!("  health: {}", report.health);
    println!("  simulated time: {} µs", clock.now_ns() / 1_000);
    println!("  unfinished pipelines: {:?}", checkpoint.unfinished());
    assert!(report.health.registry.is_ok());
    assert!(!report.health.files.is_ok());

    // The checkpoint serializes to JSON — the form a killed sweep leaves on
    // disk for its successor.
    let saved = checkpoint.serialize();
    println!("\ncheckpoint ({} bytes of JSON) saved", saved.len());

    // The operator clears the wedged handle (reboot, new session, …) and a
    // fresh detector resumes: only the file pipeline re-runs.
    machine.clear_fault_injector();
    let mut restored = SweepCheckpoint::deserialize(&saved)?;
    let resumed = GhostBuster::new()
        .with_policy(policy)
        .resume(&mut machine, &mut restored)?;
    println!("\nresumed sweep (files only):");
    println!("  health: {}", resumed.health);
    println!(
        "  hidden files found: {}",
        resumed.files.net_detections().len()
    );
    assert!(resumed.health.is_all_ok());
    assert!(resumed.is_infected());
    assert!(restored.is_complete());
    println!("\nthe stall cost one pipeline one budget — never the sweep");
    Ok(())
}
