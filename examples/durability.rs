//! Durable fleet sweeps: kill the process anywhere, resume to the same
//! answer.
//!
//! A fleet sweep journals per-shard progress into a checksummed,
//! generational [`RecordStore`] — one O(1) appended record per completed
//! shard. This example proves the two durability claims end to end and is
//! self-validating (running it green IS the check):
//!
//! 1. **Kill-anywhere resume.** A [`CrashPlan`] kills the journal write
//!    mid-byte-stream; a rerun against the reopened store resumes the
//!    finished shards from disk and sweeps only the rest — and the merged
//!    report's [`FleetReport::result_digest`] is byte-identical to an
//!    uninterrupted run's.
//! 2. **Generation fallback.** A bit flipped inside the newest committed
//!    checkpoint frame fails its checksum on reopen; recovery falls back
//!    to the previous generation instead of panicking or trusting the
//!    damaged bytes.
//!
//! ```sh
//! cargo run --example durability
//! ```

use std::sync::Arc;
use strider_ghostbuster_repro::prelude::*;
use strider_support::fault::CrashPlan;
use strider_support::obs::FakeClock;
use strider_support::store::RecordStore;

fn fleet() -> Result<FleetRegistry, Box<dyn std::error::Error>> {
    Ok(FleetRegistry::seeded(
        &FleetSpec::clean(6, 1811).with_infected(2),
    )?)
}

fn scheduler() -> FleetScheduler {
    let detector = GhostBuster::new()
        .with_advanced(AdvancedSource::ThreadTable)
        .with_policy(
            ScanPolicy::resilient()
                .with_clock(Arc::new(FakeClock::default()))
                .with_poll(100_000, 0)
                .with_pipeline_budget(2_000_000)
                .with_sweep_budget(10_000_000),
        );
    // One worker, one-shard batches: the journal's write order is
    // deterministic, so the crash below lands at a reproducible point.
    FleetScheduler::new(detector).with_workers(1).with_batch(1)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("strider-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // ------------------------------------------------------------------
    // Act 1 — the reference run: uninterrupted, journaled, measured.
    // ------------------------------------------------------------------
    let plan = Arc::new(CrashPlan::never());
    let store = RecordStore::open(dir.join("reference.wal"))?.with_crash_plan(plan.clone());
    let reference = scheduler().sweep_durable(&mut fleet()?, &store, DurabilityMode::WalAppend)?;
    assert_eq!(reference.swept, 6);
    assert_eq!(reference.infected, 2);
    let reference_digest = reference.result_digest();
    let journal_bytes = plan.written();
    println!(
        "reference sweep: {} machines, {} infected, {journal_bytes} journal bytes",
        reference.machines, reference.infected
    );

    // ------------------------------------------------------------------
    // Act 2 — kill the journal two-thirds of the way through, then
    // restart: fresh fleet, reopened store, same call.
    // ------------------------------------------------------------------
    let path = dir.join("killed.wal");
    let store = RecordStore::open(&path)?
        .with_crash_plan(Arc::new(CrashPlan::at_write_byte(journal_bytes * 2 / 3)));
    let err = scheduler()
        .sweep_durable(&mut fleet()?, &store, DurabilityMode::WalAppend)
        .expect_err("the injected crash must surface");
    assert!(err.is_injected_crash(), "unexpected failure: {err}");
    println!(
        "killed mid-journal at byte {}: {err}",
        journal_bytes * 2 / 3
    );

    let store = RecordStore::open(&path)?; // reopen repairs any torn tail
    let resumed = scheduler().sweep_durable(&mut fleet()?, &store, DurabilityMode::WalAppend)?;
    let restored = resumed.results().iter().filter(|r| r.restored).count();
    assert!(restored > 0, "the journal must have saved some shards");
    assert_eq!(resumed.result_digest(), reference_digest);
    println!(
        "resumed: {restored} shards restored from the journal, {} re-swept — digest identical",
        resumed.machines as usize - restored
    );

    // ------------------------------------------------------------------
    // Act 3 — flip one bit in the newest committed frame: recovery falls
    // back a generation instead of panicking.
    // ------------------------------------------------------------------
    let cp_path = dir.join("checkpoint.store");
    let store = RecordStore::open(&cp_path)?;
    store.commit(b"generation-one")?;
    store.commit(b"generation-two")?;
    let newest_offset = store.recover()?.latest().expect("two generations").offset;
    let mut bytes = std::fs::read(&cp_path)?;
    bytes[newest_offset as usize + 30] ^= 0x10; // one bit, inside the payload
    std::fs::write(&cp_path, &bytes)?;

    let recovered = RecordStore::open(&cp_path)?.recover()?;
    assert_eq!(recovered.records.len(), 1, "gen 2 must be distrusted");
    assert_eq!(recovered.records[0].payload, b"generation-one");
    println!(
        "bit flip detected: fell back to generation {} (\"{}\")",
        recovered.records[0].generation,
        String::from_utf8_lossy(&recovered.records[0].payload)
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("OK");
    Ok(())
}
