//! A simulated NT kernel: the volatile-state substrate GhostBuster scans.
//!
//! The paper's process/module detection (Section 4) rests on the observation
//! that the kernel keeps *several* data structures describing the same
//! processes, and ghostware rarely doctors all of them consistently:
//!
//! * the **Active Process List** — an intrusive doubly-linked list of
//!   process objects, the "truth approximation" behind
//!   `NtQuerySystemInformation`. The FU rootkit's Direct Kernel Object
//!   Manipulation (DKOM) unlinks a process from this list while its threads
//!   remain schedulable;
//! * the **scheduler thread table** — every schedulable thread names its
//!   owning process, so traversing it re-discovers DKOM-hidden processes
//!   (GhostBuster's *advanced mode*);
//! * the **subsystem handle table** — `csrss.exe` holds a handle to every
//!   Win32 process, an alternative advanced-mode truth source;
//! * per-process **PEB loader module lists** (user-writable — Vanquish blanks
//!   its DLL's pathname there) versus the kernel's own mapped-image list.
//!
//! [`Kernel`] maintains all of these with real link/unlink mechanics, plus
//! the Service Dispatch Table ([`Ssdt`]) and filesystem filter-driver stack
//! that the interception-based hiders manipulate, and can serialize itself
//! to a [`MemoryDump`] — the paper's induced-blue-screen outside-the-box
//! scan — including the "future ghostware scrubs the dump" attack.
//!
//! # Examples
//!
//! ```
//! use strider_kernel::Kernel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut k = Kernel::with_base_processes();
//! let pid = k.spawn("hxdef100.exe", "C:\\windows\\hxdef100.exe".parse()?, None)?;
//! assert!(k.active_process_list().contains(&pid));
//! k.dkom_unlink(pid)?; // FU-style hiding
//! assert!(!k.active_process_list().contains(&pid));
//! assert!(k.processes_via_threads().contains(&pid)); // advanced mode truth
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dump;
mod kernel;
mod process;
mod ssdt;

pub use dump::{DumpError, DumpProcess, MemoryDump};
pub use kernel::{DumpScrub, Kernel, KernelError};
pub use process::{Driver, Eprocess, Ethread, ModuleEntry, ThreadState};
pub use ssdt::{Ssdt, SsdtEntry, SyscallId};
pub use strider_support::fault::{Defect, DefectKind, Salvaged, TransientFaults};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::{
        Driver, DumpError, DumpScrub, Eprocess, Ethread, Kernel, KernelError, MemoryDump,
        ModuleEntry, Ssdt, SyscallId, ThreadState,
    };
}
