//! The Service Dispatch Table (SSDT).
//!
//! Kernel-mode interception à la ProBot SE: a ghostware driver overwrites a
//! dispatch entry so every syscall of that kind, from every process, routes
//! through its filter before (or instead of) the original handler. The
//! entries here carry an optional hook id resolved by the machine's hook
//! registry in `strider-winapi`.

use std::fmt;

/// The system services the simulated API chain dispatches through the SSDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallId {
    /// Directory enumeration (`NtQueryDirectoryFile`).
    NtQueryDirectoryFile,
    /// Registry subkey enumeration (`NtEnumerateKey`).
    NtEnumerateKey,
    /// Registry value enumeration (`NtEnumerateValueKey`).
    NtEnumerateValueKey,
    /// Process/system information (`NtQuerySystemInformation`).
    NtQuerySystemInformation,
    /// Per-process information incl. modules (`NtQueryInformationProcess`).
    NtQueryInformationProcess,
}

impl SyscallId {
    /// All services in dispatch-table order.
    pub const ALL: [SyscallId; 5] = [
        SyscallId::NtQueryDirectoryFile,
        SyscallId::NtEnumerateKey,
        SyscallId::NtEnumerateValueKey,
        SyscallId::NtQuerySystemInformation,
        SyscallId::NtQueryInformationProcess,
    ];
}

impl fmt::Display for SyscallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SyscallId::NtQueryDirectoryFile => "NtQueryDirectoryFile",
            SyscallId::NtEnumerateKey => "NtEnumerateKey",
            SyscallId::NtEnumerateValueKey => "NtEnumerateValueKey",
            SyscallId::NtQuerySystemInformation => "NtQuerySystemInformation",
            SyscallId::NtQueryInformationProcess => "NtQueryInformationProcess",
        };
        f.write_str(name)
    }
}

/// One SSDT entry: the service and, when hijacked, the hook routed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdtEntry {
    /// The dispatched service.
    pub service: SyscallId,
    /// `Some(hook)` when a ghostware driver replaced the dispatch pointer.
    pub hook: Option<u32>,
}

/// The Service Dispatch Table.
///
/// # Examples
///
/// ```
/// use strider_kernel::{Ssdt, SyscallId};
///
/// let mut ssdt = Ssdt::new();
/// assert!(ssdt.hook_of(SyscallId::NtQueryDirectoryFile).is_none());
/// ssdt.install_hook(SyscallId::NtQueryDirectoryFile, 7);
/// assert_eq!(ssdt.hook_of(SyscallId::NtQueryDirectoryFile), Some(7));
/// assert_eq!(ssdt.hooked_services().len(), 1);
/// ssdt.restore(SyscallId::NtQueryDirectoryFile);
/// assert!(ssdt.hook_of(SyscallId::NtQueryDirectoryFile).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ssdt {
    entries: Vec<SsdtEntry>,
}

impl Default for Ssdt {
    fn default() -> Self {
        Self::new()
    }
}

impl Ssdt {
    /// Creates a pristine table with every service pointing at its original
    /// handler.
    pub fn new() -> Self {
        Self {
            entries: SyscallId::ALL
                .iter()
                .map(|&service| SsdtEntry {
                    service,
                    hook: None,
                })
                .collect(),
        }
    }

    /// The table entries in dispatch order.
    pub fn entries(&self) -> &[SsdtEntry] {
        &self.entries
    }

    /// The hook installed on `service`, if any.
    pub fn hook_of(&self, service: SyscallId) -> Option<u32> {
        self.entries
            .iter()
            .find(|e| e.service == service)
            .and_then(|e| e.hook)
    }

    /// Replaces the dispatch pointer of `service` with `hook`, returning the
    /// previous hook if one was installed (hooks chain by wrapping).
    pub fn install_hook(&mut self, service: SyscallId, hook: u32) -> Option<u32> {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.service == service)
            .expect("every service has an entry");
        entry.hook.replace(hook)
    }

    /// Restores the original dispatch pointer (the VICE-style countermeasure
    /// the paper cites as "Direct Service Dispatch Table Restoration").
    pub fn restore(&mut self, service: SyscallId) -> Option<u32> {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.service == service)
            .expect("every service has an entry");
        entry.hook.take()
    }

    /// Services currently hijacked — what a mechanism-targeting hook scanner
    /// reports.
    pub fn hooked_services(&self) -> Vec<SyscallId> {
        self.entries
            .iter()
            .filter(|e| e.hook.is_some())
            .map(|e| e.service)
            .collect()
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(
    enum SyscallId {
        NtQueryDirectoryFile,
        NtEnumerateKey,
        NtEnumerateValueKey,
        NtQuerySystemInformation,
        NtQueryInformationProcess,
    }
);
strider_support::impl_json!(struct SsdtEntry { service, hook });
strider_support::impl_json!(struct Ssdt { entries });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_clean() {
        let t = Ssdt::new();
        assert_eq!(t.entries().len(), SyscallId::ALL.len());
        assert!(t.hooked_services().is_empty());
    }

    #[test]
    fn install_replaces_and_returns_previous() {
        let mut t = Ssdt::new();
        assert_eq!(t.install_hook(SyscallId::NtEnumerateKey, 1), None);
        assert_eq!(t.install_hook(SyscallId::NtEnumerateKey, 2), Some(1));
        assert_eq!(t.hook_of(SyscallId::NtEnumerateKey), Some(2));
    }

    #[test]
    fn restore_clears() {
        let mut t = Ssdt::new();
        t.install_hook(SyscallId::NtQuerySystemInformation, 9);
        assert_eq!(t.restore(SyscallId::NtQuerySystemInformation), Some(9));
        assert!(t.hooked_services().is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            SyscallId::NtQueryDirectoryFile.to_string(),
            "NtQueryDirectoryFile"
        );
    }
}
