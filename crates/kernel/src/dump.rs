//! Kernel memory dumps: the blue-screen outside-the-box path.
//!
//! Persisting volatile state is the prerequisite for scanning it outside the
//! box (paper, Section 4). The ideal transports — a Copilot-style PCI card or
//! a Myrinet NIC doing DMA — are modeled by the same bytes arriving without
//! scrubbing; the practical transport is an induced kernel crash, which
//! "future ghostware" may trap: [`write_dump`] honours any registered
//! scrubbers, so the dump is explicitly a *truth approximation*.
//!
//! The parser is independent of the kernel's in-memory representation and
//! re-derives both process views (APL walk and thread-table sweep) from the
//! dumped bytes alone.

use crate::kernel::Kernel;
use crate::process::{Driver, Ethread, ModuleEntry, ThreadState};
use std::fmt;
use strider_nt_core::{NtPath, NtString, Pid, Tick, Tid};
use strider_support::bytes::{Buf, BufMut, BytesMut};
use strider_support::fault::{Defect, DefectKind, Salvaged};

const MAGIC: &[u8; 8] = b"SDMP1\0\0\0";
const VERSION: u32 = 1;
const NO_PID: u32 = u32::MAX;

/// Serializes the kernel to dump bytes, applying dump scrubbers.
pub(crate) fn write_dump(k: &Kernel) -> Vec<u8> {
    let scrub_pids: Vec<Pid> = k
        .dump_scrubbers()
        .iter()
        .flat_map(|s| s.pids.iter().copied())
        .collect();
    let scrub_modules: Vec<NtString> = k
        .dump_scrubbers()
        .iter()
        .flat_map(|s| s.module_names.iter().cloned())
        .collect();
    let scrubbed = |pid: Pid| scrub_pids.contains(&pid);
    let module_scrubbed = |m: &ModuleEntry| scrub_modules.iter().any(|n| n.eq_ignore_case(&m.name));

    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);

    let procs: Vec<_> = k.processes().filter(|p| !scrubbed(p.pid)).collect();
    buf.put_u32_le(procs.len() as u32);
    for p in &procs {
        buf.put_u32_le(p.pid.0);
        buf.put_u32_le(p.parent.map_or(NO_PID, |x| x.0));
        put_name(&mut buf, &p.image_name);
        put_path(&mut buf, &p.image_path);
        buf.put_u64_le(p.created.0);
        buf.put_u8(u8::from(p.in_apl));
        // A scrubbed neighbour in the APL links would leave a dangling
        // reference; patch links past scrubbed pids the way in-memory
        // unlinking would have.
        buf.put_u32_le(patch_link(k, p.apl_next, &scrub_pids, true));
        buf.put_u32_le(patch_link(k, p.apl_prev, &scrub_pids, false));
        for list in [&p.peb_modules, &p.kernel_modules] {
            let kept: Vec<_> = list.iter().filter(|m| !module_scrubbed(m)).collect();
            buf.put_u32_le(kept.len() as u32);
            for m in kept {
                buf.put_u64_le(m.base);
                put_name(&mut buf, &m.name);
                put_name(&mut buf, &m.path);
            }
        }
        buf.put_u32_le(p.threads.len() as u32);
        for t in &p.threads {
            buf.put_u32_le(t.0);
        }
    }

    let threads: Vec<_> = k.threads().filter(|t| !scrubbed(t.owner)).collect();
    buf.put_u32_le(threads.len() as u32);
    for t in threads {
        buf.put_u32_le(t.tid.0);
        buf.put_u32_le(t.owner.0);
        buf.put_u8(match t.state {
            ThreadState::Ready => 0,
            ThreadState::Running => 1,
            ThreadState::Waiting => 2,
        });
    }

    buf.put_u32_le(k.drivers().len() as u32);
    for d in k.drivers() {
        put_name(&mut buf, &d.name);
        put_path(&mut buf, &d.image_path);
        buf.put_u64_le(d.loaded_at.0);
    }

    let head = k
        .apl_head()
        .map(|h| skip_scrubbed_forward(k, h, &scrub_pids))
        .unwrap_or(NO_PID);
    buf.put_u32_le(head);
    buf.to_vec()
}

fn skip_scrubbed_forward(k: &Kernel, from: Pid, scrub: &[Pid]) -> u32 {
    let mut cur = Some(from);
    let mut hops = 0usize;
    while let Some(pid) = cur {
        if !scrub.contains(&pid) {
            return pid.0;
        }
        cur = k.process(pid).and_then(|p| p.apl_next);
        hops += 1;
        if hops > 1_000_000 {
            break;
        }
    }
    NO_PID
}

fn patch_link(k: &Kernel, link: Option<Pid>, scrub: &[Pid], forward: bool) -> u32 {
    let mut cur = link;
    let mut hops = 0usize;
    while let Some(pid) = cur {
        if !scrub.contains(&pid) {
            return pid.0;
        }
        cur = k
            .process(pid)
            .and_then(|p| if forward { p.apl_next } else { p.apl_prev });
        hops += 1;
        if hops > 1_000_000 {
            break;
        }
    }
    NO_PID
}

fn put_name(buf: &mut BytesMut, name: &NtString) {
    buf.put_u16_le(name.len() as u16);
    for &u in name.units() {
        buf.put_u16_le(u);
    }
}

fn put_path(buf: &mut BytesMut, path: &NtPath) {
    let root = path.root().as_bytes();
    buf.put_u16_le(root.len() as u16);
    buf.put_slice(root);
    buf.put_u16_le(path.components().len() as u16);
    for c in path.components() {
        put_name(buf, c);
    }
}

/// Error produced while parsing dump bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpError {
    /// The dump ran out of bytes inside the named structure.
    Truncated {
        /// What was being parsed.
        context: &'static str,
    },
    /// Wrong magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::Truncated { context } => write!(f, "dump truncated while reading {context}"),
            DumpError::BadMagic => write!(f, "bad dump magic"),
            DumpError::BadVersion(v) => write!(f, "unsupported dump version {v}"),
        }
    }
}

impl std::error::Error for DumpError {}

/// Maps a strict-parse error to the workspace-wide salvage vocabulary;
/// `offset` is where parsing stood when the damage surfaced.
fn defect_for(e: &DumpError, offset: u64, total: u64) -> Defect {
    let (kind, context) = match e {
        DumpError::Truncated { context } => (DefectKind::Truncated, *context),
        DumpError::BadMagic => (DefectKind::BadMagic, "dump magic"),
        DumpError::BadVersion(_) => (DefectKind::BadVersion, "dump version"),
    };
    Defect::new(kind, offset, total.saturating_sub(offset), context)
}

/// One process recovered from a dump.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpProcess {
    /// Process id.
    pub pid: Pid,
    /// Parent pid.
    pub parent: Option<Pid>,
    /// Image file name.
    pub image_name: NtString,
    /// Full image path.
    pub image_path: NtPath,
    /// Creation time.
    pub created: Tick,
    /// Linked into the APL at dump time.
    pub in_apl: bool,
    /// APL forward link.
    pub apl_next: Option<Pid>,
    /// APL backward link.
    pub apl_prev: Option<Pid>,
    /// User-mode loader module list.
    pub peb_modules: Vec<ModuleEntry>,
    /// Kernel mapped-image list.
    pub kernel_modules: Vec<ModuleEntry>,
    /// Thread ids.
    pub threads: Vec<Tid>,
}

/// A parsed kernel memory dump.
///
/// # Examples
///
/// ```
/// use strider_kernel::{Kernel, MemoryDump};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut k = Kernel::with_base_processes();
/// let ghost = k.spawn("ghost.exe", "C:\\g.exe".parse()?, None)?;
/// k.dkom_unlink(ghost)?;
/// let dump = MemoryDump::parse(&k.crash_dump())?;
/// assert!(!dump.processes_via_apl().contains(&ghost));
/// assert!(dump.processes_via_threads().contains(&ghost));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryDump {
    processes: Vec<DumpProcess>,
    threads: Vec<Ethread>,
    drivers: Vec<Driver>,
    apl_head: Option<Pid>,
    byte_len: u64,
}

impl MemoryDump {
    /// Parses dump bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DumpError`] on truncation or a bad header.
    pub fn parse(bytes: &[u8]) -> Result<Self, DumpError> {
        let mut s = bytes;
        parse_header(&mut s)?;
        let proc_count = get_u32(&mut s, "process count")?;
        let mut processes = Vec::with_capacity(capped(proc_count, MIN_PROCESS_BYTES, s));
        for _ in 0..proc_count {
            processes.push(parse_process(&mut s)?);
        }
        let thread_count = get_u32(&mut s, "thread table count")?;
        let mut threads = Vec::with_capacity(capped(thread_count, MIN_THREAD_BYTES, s));
        for _ in 0..thread_count {
            threads.push(parse_thread(&mut s)?);
        }
        let driver_count = get_u32(&mut s, "driver count")?;
        let mut drivers = Vec::with_capacity(capped(driver_count, MIN_DRIVER_BYTES, s));
        for _ in 0..driver_count {
            drivers.push(parse_driver(&mut s)?);
        }
        let head_raw = get_u32(&mut s, "apl head")?;
        Ok(Self {
            processes,
            threads,
            drivers,
            apl_head: (head_raw != NO_PID).then_some(Pid(head_raw)),
            byte_len: bytes.len() as u64,
        })
    }

    /// Best-effort parse for damaged dumps — a crash dump captured
    /// mid-flight is routinely truncated or torn. Records are written
    /// back-to-back with no framing, so the first unparseable record makes
    /// the rest of its section (and everything after) unaddressable:
    /// salvage keeps every process/thread/driver recovered before the
    /// damage, records one [`Defect`] locating it, and returns. Never
    /// panics and never errors.
    pub fn parse_salvage(bytes: &[u8]) -> Salvaged<Self> {
        let total = bytes.len() as u64;
        let mut s = bytes;
        let mut defects = Vec::new();
        let mut processes = Vec::new();
        let mut threads = Vec::new();
        let mut drivers = Vec::new();
        let mut apl_head = None;
        // One labeled block: the first damaged record aborts the walk, and
        // whatever was recovered up to that point is the salvage.
        'walk: {
            macro_rules! try_salvage {
                ($expr:expr) => {
                    match $expr {
                        Ok(v) => v,
                        Err(e) => {
                            let offset = total - s.remaining() as u64;
                            defects.push(defect_for(&e, offset, total));
                            break 'walk;
                        }
                    }
                };
            }
            try_salvage!(parse_header(&mut s));
            let proc_count = try_salvage!(get_u32(&mut s, "process count"));
            for _ in 0..proc_count {
                processes.push(try_salvage!(parse_process(&mut s)));
            }
            let thread_count = try_salvage!(get_u32(&mut s, "thread table count"));
            for _ in 0..thread_count {
                threads.push(try_salvage!(parse_thread(&mut s)));
            }
            let driver_count = try_salvage!(get_u32(&mut s, "driver count"));
            for _ in 0..driver_count {
                drivers.push(try_salvage!(parse_driver(&mut s)));
            }
            let head_raw = try_salvage!(get_u32(&mut s, "apl head"));
            apl_head = (head_raw != NO_PID).then_some(Pid(head_raw));
        }
        Salvaged {
            value: Self {
                processes,
                threads,
                drivers,
                apl_head,
                byte_len: total,
            },
            defects,
        }
    }

    /// All processes recovered from the dump's object table.
    pub fn processes(&self) -> &[DumpProcess] {
        &self.processes
    }

    /// A process by pid.
    pub fn process(&self, pid: Pid) -> Option<&DumpProcess> {
        self.processes.iter().find(|p| p.pid == pid)
    }

    /// The thread table.
    pub fn threads(&self) -> &[Ethread] {
        &self.threads
    }

    /// The driver list.
    pub fn drivers(&self) -> &[Driver] {
        &self.drivers
    }

    /// Dump size in bytes (drives the cost model).
    pub fn byte_len(&self) -> u64 {
        self.byte_len
    }

    /// Walks the dumped Active Process List by following links.
    pub fn processes_via_apl(&self) -> Vec<Pid> {
        let mut out = Vec::new();
        let mut cur = self.apl_head;
        let mut hops = 0;
        while let Some(pid) = cur {
            out.push(pid);
            cur = self.process(pid).and_then(|p| p.apl_next);
            hops += 1;
            if hops > self.processes.len() + 1 {
                break;
            }
        }
        out
    }

    /// Sweeps the dumped thread table for owning processes (advanced mode).
    pub fn processes_via_threads(&self) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self.threads.iter().map(|t| t.owner).collect();
        pids.sort();
        pids.dedup();
        pids
    }
}

// Minimum serialized footprint of each record type, used to bound
// `Vec::with_capacity` against the bytes that could actually back a count
// field — the counts are untrusted and a corrupted one must not trigger a
// multi-gigabyte allocation.
const MIN_PROCESS_BYTES: usize = 33; // pid+parent+2 name lens+created+in_apl+links+counts
const MIN_THREAD_BYTES: usize = 9; // tid + owner + state
const MIN_DRIVER_BYTES: usize = 14; // name len + path lens + load time

/// Caps an untrusted record count by the records the remaining bytes could
/// possibly hold, so pre-allocation is bounded by the input size.
fn capped(count: u32, min_record: usize, s: &[u8]) -> usize {
    (count as usize).min(s.remaining() / min_record)
}

/// Validates the dump magic and version. All reads are length-checked.
fn parse_header(s: &mut &[u8]) -> Result<(), DumpError> {
    if s.remaining() < 8 {
        return Err(DumpError::Truncated { context: "magic" });
    }
    let mut magic = [0u8; 8];
    s.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DumpError::BadMagic);
    }
    let version = get_u32(s, "version")?;
    if version != VERSION {
        return Err(DumpError::BadVersion(version));
    }
    Ok(())
}

/// Reads one process record. Every count field read from the dump is
/// consumed incrementally against length-checked reads, so arbitrary values
/// cannot cause out-of-bounds access or oversized allocations.
fn parse_process(s: &mut &[u8]) -> Result<DumpProcess, DumpError> {
    let pid = Pid(get_u32(s, "pid")?);
    let parent_raw = get_u32(s, "parent")?;
    let image_name = get_name(s, "image name")?;
    let image_path = get_path(s, "image path")?;
    let created = Tick(get_u64(s, "created")?);
    let in_apl = get_u8(s, "in_apl")? == 1;
    let next_raw = get_u32(s, "apl next")?;
    let prev_raw = get_u32(s, "apl prev")?;
    let mut lists: [Vec<ModuleEntry>; 2] = [Vec::new(), Vec::new()];
    for list in &mut lists {
        let count = get_u32(s, "module count")?;
        for _ in 0..count {
            let base = get_u64(s, "module base")?;
            let name = get_name(s, "module name")?;
            let path = get_name(s, "module path")?;
            list.push(ModuleEntry { base, name, path });
        }
    }
    let tcount = get_u32(s, "thread count")?;
    let mut threads = Vec::with_capacity(capped(tcount, 4, s));
    for _ in 0..tcount {
        threads.push(Tid(get_u32(s, "tid")?));
    }
    let [peb_modules, kernel_modules] = lists;
    Ok(DumpProcess {
        pid,
        parent: (parent_raw != NO_PID).then_some(Pid(parent_raw)),
        image_name,
        image_path,
        created,
        in_apl,
        apl_next: (next_raw != NO_PID).then_some(Pid(next_raw)),
        apl_prev: (prev_raw != NO_PID).then_some(Pid(prev_raw)),
        peb_modules,
        kernel_modules,
        threads,
    })
}

/// Reads one thread-table record.
fn parse_thread(s: &mut &[u8]) -> Result<Ethread, DumpError> {
    let tid = Tid(get_u32(s, "tid")?);
    let owner = Pid(get_u32(s, "owner")?);
    let state = match get_u8(s, "state")? {
        1 => ThreadState::Running,
        2 => ThreadState::Waiting,
        _ => ThreadState::Ready,
    };
    Ok(Ethread { tid, owner, state })
}

/// Reads one loaded-driver record.
fn parse_driver(s: &mut &[u8]) -> Result<Driver, DumpError> {
    let name = get_name(s, "driver name")?;
    let image_path = get_path(s, "driver path")?;
    let loaded_at = Tick(get_u64(s, "driver load time")?);
    Ok(Driver {
        name,
        image_path,
        loaded_at,
    })
}

fn get_u8(s: &mut &[u8], context: &'static str) -> Result<u8, DumpError> {
    if s.remaining() < 1 {
        return Err(DumpError::Truncated { context });
    }
    Ok(s.get_u8())
}

fn get_u16(s: &mut &[u8], context: &'static str) -> Result<u16, DumpError> {
    if s.remaining() < 2 {
        return Err(DumpError::Truncated { context });
    }
    Ok(s.get_u16_le())
}

fn get_u32(s: &mut &[u8], context: &'static str) -> Result<u32, DumpError> {
    if s.remaining() < 4 {
        return Err(DumpError::Truncated { context });
    }
    Ok(s.get_u32_le())
}

fn get_u64(s: &mut &[u8], context: &'static str) -> Result<u64, DumpError> {
    if s.remaining() < 8 {
        return Err(DumpError::Truncated { context });
    }
    Ok(s.get_u64_le())
}

fn get_name(s: &mut &[u8], context: &'static str) -> Result<NtString, DumpError> {
    let len = get_u16(s, context)? as usize;
    if s.remaining() < len * 2 {
        return Err(DumpError::Truncated { context });
    }
    let mut units = Vec::with_capacity(len);
    for _ in 0..len {
        units.push(s.get_u16_le());
    }
    Ok(NtString::from_units(&units))
}

fn get_path(s: &mut &[u8], context: &'static str) -> Result<NtPath, DumpError> {
    let root_len = get_u16(s, context)? as usize;
    if s.remaining() < root_len {
        return Err(DumpError::Truncated { context });
    }
    let root_bytes = &s[..root_len];
    let root = String::from_utf8_lossy(root_bytes).into_owned();
    s.advance(root_len);
    let count = get_u16(s, context)? as usize;
    let mut comps = Vec::with_capacity(count);
    for _ in 0..count {
        comps.push(get_name(s, context)?);
    }
    Ok(NtPath::from_components(&root, comps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::DumpScrub;

    #[test]
    fn roundtrip_processes_threads_drivers() {
        let mut k = Kernel::with_base_processes();
        k.load_driver(
            "beep",
            "C:\\windows\\system32\\drivers\\beep.sys".parse().unwrap(),
        );
        let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
        assert_eq!(dump.processes().len(), 9);
        assert_eq!(dump.processes_via_apl().len(), 9);
        assert_eq!(dump.processes_via_threads().len(), 9);
        assert_eq!(dump.drivers().len(), 1);
    }

    #[test]
    fn dkom_hidden_process_visible_in_dump_thread_table() {
        let mut k = Kernel::with_base_processes();
        let ghost = k
            .spawn("g.exe", "C:\\g.exe".parse().unwrap(), None)
            .unwrap();
        k.dkom_unlink(ghost).unwrap();
        let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
        assert!(!dump.processes_via_apl().contains(&ghost));
        assert!(dump.processes_via_threads().contains(&ghost));
        let p = dump.process(ghost).unwrap();
        assert!(!p.in_apl);
    }

    #[test]
    fn scrubber_erases_process_from_entire_dump() {
        let mut k = Kernel::with_base_processes();
        let ghost = k
            .spawn("g.exe", "C:\\g.exe".parse().unwrap(), None)
            .unwrap();
        k.register_dump_scrubber(DumpScrub {
            pids: vec![ghost],
            module_names: Vec::new(),
        });
        let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
        assert!(dump.process(ghost).is_none());
        assert!(!dump.processes_via_threads().contains(&ghost));
        assert!(!dump.processes_via_apl().contains(&ghost));
        // The APL walk still covers everyone else despite the scrubbed tail.
        assert_eq!(dump.processes_via_apl().len(), 9);
    }

    #[test]
    fn scrubber_erases_modules() {
        let mut k = Kernel::with_base_processes();
        let pid = k.find_by_name("explorer.exe")[0];
        k.load_module(pid, "vanquish.dll", "C:\\windows\\vanquish.dll")
            .unwrap();
        k.register_dump_scrubber(DumpScrub {
            pids: Vec::new(),
            module_names: vec![NtString::from("vanquish.dll")],
        });
        let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
        let p = dump.process(pid).unwrap();
        assert!(!p
            .kernel_modules
            .iter()
            .any(|m| m.name.eq_ignore_case(&NtString::from("vanquish.dll"))));
    }

    #[test]
    fn scrubbed_middle_process_keeps_apl_walk_intact() {
        let mut k = Kernel::new();
        let a = k.spawn("a", "C:\\a".parse().unwrap(), None).unwrap();
        let b = k.spawn("b", "C:\\b".parse().unwrap(), None).unwrap();
        let c = k.spawn("c", "C:\\c".parse().unwrap(), None).unwrap();
        k.register_dump_scrubber(DumpScrub {
            pids: vec![b],
            module_names: Vec::new(),
        });
        let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
        assert_eq!(dump.processes_via_apl(), vec![a, c]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            MemoryDump::parse(b"GARBAGE!xxxxxxx"),
            Err(DumpError::BadMagic)
        ));
        assert!(matches!(
            MemoryDump::parse(&[]),
            Err(DumpError::Truncated { .. })
        ));
        let k = Kernel::with_base_processes();
        let bytes = k.crash_dump();
        assert!(matches!(
            MemoryDump::parse(&bytes[..bytes.len() - 2]),
            Err(DumpError::Truncated { .. })
        ));
    }

    #[test]
    fn huge_process_count_errors_without_allocating() {
        let k = Kernel::with_base_processes();
        let mut bytes = k.crash_dump();
        // The process count sits right after the 12-byte header.
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            MemoryDump::parse(&bytes),
            Err(DumpError::Truncated { .. })
        ));
    }

    #[test]
    fn salvage_on_clean_dump_matches_strict() {
        let k = Kernel::with_base_processes();
        let bytes = k.crash_dump();
        let strict = MemoryDump::parse(&bytes).unwrap();
        let salvaged = MemoryDump::parse_salvage(&bytes);
        assert!(salvaged.is_clean());
        assert_eq!(salvaged.value.processes(), strict.processes());
        assert_eq!(
            salvaged.value.processes_via_apl(),
            strict.processes_via_apl()
        );
    }

    #[test]
    fn salvage_keeps_records_before_the_damage() {
        let k = Kernel::with_base_processes();
        let bytes = k.crash_dump();
        let cut = bytes.len() / 2;
        assert!(MemoryDump::parse(&bytes[..cut]).is_err());
        let salvaged = MemoryDump::parse_salvage(&bytes[..cut]);
        assert_eq!(salvaged.defects.len(), 1);
        assert_eq!(salvaged.defects[0].kind, DefectKind::Truncated);
        assert!(salvaged.defects[0].bytes_lost > 0);
        assert!(
            !salvaged.value.processes().is_empty(),
            "the front half of the process table must survive"
        );
        assert!(salvaged.value.processes().len() < 9);
    }

    #[test]
    fn salvage_of_garbage_is_empty_with_defect() {
        let salvaged = MemoryDump::parse_salvage(b"GARBAGE!xxxxxxx");
        assert!(salvaged.value.processes().is_empty());
        assert_eq!(salvaged.defects[0].kind, DefectKind::BadMagic);
    }

    #[test]
    fn image_paths_roundtrip() {
        let mut k = Kernel::new();
        let pid = k
            .spawn("x.exe", "C:\\deep\\dir\\x.exe".parse().unwrap(), None)
            .unwrap();
        let dump = MemoryDump::parse(&k.crash_dump()).unwrap();
        assert_eq!(
            dump.process(pid).unwrap().image_path.to_string(),
            "C:\\deep\\dir\\x.exe"
        );
    }
}
