//! The simulated kernel: object tables, the Active Process List, DKOM.

use crate::dump;
use crate::process::{Driver, Eprocess, Ethread, ModuleEntry, ThreadState};
use crate::ssdt::Ssdt;
use std::collections::BTreeMap;
use std::fmt;
use strider_nt_core::{NtPath, NtString, Pid, Tick, Tid};
use strider_support::fault::TransientFaults;

/// Error type for kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The referenced process does not exist.
    NoSuchProcess(Pid),
    /// The referenced module is not loaded in the process.
    NoSuchModule {
        /// The process searched.
        pid: Pid,
        /// The missing module name.
        module: NtString,
    },
    /// The referenced driver is not loaded.
    NoSuchDriver(NtString),
    /// The process is already unlinked from the Active Process List.
    NotLinked(Pid),
    /// The process is already linked into the Active Process List.
    AlreadyLinked(Pid),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            KernelError::NoSuchModule { pid, module } => {
                write!(f, "no module {module} in {pid}")
            }
            KernelError::NoSuchDriver(n) => write!(f, "no such driver: {n}"),
            KernelError::NotLinked(p) => write!(f, "{p} is not linked in the APL"),
            KernelError::AlreadyLinked(p) => write!(f, "{p} is already linked in the APL"),
        }
    }
}

impl std::error::Error for KernelError {}

/// A request registered by ghostware to sanitize crash dumps before they
/// leave the machine — the paper's "future ghostware programs can potentially
/// trap the blue-screen events and remove all traces of themselves from the
/// memory dump" attack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DumpScrub {
    /// Processes to erase from the dump entirely.
    pub pids: Vec<Pid>,
    /// Module names to erase from every process's lists in the dump.
    pub module_names: Vec<NtString>,
}

/// The simulated NT kernel.
///
/// See the crate docs for the data-structure inventory. All mutation goes
/// through methods that keep the Active Process List links, the thread
/// table, and the subsystem handle table consistent — except the explicitly
/// inconsistent operations ([`Kernel::dkom_unlink`],
/// [`Kernel::blank_peb_module_path`]) that ghostware performs.
#[derive(Debug, Clone)]
pub struct Kernel {
    processes: BTreeMap<u32, Eprocess>,
    threads: BTreeMap<u32, Ethread>,
    apl_head: Option<Pid>,
    apl_tail: Option<Pid>,
    drivers: Vec<Driver>,
    ssdt: Ssdt,
    /// Filesystem filter-driver stack (hook ids, outermost first).
    filter_stack: Vec<u32>,
    /// Registry callback list (hook ids).
    registry_callbacks: Vec<u32>,
    /// The subsystem (csrss) handle table: one handle per Win32 process.
    csrss_handles: Vec<Pid>,
    dump_scrubbers: Vec<DumpScrub>,
    /// Transient dump-read fault countdown (fault-injection harness).
    dump_faults: Option<TransientFaults>,
    next_pid: u32,
    next_tid: u32,
    now: Tick,
    rr_cursor: usize,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates an empty kernel with no processes.
    pub fn new() -> Self {
        Self {
            processes: BTreeMap::new(),
            threads: BTreeMap::new(),
            apl_head: None,
            apl_tail: None,
            drivers: Vec::new(),
            ssdt: Ssdt::new(),
            filter_stack: Vec::new(),
            registry_callbacks: Vec::new(),
            csrss_handles: Vec::new(),
            dump_scrubbers: Vec::new(),
            dump_faults: None,
            next_pid: 4,
            next_tid: 4,
            now: Tick::ZERO,
            rr_cursor: 0,
        }
    }

    /// Creates a kernel pre-populated with the standard boot-time process
    /// set (`System`, `smss`, `csrss`, `winlogon`, `services`, `lsass`,
    /// two `svchost` instances, `explorer`).
    pub fn with_base_processes() -> Self {
        let mut k = Self::new();
        let base = [
            ("System", "C:\\windows\\system32\\ntoskrnl.exe"),
            ("smss.exe", "C:\\windows\\system32\\smss.exe"),
            ("csrss.exe", "C:\\windows\\system32\\csrss.exe"),
            ("winlogon.exe", "C:\\windows\\system32\\winlogon.exe"),
            ("services.exe", "C:\\windows\\system32\\services.exe"),
            ("lsass.exe", "C:\\windows\\system32\\lsass.exe"),
            ("svchost.exe", "C:\\windows\\system32\\svchost.exe"),
            ("svchost.exe", "C:\\windows\\system32\\svchost.exe"),
            ("explorer.exe", "C:\\windows\\explorer.exe"),
        ];
        for (name, path) in base {
            k.spawn(name, path.parse().expect("static path parses"), None)
                .expect("fresh kernel spawn cannot fail");
        }
        k
    }

    /// Sets the clock used to stamp creation/load times.
    pub fn set_clock(&mut self, now: Tick) {
        self.now = now;
    }

    /// The current clock.
    pub fn now(&self) -> Tick {
        self.now
    }

    // ------------------------------------------------------------------
    // Processes & threads
    // ------------------------------------------------------------------

    /// Creates a process with one thread, links it into the Active Process
    /// List, loads its main image into both module lists, and registers the
    /// subsystem handle.
    ///
    /// # Errors
    ///
    /// Returns an error only if `parent` is given and does not exist.
    pub fn spawn(
        &mut self,
        image_name: &str,
        image_path: NtPath,
        parent: Option<Pid>,
    ) -> Result<Pid, KernelError> {
        if let Some(p) = parent {
            if !self.processes.contains_key(&p.0) {
                return Err(KernelError::NoSuchProcess(p));
            }
        }
        let pid = Pid(self.next_pid);
        self.next_pid += 4;
        let main_image = ModuleEntry::new(0x0040_0000, image_name, image_path.to_string().as_str());
        let proc = Eprocess {
            pid,
            image_name: NtString::from(image_name),
            image_path,
            parent,
            created: self.now,
            peb_modules: vec![main_image.clone()],
            kernel_modules: vec![main_image],
            threads: Vec::new(),
            apl_next: None,
            apl_prev: None,
            in_apl: false,
        };
        self.processes.insert(pid.0, proc);
        self.apl_link_tail(pid);
        self.add_thread(pid).expect("process just inserted");
        // csrss tracks every Win32 process but not itself or System.
        if image_name != "System" && image_name != "csrss.exe" {
            self.csrss_handles.push(pid);
        }
        Ok(pid)
    }

    /// Terminates a process: threads die, links and handles are cleaned up.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist.
    pub fn kill(&mut self, pid: Pid) -> Result<(), KernelError> {
        let proc = self
            .processes
            .get(&pid.0)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let tids = proc.threads.clone();
        let linked = proc.in_apl;
        if linked {
            self.dkom_unlink(pid)?; // same mechanics, legitimate caller
        }
        for t in tids {
            self.threads.remove(&t.0);
        }
        self.csrss_handles.retain(|&p| p != pid);
        self.processes.remove(&pid.0);
        Ok(())
    }

    /// Adds a ready thread to a process.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist.
    pub fn add_thread(&mut self, pid: Pid) -> Result<Tid, KernelError> {
        let proc = self
            .processes
            .get_mut(&pid.0)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let tid = Tid(self.next_tid);
        self.next_tid += 4;
        proc.threads.push(tid);
        self.threads.insert(
            tid.0,
            Ethread {
                tid,
                owner: pid,
                state: ThreadState::Ready,
            },
        );
        Ok(tid)
    }

    /// Fetches a process object.
    pub fn process(&self, pid: Pid) -> Option<&Eprocess> {
        self.processes.get(&pid.0)
    }

    /// Mutable access to a process object.
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Eprocess> {
        self.processes.get_mut(&pid.0)
    }

    /// Iterates over every live process object (the object table itself,
    /// not the APL — this is the omniscient simulator view, used by tests).
    pub fn processes(&self) -> impl Iterator<Item = &Eprocess> {
        self.processes.values()
    }

    /// Finds processes by image name (case-insensitive).
    pub fn find_by_name(&self, name: &str) -> Vec<Pid> {
        let needle = NtString::from(name);
        self.processes
            .values()
            .filter(|p| p.image_name.eq_ignore_case(&needle))
            .map(|p| p.pid)
            .collect()
    }

    /// All thread objects (the scheduler table).
    pub fn threads(&self) -> impl Iterator<Item = &Ethread> {
        self.threads.values()
    }

    // ------------------------------------------------------------------
    // Active Process List
    // ------------------------------------------------------------------

    fn apl_link_tail(&mut self, pid: Pid) {
        match self.apl_tail {
            None => {
                self.apl_head = Some(pid);
                self.apl_tail = Some(pid);
                let p = self.processes.get_mut(&pid.0).expect("exists");
                p.apl_prev = None;
                p.apl_next = None;
                p.in_apl = true;
            }
            Some(tail) => {
                self.processes
                    .get_mut(&tail.0)
                    .expect("tail exists")
                    .apl_next = Some(pid);
                let p = self.processes.get_mut(&pid.0).expect("exists");
                p.apl_prev = Some(tail);
                p.apl_next = None;
                p.in_apl = true;
                self.apl_tail = Some(pid);
            }
        }
    }

    /// Walks the Active Process List by following the links from the head —
    /// the "truth approximation" behind process enumeration.
    pub fn active_process_list(&self) -> Vec<Pid> {
        let mut out = Vec::new();
        let mut cur = self.apl_head;
        let mut hops = 0;
        while let Some(pid) = cur {
            out.push(pid);
            cur = self.processes.get(&pid.0).and_then(|p| p.apl_next);
            hops += 1;
            if hops > self.processes.len() + 1 {
                break; // corrupted links; stop rather than loop forever
            }
        }
        out
    }

    /// FU-style DKOM: unlinks a process from the Active Process List while
    /// leaving the object — and its schedulable threads — alive.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or is already unlinked.
    pub fn dkom_unlink(&mut self, pid: Pid) -> Result<(), KernelError> {
        let (prev, next) = {
            let p = self
                .processes
                .get(&pid.0)
                .ok_or(KernelError::NoSuchProcess(pid))?;
            if !p.in_apl {
                return Err(KernelError::NotLinked(pid));
            }
            (p.apl_prev, p.apl_next)
        };
        match prev {
            Some(pp) => self.processes.get_mut(&pp.0).expect("linked").apl_next = next,
            None => self.apl_head = next,
        }
        match next {
            Some(np) => self.processes.get_mut(&np.0).expect("linked").apl_prev = prev,
            None => self.apl_tail = prev,
        }
        let p = self.processes.get_mut(&pid.0).expect("exists");
        p.apl_prev = None;
        p.apl_next = None;
        p.in_apl = false;
        Ok(())
    }

    /// Re-links a DKOM-hidden process at the tail (used by remediation).
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist or is already linked.
    pub fn dkom_relink(&mut self, pid: Pid) -> Result<(), KernelError> {
        let p = self
            .processes
            .get(&pid.0)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.in_apl {
            return Err(KernelError::AlreadyLinked(pid));
        }
        self.apl_link_tail(pid);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Advanced-mode truth sources
    // ------------------------------------------------------------------

    /// Deduplicated owners of every schedulable thread — the advanced-mode
    /// low-level scan. DKOM-hidden processes reappear here.
    pub fn processes_via_threads(&self) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self.threads.values().map(|t| t.owner).collect();
        pids.sort();
        pids.dedup();
        pids
    }

    /// The subsystem handle table — an alternative advanced-mode source.
    pub fn processes_via_handles(&self) -> Vec<Pid> {
        let mut pids = self.csrss_handles.clone();
        pids.sort();
        pids.dedup();
        pids
    }

    /// Round-robin scheduler step: picks the next ready thread, proving that
    /// DKOM-hidden processes remain fully functional.
    pub fn schedule_next(&mut self) -> Option<(Pid, Tid)> {
        let ready: Vec<Tid> = self
            .threads
            .values()
            .filter(|t| t.state != ThreadState::Waiting)
            .map(|t| t.tid)
            .collect();
        if ready.is_empty() {
            return None;
        }
        self.rr_cursor = (self.rr_cursor + 1) % ready.len();
        let tid = ready[self.rr_cursor];
        let owner = self.threads.get(&tid.0).expect("listed").owner;
        for t in self.threads.values_mut() {
            if t.state == ThreadState::Running {
                t.state = ThreadState::Ready;
            }
        }
        self.threads.get_mut(&tid.0).expect("listed").state = ThreadState::Running;
        Some((owner, tid))
    }

    // ------------------------------------------------------------------
    // Modules
    // ------------------------------------------------------------------

    /// Loads a module into a process: both the PEB list and the kernel list.
    ///
    /// # Errors
    ///
    /// Fails when the process does not exist.
    pub fn load_module(&mut self, pid: Pid, name: &str, path: &str) -> Result<(), KernelError> {
        let proc = self
            .processes
            .get_mut(&pid.0)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let base = 0x1000_0000 + 0x10_0000 * proc.kernel_modules.len() as u64;
        let entry = ModuleEntry::new(base, name, path);
        proc.peb_modules.push(entry.clone());
        proc.kernel_modules.push(entry);
        Ok(())
    }

    /// Vanquish-style PEB doctoring: blanks the pathname of a module in the
    /// *user-mode* loader list only. The kernel's mapped-image list keeps
    /// the truth.
    ///
    /// # Errors
    ///
    /// Fails when the process or module does not exist.
    pub fn blank_peb_module_path(&mut self, pid: Pid, module: &str) -> Result<(), KernelError> {
        let needle = NtString::from(module);
        let proc = self
            .processes
            .get_mut(&pid.0)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        let entry = proc
            .peb_modules
            .iter_mut()
            .find(|m| m.name.eq_ignore_case(&needle))
            .ok_or_else(|| KernelError::NoSuchModule {
                pid,
                module: needle.clone(),
            })?;
        entry.path = NtString::new();
        entry.name = NtString::new();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Drivers, SSDT, filter stack, registry callbacks
    // ------------------------------------------------------------------

    /// Loads a kernel driver.
    pub fn load_driver(&mut self, name: &str, image_path: NtPath) {
        self.drivers.push(Driver {
            name: NtString::from(name),
            image_path,
            loaded_at: self.now,
        });
    }

    /// Unloads a driver by case-insensitive name.
    ///
    /// # Errors
    ///
    /// Fails when no driver of that name is loaded.
    pub fn unload_driver(&mut self, name: &str) -> Result<Driver, KernelError> {
        let needle = NtString::from(name);
        let i = self
            .drivers
            .iter()
            .position(|d| d.name.eq_ignore_case(&needle))
            .ok_or(KernelError::NoSuchDriver(needle))?;
        Ok(self.drivers.remove(i))
    }

    /// The loaded-driver list.
    pub fn drivers(&self) -> &[Driver] {
        &self.drivers
    }

    /// The Service Dispatch Table.
    pub fn ssdt(&self) -> &Ssdt {
        &self.ssdt
    }

    /// Mutable access to the SSDT (ghostware hook installation).
    pub fn ssdt_mut(&mut self) -> &mut Ssdt {
        &mut self.ssdt
    }

    /// Pushes a filesystem filter driver (hook id) onto the stack.
    pub fn push_filter(&mut self, hook: u32) {
        self.filter_stack.push(hook);
    }

    /// Removes a filter from the stack.
    pub fn remove_filter(&mut self, hook: u32) {
        self.filter_stack.retain(|&h| h != hook);
    }

    /// The filter stack, outermost first.
    pub fn filter_stack(&self) -> &[u32] {
        &self.filter_stack
    }

    /// Registers a kernel registry callback (hook id).
    pub fn register_registry_callback(&mut self, hook: u32) {
        self.registry_callbacks.push(hook);
    }

    /// Removes a registry callback.
    pub fn remove_registry_callback(&mut self, hook: u32) {
        self.registry_callbacks.retain(|&h| h != hook);
    }

    /// The registry callback list.
    pub fn registry_callbacks(&self) -> &[u32] {
        &self.registry_callbacks
    }

    // ------------------------------------------------------------------
    // Crash dumps
    // ------------------------------------------------------------------

    /// Registers a dump scrubber (the anti-forensics attack).
    pub fn register_dump_scrubber(&mut self, scrub: DumpScrub) {
        self.dump_scrubbers.push(scrub);
    }

    /// The registered dump scrubbers.
    pub fn dump_scrubbers(&self) -> &[DumpScrub] {
        &self.dump_scrubbers
    }

    /// Induces a blue screen: serializes kernel memory to a dump, applying
    /// any registered scrubbers first. The paper budgets 15–45 s of wall time
    /// for this on real hardware.
    pub fn crash_dump(&self) -> Vec<u8> {
        dump::write_dump(self)
    }

    /// Arms the fault-injection harness: the next `n` [`try_crash_dump`]
    /// calls fail before the device recovers.
    ///
    /// [`try_crash_dump`]: Kernel::try_crash_dump
    pub fn inject_dump_faults(&mut self, n: u32) {
        self.dump_faults = Some(TransientFaults::failing(n));
    }

    /// Fallible [`crash_dump`](Kernel::crash_dump): `None` means a transient
    /// device failure that a retry may recover from. Without injected faults
    /// it always succeeds.
    pub fn try_crash_dump(&self) -> Option<Vec<u8>> {
        if let Some(faults) = &self.dump_faults {
            if faults.should_fail() {
                return None;
            }
        }
        Some(self.crash_dump())
    }

    pub(crate) fn apl_head(&self) -> Option<Pid> {
        self.apl_head
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(struct DumpScrub { pids, module_names });
strider_support::impl_json!(struct Kernel { processes, threads, apl_head, apl_tail, drivers, ssdt, filter_stack, registry_callbacks, csrss_handles, dump_scrubbers, dump_faults, next_pid, next_tid, now, rr_cursor });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_dump_faults_fail_then_recover() {
        let mut k = Kernel::with_base_processes();
        assert!(k.try_crash_dump().is_some(), "no faults armed");
        k.inject_dump_faults(2);
        assert!(k.try_crash_dump().is_none());
        assert!(k.try_crash_dump().is_none());
        let dump = k.try_crash_dump().expect("device recovered");
        assert_eq!(dump, k.crash_dump());
    }

    #[test]
    fn base_processes_are_linked_and_threaded() {
        let k = Kernel::with_base_processes();
        assert_eq!(k.active_process_list().len(), 9);
        assert_eq!(k.processes_via_threads().len(), 9);
        // csrss tracks everything except System and itself.
        assert_eq!(k.processes_via_handles().len(), 7);
    }

    #[test]
    fn spawn_assigns_windows_style_pids() {
        let mut k = Kernel::new();
        let a = k
            .spawn("a.exe", "C:\\a.exe".parse().unwrap(), None)
            .unwrap();
        let b = k
            .spawn("b.exe", "C:\\b.exe".parse().unwrap(), Some(a))
            .unwrap();
        assert_eq!(a, Pid(4));
        assert_eq!(b, Pid(8));
        assert_eq!(k.process(b).unwrap().parent, Some(a));
    }

    #[test]
    fn spawn_with_missing_parent_fails() {
        let mut k = Kernel::new();
        assert!(matches!(
            k.spawn("x.exe", "C:\\x.exe".parse().unwrap(), Some(Pid(999))),
            Err(KernelError::NoSuchProcess(_))
        ));
    }

    #[test]
    fn dkom_unlink_hides_from_apl_but_not_threads_or_handles() {
        let mut k = Kernel::with_base_processes();
        let pid = k
            .spawn("hxdef100.exe", "C:\\hxdef100.exe".parse().unwrap(), None)
            .unwrap();
        k.dkom_unlink(pid).unwrap();
        assert!(!k.active_process_list().contains(&pid));
        assert!(k.processes_via_threads().contains(&pid));
        assert!(k.processes_via_handles().contains(&pid));
        assert!(k.process(pid).is_some(), "object still alive");
    }

    #[test]
    fn dkom_unlink_head_and_tail_edges() {
        let mut k = Kernel::new();
        let a = k.spawn("a", "C:\\a".parse().unwrap(), None).unwrap();
        let b = k.spawn("b", "C:\\b".parse().unwrap(), None).unwrap();
        let c = k.spawn("c", "C:\\c".parse().unwrap(), None).unwrap();
        k.dkom_unlink(a).unwrap(); // head
        assert_eq!(k.active_process_list(), vec![b, c]);
        k.dkom_unlink(c).unwrap(); // tail
        assert_eq!(k.active_process_list(), vec![b]);
        k.dkom_unlink(b).unwrap(); // only element
        assert!(k.active_process_list().is_empty());
        // Relink restores.
        k.dkom_relink(a).unwrap();
        k.dkom_relink(b).unwrap();
        assert_eq!(k.active_process_list(), vec![a, b]);
    }

    #[test]
    fn double_unlink_and_double_relink_fail() {
        let mut k = Kernel::new();
        let a = k.spawn("a", "C:\\a".parse().unwrap(), None).unwrap();
        k.dkom_unlink(a).unwrap();
        assert!(matches!(k.dkom_unlink(a), Err(KernelError::NotLinked(_))));
        k.dkom_relink(a).unwrap();
        assert!(matches!(
            k.dkom_relink(a),
            Err(KernelError::AlreadyLinked(_))
        ));
    }

    #[test]
    fn hidden_process_still_gets_scheduled() {
        let mut k = Kernel::new();
        let hidden = k.spawn("ghost", "C:\\g".parse().unwrap(), None).unwrap();
        k.dkom_unlink(hidden).unwrap();
        let mut scheduled = false;
        for _ in 0..4 {
            if let Some((pid, _)) = k.schedule_next() {
                if pid == hidden {
                    scheduled = true;
                }
            }
        }
        assert!(scheduled, "unlinked process must remain schedulable");
    }

    #[test]
    fn kill_cleans_everything() {
        let mut k = Kernel::with_base_processes();
        let pid = k
            .spawn("t.exe", "C:\\t.exe".parse().unwrap(), None)
            .unwrap();
        k.kill(pid).unwrap();
        assert!(k.process(pid).is_none());
        assert!(!k.active_process_list().contains(&pid));
        assert!(!k.processes_via_threads().contains(&pid));
        assert!(!k.processes_via_handles().contains(&pid));
    }

    #[test]
    fn kill_works_on_dkom_hidden_process() {
        let mut k = Kernel::new();
        let pid = k.spawn("g", "C:\\g".parse().unwrap(), None).unwrap();
        k.dkom_unlink(pid).unwrap();
        k.kill(pid).unwrap();
        assert!(k.process(pid).is_none());
    }

    #[test]
    fn module_load_and_peb_blanking() {
        let mut k = Kernel::new();
        let pid = k
            .spawn("e.exe", "C:\\e.exe".parse().unwrap(), None)
            .unwrap();
        k.load_module(pid, "vanquish.dll", "C:\\windows\\vanquish.dll")
            .unwrap();
        k.blank_peb_module_path(pid, "vanquish.dll").unwrap();
        let p = k.process(pid).unwrap();
        assert!(p.peb_module(&NtString::from("vanquish.dll")).is_none());
        assert!(p.kernel_module(&NtString::from("vanquish.dll")).is_some());
        assert!(matches!(
            k.blank_peb_module_path(pid, "nope.dll"),
            Err(KernelError::NoSuchModule { .. })
        ));
    }

    #[test]
    fn drivers_load_and_unload() {
        let mut k = Kernel::new();
        k.load_driver(
            "hxdefdrv",
            "C:\\windows\\system32\\drivers\\hxdefdrv.sys"
                .parse()
                .unwrap(),
        );
        assert_eq!(k.drivers().len(), 1);
        k.unload_driver("HXDEFDRV").unwrap();
        assert!(k.drivers().is_empty());
        assert!(matches!(
            k.unload_driver("hxdefdrv"),
            Err(KernelError::NoSuchDriver(_))
        ));
    }

    #[test]
    fn filter_stack_and_callbacks() {
        let mut k = Kernel::new();
        k.push_filter(1);
        k.push_filter(2);
        assert_eq!(k.filter_stack(), &[1, 2]);
        k.remove_filter(1);
        assert_eq!(k.filter_stack(), &[2]);
        k.register_registry_callback(9);
        assert_eq!(k.registry_callbacks(), &[9]);
        k.remove_registry_callback(9);
        assert!(k.registry_callbacks().is_empty());
    }

    #[test]
    fn find_by_name_is_case_insensitive() {
        let k = Kernel::with_base_processes();
        assert_eq!(k.find_by_name("EXPLORER.EXE").len(), 1);
        assert_eq!(k.find_by_name("svchost.exe").len(), 2);
    }
}
