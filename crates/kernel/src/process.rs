//! Kernel object types: processes, threads, modules, drivers.

use std::fmt;
use strider_nt_core::{NtPath, NtString, Pid, Tick, Tid};

/// One entry in a module list (a loaded DLL or EXE image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleEntry {
    /// Load base address.
    pub base: u64,
    /// Module file name (`vanquish.dll`).
    pub name: NtString,
    /// Full image path. In the *PEB* copy this is user-writable: Vanquish
    /// blanks it to hide from `Module32First/Next`-style enumeration.
    pub path: NtString,
}

impl ModuleEntry {
    /// Creates a module entry.
    pub fn new(base: u64, name: impl Into<NtString>, path: impl Into<NtString>) -> Self {
        Self {
            base,
            name: name.into(),
            path: path.into(),
        }
    }
}

impl fmt::Display for ModuleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x} {}", self.base, self.name)
    }
}

/// Scheduler state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable, waiting for a CPU.
    Ready,
    /// Currently on a CPU.
    Running,
    /// Blocked.
    Waiting,
}

/// A kernel thread object. The scheduler's table of these is the
/// advanced-mode truth source: a DKOM-hidden process still owns schedulable
/// threads, each of which names its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ethread {
    /// Thread id.
    pub tid: Tid,
    /// Owning process.
    pub owner: Pid,
    /// Scheduler state.
    pub state: ThreadState,
}

/// A kernel process object (EPROCESS).
///
/// The `apl_*` links implement the intrusive doubly-linked Active Process
/// List. DKOM unlinking rewires the neighbours' links and clears `in_apl`
/// while the object itself — and its threads — stay fully alive.
#[derive(Debug, Clone, PartialEq)]
pub struct Eprocess {
    /// Process id.
    pub pid: Pid,
    /// Image file name (`hxdef100.exe`).
    pub image_name: NtString,
    /// Full image path.
    pub image_path: NtPath,
    /// Parent process, if any.
    pub parent: Option<Pid>,
    /// Creation time.
    pub created: Tick,
    /// User-mode loader (PEB) module list — forgeable by the process itself.
    pub peb_modules: Vec<ModuleEntry>,
    /// The kernel's own mapped-image list — the module truth.
    pub kernel_modules: Vec<ModuleEntry>,
    /// Threads owned by this process.
    pub threads: Vec<Tid>,
    /// Next process in the Active Process List.
    pub apl_next: Option<Pid>,
    /// Previous process in the Active Process List.
    pub apl_prev: Option<Pid>,
    /// Whether the object is currently linked into the APL.
    pub in_apl: bool,
}

impl Eprocess {
    /// Finds a PEB module by case-insensitive name.
    pub fn peb_module(&self, name: &NtString) -> Option<&ModuleEntry> {
        self.peb_modules
            .iter()
            .find(|m| m.name.eq_ignore_case(name))
    }

    /// Finds a kernel-truth module by case-insensitive name.
    pub fn kernel_module(&self, name: &NtString) -> Option<&ModuleEntry> {
        self.kernel_modules
            .iter()
            .find(|m| m.name.eq_ignore_case(name))
    }
}

impl fmt::Display for Eprocess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.pid, self.image_name)
    }
}

/// A loaded kernel driver.
#[derive(Debug, Clone, PartialEq)]
pub struct Driver {
    /// Driver name (`hxdefdrv`).
    pub name: NtString,
    /// Image path (`C:\windows\system32\drivers\hxdefdrv.sys`).
    pub image_path: NtPath,
    /// Load time.
    pub loaded_at: Tick,
}

impl fmt::Display for Driver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.image_path)
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(struct ModuleEntry { base, name, path });
strider_support::impl_json!(
    enum ThreadState {
        Ready,
        Running,
        Waiting,
    }
);
strider_support::impl_json!(struct Ethread { tid, owner, state });
strider_support::impl_json!(struct Eprocess { pid, image_name, image_path, parent, created, peb_modules, kernel_modules, threads, apl_next, apl_prev, in_apl });
strider_support::impl_json!(struct Driver { name, image_path, loaded_at });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_lookup_is_case_insensitive() {
        let p = Eprocess {
            pid: Pid(8),
            image_name: NtString::from("x.exe"),
            image_path: "C:\\x.exe".parse().unwrap(),
            parent: None,
            created: Tick::ZERO,
            peb_modules: vec![ModuleEntry::new(
                0x1000,
                "Vanquish.DLL",
                "C:\\w\\vanquish.dll",
            )],
            kernel_modules: Vec::new(),
            threads: Vec::new(),
            apl_next: None,
            apl_prev: None,
            in_apl: true,
        };
        assert!(p.peb_module(&NtString::from("vanquish.dll")).is_some());
        assert!(p.kernel_module(&NtString::from("vanquish.dll")).is_none());
    }

    #[test]
    fn display_forms() {
        let m = ModuleEntry::new(0x1000, "a.dll", "C:\\a.dll");
        assert_eq!(m.to_string(), "0x1000 a.dll");
    }
}
