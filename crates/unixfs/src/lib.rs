//! A minimal Unix substrate for the paper's Section 5 Linux/Unix
//! experiments.
//!
//! Unix ghostware hides resources with two techniques the paper exercises:
//!
//! * **LKM syscall interception** — a Loadable Kernel Module hooks
//!   `getdents` (and friends) in the syscall table and filters directory
//!   entries matching its patterns (Darkside, Superkit, Synapsis, Knark);
//! * **trojaned utilities** — T0rnkit replaces `ls` itself, so `echo *`
//!   (which globs through `getdents` directly) already disagrees with `ls`.
//!
//! The cross-view diff is the same as on Windows: an inside-the-box `ls -R`
//! scan (through the trojaned binary *and* the hooked syscall table) versus
//! a clean scan — either `echo *`-style direct syscalls inside the box, or
//! an offline scan from a bootable CD where neither the LKM nor the trojan
//! binary runs.
//!
//! # Examples
//!
//! ```
//! use strider_unixfs::UnixMachine;
//!
//! let mut m = UnixMachine::with_base_system("ux1");
//! m.fs_mut().create_file("/usr/lib/.superkit/sk", b"ELF");
//! m.load_lkm("superkit", &[".superkit"]);
//! let inside: Vec<String> = m.ls_scan_all();
//! let truth: Vec<String> = m.offline_scan();
//! assert!(truth.iter().any(|p| p.contains(".superkit")));
//! assert!(!inside.iter().any(|p| p.contains(".superkit")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// Error type for Unix filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnixFsError {
    /// No entry at the path.
    NotFound(String),
    /// The path's parent does not exist or is a file.
    BadParent(String),
    /// An entry already exists at the path.
    AlreadyExists(String),
    /// The path names a directory where a file was required.
    IsADirectory(String),
}

impl fmt::Display for UnixFsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnixFsError::NotFound(p) => write!(f, "not found: {p}"),
            UnixFsError::BadParent(p) => write!(f, "bad parent for: {p}"),
            UnixFsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            UnixFsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
        }
    }
}

impl std::error::Error for UnixFsError {}

/// One filesystem node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnixNode {
    /// Whether the node is a directory.
    pub is_dir: bool,
    /// File contents (empty for directories).
    pub data: Vec<u8>,
}

/// A small case-sensitive Unix filesystem: absolute paths to nodes.
///
/// Paths are `/`-separated absolute strings; the root `/` always exists.
#[derive(Debug, Clone, Default)]
pub struct UnixFs {
    nodes: BTreeMap<String, UnixNode>,
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

impl UnixFs {
    /// Creates a filesystem containing only `/`.
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            "/".to_string(),
            UnixNode {
                is_dir: true,
                data: Vec::new(),
            },
        );
        Self { nodes }
    }

    /// Whether a node exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Fetches a node.
    pub fn node(&self, path: &str) -> Option<&UnixNode> {
        self.nodes.get(path)
    }

    /// Creates a directory and any missing ancestors.
    pub fn mkdir_p(&mut self, path: &str) {
        if path == "/" {
            return;
        }
        if let Some(parent) = parent_of(path) {
            let parent = parent.to_string();
            self.mkdir_p(&parent);
        }
        self.nodes.entry(path.to_string()).or_insert(UnixNode {
            is_dir: true,
            data: Vec::new(),
        });
    }

    /// Creates a file, creating parent directories as needed. Overwrites an
    /// existing file at the path.
    pub fn create_file(&mut self, path: &str, data: &[u8]) {
        if let Some(parent) = parent_of(path) {
            let parent = parent.to_string();
            self.mkdir_p(&parent);
        }
        self.nodes.insert(
            path.to_string(),
            UnixNode {
                is_dir: false,
                data: data.to_vec(),
            },
        );
    }

    /// Appends to a file, creating it if missing.
    pub fn append_file(&mut self, path: &str, data: &[u8]) {
        if !self.exists(path) {
            self.create_file(path, data);
            return;
        }
        if let Some(node) = self.nodes.get_mut(path) {
            node.data.extend_from_slice(data);
        }
    }

    /// Removes a file or an entire directory subtree.
    ///
    /// # Errors
    ///
    /// Fails when the path does not exist.
    pub fn remove(&mut self, path: &str) -> Result<(), UnixFsError> {
        if !self.exists(path) {
            return Err(UnixFsError::NotFound(path.to_string()));
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        self.nodes
            .retain(|p, _| p != path && !p.starts_with(&prefix));
        Ok(())
    }

    /// Reads a file's contents.
    ///
    /// # Errors
    ///
    /// Fails when the path is missing or a directory.
    pub fn read(&self, path: &str) -> Result<&[u8], UnixFsError> {
        let node = self
            .nodes
            .get(path)
            .ok_or_else(|| UnixFsError::NotFound(path.to_string()))?;
        if node.is_dir {
            return Err(UnixFsError::IsADirectory(path.to_string()));
        }
        Ok(&node.data)
    }

    /// Lists the names of direct children of a directory (the raw
    /// `getdents` result, before any interception).
    pub fn list(&self, dir: &str) -> Vec<String> {
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        self.nodes
            .range(prefix.clone()..)
            .take_while(|(p, _)| p.starts_with(&prefix))
            .filter_map(|(p, _)| {
                let rest = &p[prefix.len()..];
                (!rest.is_empty() && !rest.contains('/')).then(|| rest.to_string())
            })
            .collect()
    }

    /// All absolute file paths (directories excluded) — the offline truth.
    pub fn all_files(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, n)| !n.is_dir)
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Number of nodes including directories.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A background daemon body: called once per tick with the filesystem and
/// the current clock.
pub type DaemonFn = Box<dyn FnMut(&mut UnixFs, u64) + Send>;

/// A loaded kernel module hooking `getdents` with hide patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedLkm {
    /// Module name (`knark`, `superkit`, …).
    pub name: String,
    /// Substring patterns removed from directory listings.
    pub hide_patterns: Vec<String>,
}

/// The simulated Unix machine: filesystem, syscall table, LKMs, trojaned
/// binaries, and background daemons.
pub struct UnixMachine {
    name: String,
    fs: UnixFs,
    lkms: Vec<LoadedLkm>,
    /// Hide patterns applied by a trojaned `ls` binary (T0rnkit).
    trojaned_ls: Option<Vec<String>>,
    daemons: Vec<DaemonFn>,
    clock: u64,
}

impl fmt::Debug for UnixMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnixMachine")
            .field("name", &self.name)
            .field("nodes", &self.fs.node_count())
            .field("lkms", &self.lkms)
            .field("trojaned_ls", &self.trojaned_ls.is_some())
            .finish_non_exhaustive()
    }
}

impl UnixMachine {
    /// Creates a machine with a base FHS-style layout.
    pub fn with_base_system(name: &str) -> Self {
        let mut fs = UnixFs::new();
        for d in [
            "/bin",
            "/sbin",
            "/etc",
            "/usr",
            "/usr/bin",
            "/usr/lib",
            "/usr/src",
            "/var",
            "/var/log",
            "/var/run",
            "/tmp",
            "/home",
            "/home/user",
            "/dev",
            "/lib",
        ] {
            fs.mkdir_p(d);
        }
        for (f, data) in [
            ("/bin/ls", &b"ELF ls"[..]),
            ("/bin/sh", b"ELF sh"),
            ("/bin/ps", b"ELF ps"),
            ("/sbin/init", b"ELF init"),
            ("/etc/passwd", b"root:x:0:0"),
            ("/etc/inetd.conf", b"# inetd"),
            ("/var/log/messages", b"boot\n"),
            ("/usr/bin/find", b"ELF find"),
        ] {
            fs.create_file(f, data);
        }
        Self {
            name: name.to_string(),
            fs,
            lkms: Vec::new(),
            trojaned_ls: None,
            daemons: Vec::new(),
            clock: 0,
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The filesystem (truth access, used by offline scans and tests).
    pub fn fs(&self) -> &UnixFs {
        &self.fs
    }

    /// Mutable filesystem access (rootkit installation, daemons).
    pub fn fs_mut(&mut self) -> &mut UnixFs {
        &mut self.fs
    }

    /// Loads an LKM that hooks `getdents` and hides entries matching any of
    /// the substring patterns.
    pub fn load_lkm(&mut self, name: &str, hide_patterns: &[&str]) {
        self.lkms.push(LoadedLkm {
            name: name.to_string(),
            hide_patterns: hide_patterns.iter().map(|s| s.to_string()).collect(),
        });
    }

    /// Unloads an LKM by name (remediation / clean boot).
    pub fn unload_lkm(&mut self, name: &str) -> bool {
        let before = self.lkms.len();
        self.lkms.retain(|m| m.name != name);
        self.lkms.len() != before
    }

    /// The loaded LKMs.
    pub fn lkms(&self) -> &[LoadedLkm] {
        &self.lkms
    }

    /// Replaces `ls` with a trojaned version hiding the given patterns
    /// (T0rnkit-style).
    pub fn trojan_ls(&mut self, hide_patterns: &[&str]) {
        self.trojaned_ls = Some(hide_patterns.iter().map(|s| s.to_string()).collect());
        self.fs.create_file("/bin/ls", b"ELF trojaned ls");
    }

    /// Restores a clean `ls`.
    pub fn restore_ls(&mut self) {
        self.trojaned_ls = None;
        self.fs.create_file("/bin/ls", b"ELF ls");
    }

    /// Whether `ls` is trojaned (detectable by binary hash comparison —
    /// the Tripwire-style check, not the cross-view one).
    pub fn ls_is_trojaned(&self) -> bool {
        self.trojaned_ls.is_some()
    }

    /// Registers a background daemon run once per tick (e.g. an FTP daemon
    /// writing transfer logs — the paper's Unix false-positive source).
    pub fn add_daemon(&mut self, daemon: DaemonFn) {
        self.daemons.push(daemon);
    }

    /// Advances the clock, running daemons.
    pub fn tick(&mut self, n: u64) {
        for _ in 0..n {
            self.clock += 1;
            let mut daemons = std::mem::take(&mut self.daemons);
            for d in &mut daemons {
                d(&mut self.fs, self.clock);
            }
            daemons.append(&mut self.daemons);
            self.daemons = daemons;
        }
    }

    /// The current clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    fn getdents(&self, dir: &str) -> Vec<String> {
        let mut names = self.fs.list(dir);
        for lkm in &self.lkms {
            names.retain(|n| !lkm.hide_patterns.iter().any(|p| n.contains(p.as_str())));
        }
        names
    }

    /// Lists one directory through the (possibly trojaned) `ls` binary and
    /// the (possibly hooked) syscall table.
    pub fn ls(&self, dir: &str) -> Vec<String> {
        let mut names = self.getdents(dir);
        if let Some(patterns) = &self.trojaned_ls {
            names.retain(|n| !patterns.iter().any(|p| n.contains(p.as_str())));
        }
        names
    }

    /// Lists one directory through direct `getdents` (the `echo *` view):
    /// bypasses the trojaned binary but not LKM hooks.
    pub fn echo_star(&self, dir: &str) -> Vec<String> {
        self.getdents(dir)
    }

    /// Recursive `ls -R` over the whole tree: the inside-the-box high-level
    /// scan. Hidden directories are not descended into.
    pub fn ls_scan_all(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.scan_dir("/", &mut out, true);
        out
    }

    /// Recursive scan through direct syscalls (`echo *` everywhere).
    pub fn glob_scan_all(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.scan_dir("/", &mut out, false);
        out
    }

    fn scan_dir(&self, dir: &str, out: &mut Vec<String>, via_ls: bool) {
        let names = if via_ls {
            self.ls(dir)
        } else {
            self.echo_star(dir)
        };
        for name in names {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            match self.fs.node(&path) {
                Some(n) if n.is_dir => self.scan_dir(&path, out, via_ls),
                Some(_) => out.push(path),
                None => {}
            }
        }
    }

    /// The clean-boot scan: the same partitions read from a bootable CD
    /// where neither the LKM nor any trojaned binary runs. Directly the
    /// filesystem truth.
    pub fn offline_scan(&self) -> Vec<String> {
        self.fs.all_files()
    }
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::{DaemonFn, LoadedLkm, UnixFs, UnixFsError, UnixMachine, UnixNode};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_layout_exists() {
        let m = UnixMachine::with_base_system("u");
        assert!(m.fs().exists("/bin/ls"));
        assert!(m.fs().exists("/var/log/messages"));
        assert!(m.fs().node("/usr").unwrap().is_dir);
    }

    #[test]
    fn list_returns_direct_children_only() {
        let m = UnixMachine::with_base_system("u");
        let root = m.fs().list("/");
        assert!(root.contains(&"bin".to_string()));
        assert!(!root.contains(&"ls".to_string()));
        let bin = m.fs().list("/bin");
        assert!(bin.contains(&"ls".to_string()));
    }

    #[test]
    fn lkm_hides_from_both_ls_and_glob_but_not_offline() {
        let mut m = UnixMachine::with_base_system("u");
        m.fs_mut().create_file("/usr/lib/.sk/backdoor", b"ELF");
        m.load_lkm("superkit", &[".sk"]);
        assert!(!m.ls("/usr/lib").contains(&".sk".to_string()));
        assert!(!m.echo_star("/usr/lib").contains(&".sk".to_string()));
        assert!(m
            .offline_scan()
            .iter()
            .any(|p| p == "/usr/lib/.sk/backdoor"));
        // Hidden directory not descended: file absent from recursive scans.
        assert!(!m.ls_scan_all().iter().any(|p| p.contains(".sk")));
        assert!(!m.glob_scan_all().iter().any(|p| p.contains(".sk")));
    }

    #[test]
    fn trojaned_ls_disagrees_with_echo_star() {
        let mut m = UnixMachine::with_base_system("u");
        m.fs_mut().create_file("/usr/src/.puta/t0rn", b"ELF");
        m.trojan_ls(&[".puta"]);
        assert!(m.ls_is_trojaned());
        assert!(!m.ls("/usr/src").contains(&".puta".to_string()));
        // echo * bypasses the trojaned binary.
        assert!(m.echo_star("/usr/src").contains(&".puta".to_string()));
        m.restore_ls();
        assert!(m.ls("/usr/src").contains(&".puta".to_string()));
    }

    #[test]
    fn unload_lkm_restores_visibility() {
        let mut m = UnixMachine::with_base_system("u");
        m.fs_mut().create_file("/tmp/.hidden", b"x");
        m.load_lkm("knark", &[".hidden"]);
        assert!(!m.ls("/tmp").contains(&".hidden".to_string()));
        assert!(m.unload_lkm("knark"));
        assert!(m.ls("/tmp").contains(&".hidden".to_string()));
        assert!(!m.unload_lkm("knark"));
    }

    #[test]
    fn daemons_churn_on_tick() {
        let mut m = UnixMachine::with_base_system("u");
        m.add_daemon(Box::new(|fs, t| {
            fs.append_file("/var/log/xferlog", format!("t{t}\n").as_bytes());
        }));
        m.tick(3);
        assert_eq!(m.clock(), 3);
        assert!(m.fs().read("/var/log/xferlog").unwrap().len() >= 9);
    }

    #[test]
    fn remove_subtree() {
        let mut m = UnixMachine::with_base_system("u");
        m.fs_mut().create_file("/tmp/a/b/c", b"x");
        m.fs_mut().remove("/tmp/a").unwrap();
        assert!(!m.fs().exists("/tmp/a/b/c"));
        assert!(m.fs().exists("/tmp"));
        assert!(m.fs_mut().remove("/tmp/a").is_err());
    }

    #[test]
    fn read_errors() {
        let m = UnixMachine::with_base_system("u");
        assert!(matches!(
            m.fs().read("/nope"),
            Err(UnixFsError::NotFound(_))
        ));
        assert!(matches!(
            m.fs().read("/bin"),
            Err(UnixFsError::IsADirectory(_))
        ));
    }
}
