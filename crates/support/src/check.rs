//! A small shrinking property-test harness replacing `proptest`.
//!
//! The workspace's property tests (`tests/properties.rs`) need three things
//! from a property-testing library: seeded random generation, many cases
//! per property, and *shrinking* — when a case fails, automatically search
//! for a smaller failing input before reporting. This module provides all
//! three with no macros-by-proc-derive and no registry dependency:
//!
//! * generators are plain closures `Fn(&mut SplitMix64) -> T` (helpers for
//!   the common shapes live in [`gen`]),
//! * properties return `Result<(), String>`; the
//!   [`prop_assert!`](crate::prop_assert) /
//!   [`prop_assert_eq!`](crate::prop_assert_eq) /
//!   [`prop_assert_ne!`](crate::prop_assert_ne) macros mirror the `proptest`
//!   assertion forms,
//! * shrinking is value-based via the [`Shrink`] trait (the `quickcheck`
//!   approach): integers halve toward zero, collections drop elements and
//!   shrink elements in place, tuples shrink componentwise. Properties with
//!   generator invariants (minimum lengths, required prefixes) simply
//!   `return Ok(())` for out-of-range inputs, which keeps shrinking sound.
//!
//! Failures panic with the *minimal* failing input, the original seed, and
//! the property's error message, so a red run is directly actionable.

use crate::rng::SplitMix64;
use std::fmt::Debug;

/// Run configuration for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; case `i` derives its own generator from `seed + i`.
    pub seed: u64,
    /// Upper bound on accepted shrink steps before reporting.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x5743_4845_434b_5631, // "WCHECKV1"
            max_shrink_steps: 2_000,
        }
    }
}

impl Config {
    /// A configuration running `cases` cases with the default seed.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Produces structurally smaller candidate values for a failing input.
pub trait Shrink: Sized {
    /// Candidate simplifications, most aggressive first. An empty vector
    /// means the value is already minimal.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($ty:ty),+) => {
        $(
            impl Shrink for $ty {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if *self != 0 {
                        out.push(0);
                        if *self > 1 {
                            out.push(self / 2);
                        }
                        out.push(self - 1);
                    }
                    out.dedup();
                    out
                }
            }
        )+
    };
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self != 0.0 {
            out.push(0.0);
        }
        if self.abs() > 1.0 {
            out.push(self / 2.0);
            out.push(self.trunc());
        }
        out.retain(|candidate| candidate != self);
        out
    }
}

impl Shrink for String {
    fn shrink_candidates(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        let mut out = Vec::new();
        if chars.is_empty() {
            return out;
        }
        out.push(String::new());
        // Halve, then drop one character at a time.
        if chars.len() > 1 {
            out.push(chars[..chars.len() / 2].iter().collect());
        }
        for skip in 0..chars.len() {
            out.push(
                chars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, c)| c)
                    .collect(),
            );
        }
        // Simplify one character to 'a' (keeps length, reduces content).
        for (i, &c) in chars.iter().enumerate() {
            if c != 'a' {
                let mut simpler = chars.clone();
                simpler[i] = 'a';
                out.push(simpler.into_iter().collect());
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        out.push(Vec::new());
        if self.len() > 1 {
            out.push(self[..self.len() / 2].to_vec());
        }
        for skip in 0..self.len() {
            let mut shorter = self.clone();
            shorter.remove(skip);
            out.push(shorter);
        }
        for (i, item) in self.iter().enumerate() {
            for smaller in item.shrink_candidates() {
                let mut simpler = self.clone();
                simpler[i] = smaller;
                out.push(simpler);
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(inner) => {
                let mut out = vec![None];
                out.extend(inner.shrink_candidates().into_iter().map(Some));
                out
            }
        }
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink_candidates() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink_candidates() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink_candidates() {
            out.push((a, self.1.clone(), self.2.clone()));
        }
        for b in self.1.shrink_candidates() {
            out.push((self.0.clone(), b, self.2.clone()));
        }
        for c in self.2.shrink_candidates() {
            out.push((self.0.clone(), self.1.clone(), c));
        }
        out
    }
}

/// Runs `prop` against `config.cases` generated inputs, shrinking any
/// failure to a minimal counterexample before panicking.
pub fn check<T, G, P>(name: &str, config: Config, mut generate: G, mut prop: P)
where
    T: Shrink + Clone + Debug,
    G: FnMut(&mut SplitMix64) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    for case in 0..config.cases {
        let case_seed = config.seed.wrapping_add(case as u64);
        let mut rng = SplitMix64::seed_from_u64(case_seed);
        let input = generate(&mut rng);
        if let Err(first_error) = prop(&input) {
            let (minimal, error, steps) =
                shrink_failure(input, first_error, &mut prop, config.max_shrink_steps);
            panic!(
                "property `{name}` failed (case {case}, seed {case_seed:#x}, \
                 {steps} shrink steps)\n  minimal input: {minimal:?}\n  error: {error}"
            );
        }
    }
}

fn shrink_failure<T, P>(
    mut current: T,
    mut error: String,
    prop: &mut P,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Shrink + Clone + Debug,
    P: FnMut(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in current.shrink_candidates() {
            if let Err(candidate_error) = prop(&candidate) {
                current = candidate;
                error = candidate_error;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, error, steps)
}

/// Generator helpers for the common input shapes.
pub mod gen {
    use crate::rng::SplitMix64;

    /// A string of `len` characters drawn from `alphabet`.
    pub fn string_from(rng: &mut SplitMix64, alphabet: &[u8], len: usize) -> String {
        (0..len).map(|_| *rng.choose(alphabet) as char).collect()
    }

    /// A lowercase `[a-z]` string with length in `min..=max`.
    pub fn lowercase(rng: &mut SplitMix64, min: usize, max: usize) -> String {
        let len = rng.gen_range(min..max + 1);
        string_from(rng, b"abcdefghijklmnopqrstuvwxyz", len)
    }

    /// A `[a-z][a-z0-9]*` identifier with length in `min..=max` — the
    /// harness version of the old `"[a-z][a-z0-9]{0,10}"` strategy.
    pub fn name(rng: &mut SplitMix64, min: usize, max: usize) -> String {
        let len = rng.gen_range(min.max(1)..max + 1);
        let mut out = string_from(rng, b"abcdefghijklmnopqrstuvwxyz", 1);
        out.push_str(&string_from(
            rng,
            b"abcdefghijklmnopqrstuvwxyz0123456789",
            len - 1,
        ));
        out
    }

    /// A vector with length in `min..=max`, elements drawn by `item`.
    pub fn vec_of<T>(
        rng: &mut SplitMix64,
        min: usize,
        max: usize,
        mut item: impl FnMut(&mut SplitMix64) -> T,
    ) -> Vec<T> {
        let len = rng.gen_range(min..max + 1);
        (0..len).map(|_| item(rng)).collect()
    }

    /// `Some(item)` half the time.
    pub fn option_of<T>(
        rng: &mut SplitMix64,
        mut item: impl FnMut(&mut SplitMix64) -> T,
    ) -> Option<T> {
        if rng.chance(1, 2) {
            Some(item(rng))
        } else {
            None
        }
    }

    /// Arbitrary bytes of length `min..=max`.
    pub fn bytes(rng: &mut SplitMix64, min: usize, max: usize) -> Vec<u8> {
        vec_of(rng, min, max, SplitMix64::next_u8)
    }
}

/// `proptest`-style assertion: fail the property (with an optional message)
/// instead of panicking, so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `proptest`-style equality assertion returning an `Err` for the shrinker.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n  right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// `proptest`-style inequality assertion returning an `Err` for the shrinker.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed at {}:{}: {} != {}\n  both: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        check(
            "sum commutes",
            Config::with_cases(64),
            |rng| (rng.gen_range(0..100u32), rng.gen_range(0..100u32)),
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        // `check` panics on failure, so reaching here means 64 green cases.
        seen += 64;
        assert_eq!(seen, 64);
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        let result = std::panic::catch_unwind(|| {
            check(
                "no element reaches 10",
                Config::with_cases(256),
                |rng| gen::vec_of(rng, 0, 8, |r| r.gen_range(0..50u32)),
                |v| {
                    prop_assert!(v.iter().all(|&x| x < 10), "element >= 10 in {v:?}");
                    Ok(())
                },
            );
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        // The minimal counterexample is exactly one boundary element.
        assert!(
            message.contains("minimal input: [10]"),
            "did not shrink to [10]: {message}"
        );
    }

    #[test]
    fn string_shrinking_reaches_single_char() {
        let result = std::panic::catch_unwind(|| {
            check(
                "no z anywhere",
                Config::with_cases(512),
                |rng| gen::lowercase(rng, 0, 12),
                |s| {
                    prop_assert!(!s.contains('z'), "z in {s:?}");
                    Ok(())
                },
            );
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            message.contains("minimal input: \"z\""),
            "did not shrink to \"z\": {message}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut inputs = Vec::new();
            check(
                "collect",
                Config::with_cases(16),
                |rng| rng.gen_range(0..1000u32),
                |&x| {
                    inputs.push(x);
                    Ok(())
                },
            );
            inputs
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn generators_respect_shape_constraints() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..200 {
            let n = gen::name(&mut rng, 1, 11);
            assert!((1..=11).contains(&n.len()));
            assert!(n.chars().next().unwrap().is_ascii_lowercase());
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }
}
