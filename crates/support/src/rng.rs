//! Seeded PRNG replacing `rand`.
//!
//! The workspace used `rand::rngs::StdRng::seed_from_u64` purely for
//! *deterministic* simulation inputs: ProBot SE's random artifact stems,
//! Berbew's random process name, and the workload generator's directory
//! trees. None of that needs cryptographic quality — it needs a small,
//! seedable, platform-stable generator. [`SplitMix64`] (Steele, Lea &
//! Flood's `splitmix64` finalizer) is exactly that: one `u64` of state, a
//! single multiply-shift-xor avalanche per output, and well-studied
//! equidistribution for this use.
//!
//! Note the streams differ from `StdRng` (which is ChaCha-based), so any
//! seed-derived artifact *names* differ from the seed repo's — every test
//! that asserted on concrete random names derives them through this
//! generator now.

/// A `splitmix64` pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Equal seeds yield equal streams on every
    /// platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// The next `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `[0, bound)` (Lemire-style
    /// multiply-shift rejection-free mapping; bias is < 2⁻⁵³ for the small
    /// bounds used here). Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A value from a half-open range, `rand::Rng::gen_range` style.
    ///
    /// ```
    /// use strider_support::rng::SplitMix64;
    /// let mut rng = SplitMix64::seed_from_u64(42);
    /// let c = (b'a' + rng.gen_range(0..26u8)) as char;
    /// assert!(c.is_ascii_lowercase());
    /// ```
    pub fn gen_range<T: RangeItem>(&mut self, range: std::ops::Range<T>) -> T {
        let (start, end) = (range.start.to_u64(), range.end.to_u64());
        assert!(start < end, "gen_range: empty range");
        T::from_u64(start + self.next_below(end - start))
    }

    /// A boolean that is `true` with probability `numerator / denominator`.
    pub fn chance(&mut self, numerator: u64, denominator: u64) -> bool {
        self.next_below(denominator) < numerator
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A reference to a uniformly chosen element. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }

    /// Shuffles `items` in place (Fisher–Yates). Equal seeds yield equal
    /// permutations on every platform, which is what makes randomized sweep
    /// scheduling reproducible from a policy seed.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// FNV-1a over `bytes` — a tiny, platform-stable string hash for deriving
/// per-label seeds (`base_seed ^ fnv1a(label)`) so independent consumers of
/// one policy seed get decorrelated but reproducible streams.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF29CE484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001B3);
    }
    hash
}

/// Integer types usable with [`SplitMix64::gen_range`].
pub trait RangeItem: Copy {
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (always in range by construction).
    fn from_u64(wide: u64) -> Self;
}

macro_rules! impl_range_item {
    ($($ty:ty),+) => {
        $(
            impl RangeItem for $ty {
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn from_u64(wide: u64) -> Self {
                    wide as $ty
                }
            }
        )+
    };
}

impl_range_item!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_pins_the_algorithm() {
        // Reference values for splitmix64 with seed 1234567.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let first = rng.next_u64();
        let mut again = SplitMix64::seed_from_u64(1234567);
        assert_eq!(first, again.next_u64());
        // The stream must never be constant.
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 26];
        for _ in 0..2000 {
            let v = rng.gen_range(0..26u8);
            assert!(v < 26);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&hit| hit), "26 buckets should all be hit");
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(99);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_seed_deterministic_and_a_permutation() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b: Vec<u32> = (0..32).collect();
        SplitMix64::seed_from_u64(11).shuffle(&mut a);
        SplitMix64::seed_from_u64(11).shuffle(&mut b);
        assert_eq!(a, b, "equal seeds give equal permutations");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "still a permutation");
        let mut c: Vec<u32> = (0..32).collect();
        SplitMix64::seed_from_u64(12).shuffle(&mut c);
        assert_ne!(a, c, "different seeds shuffle differently");
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
