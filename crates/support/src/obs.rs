//! Structured tracing + metrics replacing `tracing` + `metrics`.
//!
//! GhostBuster's detection story is all provenance — *which* view said
//! what, *where* in the API chain a result mutated, *how long* each scan
//! phase took — so the pipeline needs a telemetry layer that can record
//! that provenance without reaching for crates.io. This module provides:
//!
//! * hierarchical **spans** with monotonic timings ([`Telemetry::span`]
//!   returns a [`SpanGuard`] that closes the span on drop), carrying typed
//!   attributes ([`AttrValue`]) and point-in-time [`SpanEvent`]s,
//! * **counters / gauges / histograms** in the same registry
//!   ([`Telemetry::counter_add`], [`Telemetry::gauge_set`],
//!   [`Telemetry::histogram_record`]),
//! * a **global-free handle**: [`Telemetry`] is a cheap `Clone` over shared
//!   state, threaded explicitly through the scanners — no `static`
//!   subscriber, so two sweeps never bleed into each other,
//! * a **JSON exporter**: [`Telemetry::report`] freezes everything into a
//!   [`TelemetryReport`] that round-trips through the [`crate::json`]
//!   machinery and can be written as a `SCAN_TELEMETRY_<label>.json` file
//!   next to the `BENCH_*.json` reports,
//! * a **clock seam**: wall time is read through the [`Clock`] trait so
//!   tests inject a [`FakeClock`] and assert exact durations instead of
//!   sleeping,
//! * a **flight recorder**: every registry owns a bounded, always-on
//!   [`FlightRecorder`] ring buffer of timestamped [`FlightEvent`]s (span
//!   starts/ends, counter deltas, fault/breaker/cancel marks) with O(1)
//!   record cost; [`FlightRecorder::snapshot`] freezes the surviving tail
//!   into a [`FlightDump`] so a degraded pipeline can ship its own black
//!   box,
//! * **bounded histograms**: [`Telemetry::histogram_record`] feeds a
//!   log-linear [`HistogramSketch`] (HDR-style buckets, mergeable, bounded
//!   memory) instead of buffering raw samples, so hot scan loops can record
//!   per-entry latencies forever without unbounded growth,
//! * a **Chrome-trace exporter**: [`TelemetryReport::chrome_trace`] emits
//!   the span forest in the `trace_event` JSON array format (stable
//!   tid/pid per pipeline thread) that opens directly in Perfetto or
//!   `chrome://tracing`.

use crate::json::{JsonValue, ToJson};
use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Clock seam
// ---------------------------------------------------------------------

/// A monotonic nanosecond clock. Production code uses [`MonotonicClock`];
/// tests inject a [`FakeClock`] for exact, non-flaky duration assertions.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin; never decreases.
    fn now_ns(&self) -> u64;

    /// Blocks (or pretends to) for `ns` nanoseconds — the seam retry
    /// backoff goes through so tests with a [`FakeClock`] never actually
    /// sleep. The default is a no-op.
    fn sleep_ns(&self, _ns: u64) {}
}

/// Wall clock anchored to an [`Instant`] taken at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep_ns(&self, ns: u64) {
        crate::prof::note_wait_ns(ns);
        std::thread::sleep(std::time::Duration::from_nanos(ns));
    }
}

/// A manually-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A clock stopped at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute value.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ns(&self, ns: u64) {
        crate::prof::note_wait_ns(ns);
        self.advance(ns);
    }
}

// ---------------------------------------------------------------------
// Attribute values and events
// ---------------------------------------------------------------------

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute.
    Str(String),
    /// An unsigned integer attribute (entry counts, byte counts).
    UInt(u64),
    /// A signed integer attribute.
    Int(i64),
    /// A floating-point attribute.
    Float(f64),
    /// A boolean attribute.
    Bool(bool),
}

crate::impl_json!(
    enum AttrValue {
        Str(String),
        UInt(u64),
        Int(i64),
        Float(f64),
        Bool(bool),
    }
);

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::UInt(n) => write!(f, "{n}"),
            AttrValue::Int(n) => write!(f, "{n}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<u64> for AttrValue {
    fn from(n: u64) -> Self {
        AttrValue::UInt(n)
    }
}
impl From<usize> for AttrValue {
    fn from(n: usize) -> Self {
        AttrValue::UInt(n as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(n: u32) -> Self {
        AttrValue::UInt(u64::from(n))
    }
}
impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::Int(n)
    }
}
impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Float(x)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// A point-in-time event recorded inside a span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name.
    pub name: String,
    /// Clock value when the event fired.
    pub at_ns: u64,
    /// Typed payload.
    pub attrs: Vec<(String, AttrValue)>,
}

crate::impl_json!(struct SpanEvent { name, at_ns, attrs });

// ---------------------------------------------------------------------
// Log-linear histogram sketch
// ---------------------------------------------------------------------

/// Relative bucket growth factor: consecutive bucket boundaries differ by
/// 2%, so any quantile answer is within ~1% (half a bucket) of the true
/// sample in relative terms.
const SKETCH_GAMMA: f64 = 1.02;

/// Hard cap on the number of log-linear buckets a sketch may hold. With
/// `SKETCH_GAMMA = 1.02` this spans > 40 orders of magnitude before any
/// collapsing occurs, and bounds sketch memory at roughly
/// `SKETCH_MAX_BUCKETS * 16` bytes regardless of how many samples are
/// recorded.
pub const SKETCH_MAX_BUCKETS: usize = 2048;

/// A mergeable, bounded-memory log-linear histogram (DDSketch/HDR style).
///
/// Samples land in buckets whose boundaries grow geometrically
/// (γ = 1.02); the sketch stores only per-bucket counts plus exact
/// `count / sum / min / max`, so memory is bounded by
/// [`SKETCH_MAX_BUCKETS`] no matter how many samples are recorded —
/// recording a million samples costs the same as recording a hundred.
/// Quantiles come back as bucket representatives with a guaranteed
/// relative error of half a bucket (~1% at γ = 1.02), clamped to the
/// exact observed `[min, max]`.
///
/// Two sketches over disjoint sample sets [`merge`](Self::merge) into the
/// sketch of the union: bucket counts add, so quantiles of the merged
/// sketch equal quantiles of a single sketch fed every sample.
///
/// Non-finite samples are ignored; zero and negative samples are counted
/// in a dedicated underflow bucket represented by the observed minimum.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSketch {
    /// Log-linear bucket counts keyed by `ceil(ln(v) / ln(γ))`.
    buckets: BTreeMap<i32, u64>,
    /// Samples `<= 0` (no logarithm): the underflow bucket.
    zero_count: u64,
    /// Total samples recorded.
    count: u64,
    /// Exact running sum (for [`mean`](Self::mean)).
    sum: f64,
    /// Smallest sample seen.
    min: f64,
    /// Largest sample seen.
    max: f64,
}

crate::impl_json!(struct HistogramSketch { buckets, zero_count, count, sum, min, max });

impl HistogramSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample in O(log buckets). Non-finite values are
    /// dropped; everything else lands in a bucket.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if value <= 0.0 {
            self.zero_count += 1;
        } else {
            let index = (value.ln() / SKETCH_GAMMA.ln()).ceil() as i32;
            *self.buckets.entry(index).or_insert(0) += 1;
            self.enforce_cap();
        }
    }

    /// Folds another sketch into this one; afterwards `self` reports the
    /// union of both sample sets.
    pub fn merge(&mut self, other: &HistogramSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zero_count += other.zero_count;
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        self.enforce_cap();
    }

    /// Collapses the lowest buckets together whenever the cap is exceeded
    /// — the cheap end of a latency distribution is the least interesting,
    /// so precision is sacrificed there first.
    fn enforce_cap(&mut self) {
        while self.buckets.len() > SKETCH_MAX_BUCKETS {
            let (&lowest, &n) = self.buckets.iter().next().expect("len > cap > 0");
            self.buckets.remove(&lowest);
            let (_, next) = self
                .buckets
                .iter_mut()
                .next()
                .expect("cap >= 1 leaves a bucket");
            *next += n;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of live log-linear buckets (always `<=`
    /// [`SKETCH_MAX_BUCKETS`]).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Exact mean of all recorded samples.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum / self.count as f64)
    }

    /// Exact running sum of all recorded samples (0.0 when empty). SLO
    /// and rate rules divide this by [`count`](Self::count); Prometheus
    /// exposition emits it as the `_sum` line.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The sketch's cumulative bucket view: `(upper_bound, cumulative
    /// count)` pairs in ascending bound order, exactly the shape a
    /// Prometheus `_bucket{le="..."}` series wants. The underflow bucket
    /// (samples `<= 0`) appears as bound `0`; the caller supplies the
    /// final `+Inf` bucket from [`count`](Self::count).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut cumulative = 0u64;
        if self.zero_count > 0 {
            cumulative += self.zero_count;
            out.push((0.0, cumulative));
        }
        for (&index, &n) in &self.buckets {
            cumulative += n;
            out.push((SKETCH_GAMMA.powi(index), cumulative));
        }
        out
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank percentile (`pct` in `0..=100`). The answer is a
    /// bucket representative within half a bucket (~1% relative at γ =
    /// 1.02) of the true sample, clamped to the exact observed range.
    pub fn percentile(&self, pct: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((pct.clamp(0.0, 100.0) / 100.0) * (self.count - 1) as f64).round() as u64;
        // The extremes are tracked exactly; answer them without touching
        // the buckets so p0/p100 never pay the bucket error.
        if rank == 0 {
            return Some(self.min);
        }
        if rank == self.count - 1 {
            return Some(self.max);
        }
        let mut seen = self.zero_count;
        let mut value = if self.zero_count > 0 {
            // Underflow bucket: representative is the observed minimum
            // (exact when all non-positive samples are equal).
            self.min.min(0.0)
        } else {
            self.min
        };
        if rank >= seen {
            for (&index, &n) in &self.buckets {
                seen += n;
                if rank < seen {
                    // Geometric midpoint of (γ^(i-1), γ^i].
                    value = SKETCH_GAMMA.powi(index) / SKETCH_GAMMA.sqrt();
                    break;
                }
            }
        }
        Some(value.clamp(self.min, self.max))
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Default ring capacity for a [`FlightRecorder`]: enough to hold the
/// events leading up to a pipeline failure while keeping a snapshot small
/// enough to embed in every degraded `SweepReport`.
pub const FLIGHT_CAPACITY: usize = 256;

/// What kind of moment a [`FlightEvent`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A span opened.
    SpanStart,
    /// A span closed.
    SpanEnd,
    /// A counter was incremented.
    Counter,
    /// A gauge was set.
    Gauge,
    /// A fault surfaced (stall, transient device error, corruption).
    Fault,
    /// A circuit breaker gated or tripped.
    Breaker,
    /// A cancellation or deadline interrupt was observed.
    Cancel,
    /// An alert rule changed state (see [`crate::alert::AlertEngine`]).
    Alert,
    /// A free-form caller annotation.
    Mark,
}

crate::impl_json!(
    enum FlightEventKind {
        SpanStart,
        SpanEnd,
        Counter,
        Gauge,
        Fault,
        Breaker,
        Cancel,
        Alert,
        Mark,
    }
);

impl fmt::Display for FlightEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            FlightEventKind::SpanStart => "span-start",
            FlightEventKind::SpanEnd => "span-end",
            FlightEventKind::Counter => "counter",
            FlightEventKind::Gauge => "gauge",
            FlightEventKind::Fault => "fault",
            FlightEventKind::Breaker => "breaker",
            FlightEventKind::Cancel => "cancel",
            FlightEventKind::Alert => "alert",
            FlightEventKind::Mark => "mark",
        };
        f.write_str(label)
    }
}

/// One timestamped entry in the flight-recorder ring.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number across the recorder's whole lifetime
    /// (keeps ordering legible even after the ring has wrapped).
    pub seq: u64,
    /// Clock reading when the event was recorded.
    pub at_ns: u64,
    /// What kind of moment this is.
    pub kind: FlightEventKind,
    /// The subject — a span/counter name, device, or breaker.
    pub what: String,
    /// Free-form detail (delta, duration, failure reason).
    pub detail: String,
}

crate::impl_json!(struct FlightEvent { seq, at_ns, kind, what, detail });

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} {} {}",
            self.seq,
            fmt_ns(self.at_ns),
            self.kind,
            self.what
        )?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// A frozen snapshot of the flight-recorder tail: the last
/// `<= capacity` events in chronological order, plus how many older
/// events the ring had already dropped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlightDump {
    /// Surviving events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events overwritten before this snapshot was taken.
    pub dropped: u64,
    /// The ring capacity at snapshot time.
    pub capacity: u64,
}

crate::impl_json!(struct FlightDump { events, dropped, capacity });

impl FlightDump {
    /// Whether the dump holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of surviving events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The newest surviving event — for a black box snapshotted at a
    /// failure, the failure itself.
    pub fn last(&self) -> Option<&FlightEvent> {
        self.events.last()
    }

    /// One line per event, oldest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier events dropped\n", self.dropped));
        }
        for event in &self.events {
            out.push_str(&format!("{event}\n"));
        }
        out
    }
}

#[derive(Debug)]
struct FlightRing {
    /// Ring storage; grows to `capacity` then wraps.
    events: Vec<FlightEvent>,
    /// Next write position once the ring is full.
    next: usize,
    /// Lifetime sequence counter (== total events ever recorded).
    seq: u64,
}

/// A bounded, always-on ring buffer of timestamped [`FlightEvent`]s.
///
/// Recording is O(1): the ring overwrites its oldest entry once full, so
/// the recorder can run for the lifetime of a continuous monitor without
/// growing. Cloning yields another handle onto the same ring — the
/// telemetry registry, the fault-injecting machine, and the sweep
/// supervisor all write into one shared black box.
#[derive(Clone)]
pub struct FlightRecorder {
    clock: Arc<dyn Clock>,
    ring: Arc<Mutex<FlightRing>>,
    capacity: usize,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ring = self.ring.lock();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &ring.seq)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder with the default [`FLIGHT_CAPACITY`].
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_capacity(clock, FLIGHT_CAPACITY)
    }

    /// A recorder holding at most `capacity` events (min 1).
    pub fn with_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            clock,
            ring: Arc::new(Mutex::new(FlightRing {
                events: Vec::new(),
                next: 0,
                seq: 0,
            })),
            capacity,
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event in O(1).
    pub fn record(&self, kind: FlightEventKind, what: &str, detail: &str) {
        let at_ns = self.clock.now_ns();
        let mut ring = self.ring.lock();
        let event = FlightEvent {
            seq: ring.seq,
            at_ns,
            kind,
            what: what.to_string(),
            detail: detail.to_string(),
        };
        ring.seq += 1;
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let next = ring.next;
            ring.events[next] = event;
            ring.next = (next + 1) % self.capacity;
        }
    }

    /// Records a [`FlightEventKind::Fault`] event.
    pub fn fault(&self, what: &str, detail: &str) {
        self.record(FlightEventKind::Fault, what, detail);
    }

    /// Records a [`FlightEventKind::Breaker`] event.
    pub fn breaker(&self, what: &str, detail: &str) {
        self.record(FlightEventKind::Breaker, what, detail);
    }

    /// Records a [`FlightEventKind::Cancel`] event.
    pub fn cancel(&self, what: &str, detail: &str) {
        self.record(FlightEventKind::Cancel, what, detail);
    }

    /// Records a free-form [`FlightEventKind::Mark`] annotation.
    pub fn mark(&self, what: &str, detail: &str) {
        self.record(FlightEventKind::Mark, what, detail);
    }

    /// Freezes the surviving tail into a chronological [`FlightDump`].
    pub fn snapshot(&self) -> FlightDump {
        let ring = self.ring.lock();
        let mut events = Vec::with_capacity(ring.events.len());
        if ring.events.len() < self.capacity {
            events.extend(ring.events.iter().cloned());
        } else {
            events.extend(ring.events[ring.next..].iter().cloned());
            events.extend(ring.events[..ring.next].iter().cloned());
        }
        FlightDump {
            dropped: ring.seq - events.len() as u64,
            capacity: self.capacity as u64,
            events,
        }
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct SpanSlot {
    name: String,
    start_ns: u64,
    end_ns: Option<u64>,
    tid: u64,
    attrs: Vec<(String, AttrValue)>,
    events: Vec<SpanEvent>,
    children: Vec<usize>,
    /// Allocation/wait attribution, written once when the guard closes
    /// on its opening thread (see [`crate::prof`]); zero for spans
    /// still open at report time or closed cross-thread.
    allocs: u64,
    alloc_bytes: u64,
    peak_bytes: u64,
    wait_ns: u64,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanSlot>,
    stack: Vec<usize>,
    roots: Vec<usize>,
    /// OS threads that have opened spans, in first-seen order; a span's
    /// `tid` is its opener's index here. Dense and stable, unlike
    /// [`std::thread::ThreadId`], so it survives a JSON round-trip and
    /// maps directly onto Chrome-trace `tid`s.
    threads: Vec<(std::thread::ThreadId, String)>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSketch>,
}

impl State {
    /// The dense, registry-stable id of the calling thread, registering
    /// it (with its name) on first sight.
    fn current_tid(&mut self) -> u64 {
        let current = std::thread::current();
        if let Some(pos) = self.threads.iter().position(|(id, _)| *id == current.id()) {
            return pos as u64;
        }
        let name = current
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{}", self.threads.len()));
        self.threads.push((current.id(), name));
        (self.threads.len() - 1) as u64
    }
}

struct Inner {
    clock: Arc<dyn Clock>,
    recorder: FlightRecorder,
    state: Mutex<State>,
}

/// The global-free tracing + metrics registry.
///
/// Cloning a `Telemetry` yields another handle onto the same shared state,
/// so one handle can be threaded through every scanner of a sweep and the
/// facade can later freeze a single combined [`TelemetryReport`].
///
/// # Examples
///
/// ```
/// use strider_support::obs::Telemetry;
///
/// let telemetry = Telemetry::new();
/// {
///     let sweep = telemetry.span("sweep");
///     sweep.set_attr("machine", "lab-1");
///     let _phase = telemetry.span("high_scan"); // nested under "sweep"
///     telemetry.counter_add("entries", 300);
/// }
/// let report = telemetry.report();
/// assert_eq!(report.spans[0].children[0].name, "high_scan");
/// assert_eq!(report.counters["entries"], 300);
/// ```
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Telemetry")
            .field("spans", &state.spans.len())
            .field("counters", &state.counters.len())
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A registry timed by a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry timed by the given clock (inject a [`FakeClock`] here
    /// for deterministic tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let recorder = FlightRecorder::new(clock.clone());
        Self {
            inner: Arc::new(Inner {
                clock,
                recorder,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The registry clock's current reading.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// The registry clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock.clone()
    }

    /// The registry's always-on flight recorder. Clone the handle to let
    /// other layers (fault injection, supervision) write into the same
    /// black box.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Opens a span as a child of the innermost open span (or as a root).
    /// The returned guard closes the span when dropped.
    pub fn span(&self, name: &str) -> SpanGuard {
        let now = self.now_ns();
        let mut state = self.inner.state.lock();
        let tid = state.current_tid();
        let index = state.spans.len();
        state.spans.push(SpanSlot {
            name: name.to_string(),
            start_ns: now,
            tid,
            ..SpanSlot::default()
        });
        match state.stack.last().copied() {
            Some(parent) => state.spans[parent].children.push(index),
            None => state.roots.push(index),
        }
        state.stack.push(index);
        drop(state);
        self.inner
            .recorder
            .record(FlightEventKind::SpanStart, name, "");
        // The attribution scope opens last, after the span's own
        // bookkeeping allocations, so a span is charged for what runs
        // inside it — not for the cost of being recorded.
        SpanGuard {
            telemetry: self.clone(),
            index,
            ended: false,
            scope: Some(crate::prof::begin_scope()),
        }
    }

    /// Adds `delta` to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        {
            let mut state = self.inner.state.lock();
            *state.counters.entry(name.to_string()).or_insert(0) += delta;
        }
        self.inner
            .recorder
            .record(FlightEventKind::Counter, name, &format!("+{delta}"));
    }

    /// Sets a gauge to its latest observed value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        {
            let mut state = self.inner.state.lock();
            state.gauges.insert(name.to_string(), value);
        }
        self.inner
            .recorder
            .record(FlightEventKind::Gauge, name, &format!("={value}"));
    }

    /// Records one sample into a bounded [`HistogramSketch`]. Histogram
    /// samples are aggregated, not ring-recorded: hot loops may call this
    /// per entry without flooding the flight recorder.
    pub fn histogram_record(&self, name: &str, value: f64) {
        let mut state = self.inner.state.lock();
        state
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Freezes the current state into an exportable report. Spans still
    /// open are reported with the clock's current reading as their end.
    pub fn report(&self) -> TelemetryReport {
        let now = self.now_ns();
        let flight = self.inner.recorder.snapshot();
        let state = self.inner.state.lock();
        fn build(state: &State, index: usize, now: u64) -> SpanRecord {
            let slot = &state.spans[index];
            SpanRecord {
                name: slot.name.clone(),
                start_ns: slot.start_ns,
                end_ns: slot.end_ns.unwrap_or(now),
                tid: slot.tid,
                attrs: slot.attrs.clone(),
                events: slot.events.clone(),
                allocs: slot.allocs,
                alloc_bytes: slot.alloc_bytes,
                peak_bytes: slot.peak_bytes,
                wait_ns: slot.wait_ns,
                children: slot
                    .children
                    .iter()
                    .map(|&c| build(state, c, now))
                    .collect(),
            }
        }
        TelemetryReport {
            spans: state.roots.iter().map(|&r| build(&state, r, now)).collect(),
            threads: state
                .threads
                .iter()
                .enumerate()
                .map(|(i, (_, name))| (i as u64, name.clone()))
                .collect(),
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state.histograms.clone(),
            flight,
        }
    }
}

/// Closes its span on drop; use it to attach attributes and events.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    telemetry: Telemetry,
    index: usize,
    ended: bool,
    /// The allocation-attribution scope opened with the span; consumed
    /// at close (empty when the guard is dropped on another thread).
    scope: Option<crate::prof::ScopeToken>,
}

impl SpanGuard {
    /// Attaches a typed attribute to the span.
    pub fn set_attr(&self, key: &str, value: impl Into<AttrValue>) {
        let mut state = self.telemetry.inner.state.lock();
        state.spans[self.index]
            .attrs
            .push((key.to_string(), value.into()));
    }

    /// Records a point-in-time event inside the span.
    pub fn event(&self, name: &str) {
        self.event_with(name, Vec::new());
    }

    /// Records an event carrying a typed payload.
    pub fn event_with(&self, name: &str, attrs: Vec<(String, AttrValue)>) {
        let at_ns = self.telemetry.now_ns();
        let mut state = self.telemetry.inner.state.lock();
        state.spans[self.index].events.push(SpanEvent {
            name: name.to_string(),
            at_ns,
            attrs,
        });
    }

    /// Closes the span now instead of at end of scope.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        let now = self.telemetry.now_ns();
        // Close the attribution scope before any close bookkeeping
        // allocates, so the span's own teardown is charged to its
        // parent, not to it.
        let measured = self
            .scope
            .take()
            .map(crate::prof::ScopeToken::end)
            .unwrap_or_default();
        let mut state = self.telemetry.inner.state.lock();
        state.spans[self.index].end_ns = Some(now);
        state.spans[self.index].allocs = measured.allocs;
        state.spans[self.index].alloc_bytes = measured.alloc_bytes;
        state.spans[self.index].peak_bytes = measured.peak_bytes;
        state.spans[self.index].wait_ns = measured.wait_ns;
        let name = state.spans[self.index].name.clone();
        let took = now.saturating_sub(state.spans[self.index].start_ns);
        // Pop back to (and including) this span; any children left open by
        // out-of-order drops are popped with it so nesting stays sane.
        if let Some(pos) = state.stack.iter().rposition(|&i| i == self.index) {
            state.stack.truncate(pos);
        }
        drop(state);
        self.telemetry
            .inner
            .recorder
            .record(FlightEventKind::SpanEnd, &name, &fmt_ns(took));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

/// A span that may or may not be recording: every method is a no-op when
/// telemetry is disabled, so instrumented code reads straight-line.
#[derive(Debug)]
pub struct MaybeSpan(Option<SpanGuard>);

impl MaybeSpan {
    /// Opens a span if a telemetry handle is present.
    pub fn start(telemetry: Option<&Telemetry>, name: &str) -> Self {
        MaybeSpan(telemetry.map(|t| t.span(name)))
    }

    /// A span that records nothing.
    pub fn disabled() -> Self {
        MaybeSpan(None)
    }

    /// Whether the span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches an attribute if recording.
    pub fn set_attr(&self, key: &str, value: impl Into<AttrValue>) {
        if let Some(span) = &self.0 {
            span.set_attr(key, value);
        }
    }

    /// Records an event if recording.
    pub fn event(&self, name: &str) {
        if let Some(span) = &self.0 {
            span.event(name);
        }
    }
}

// ---------------------------------------------------------------------
// The frozen report
// ---------------------------------------------------------------------

/// One completed span in a frozen report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Clock value at open.
    pub start_ns: u64,
    /// Clock value at close (the report's freeze time for open spans).
    pub end_ns: u64,
    /// Dense, registry-stable id of the OS thread that opened the span
    /// (index into [`TelemetryReport::threads`]). Pipelines run on scoped
    /// threads, so this is what tells a `files.scan_inside` span apart
    /// from a `registry.scan_inside` span in a flat timeline.
    pub tid: u64,
    /// Attributes, in attachment order.
    pub attrs: Vec<(String, AttrValue)>,
    /// Events, in firing order.
    pub events: Vec<SpanEvent>,
    /// Heap allocations performed while the span was open (inclusive of
    /// children), counted by the [`crate::prof`] global allocator on
    /// the span's opening thread. Zero for spans still open at report
    /// time or whose guard was dropped on another thread.
    pub allocs: u64,
    /// Bytes allocated while the span was open (inclusive; same caveats
    /// as [`allocs`](Self::allocs)).
    pub alloc_bytes: u64,
    /// Peak net heap footprint the span added above its starting level
    /// on its thread (see [`crate::prof::begin_scope`]).
    pub peak_bytes: u64,
    /// Nanoseconds the span's thread spent in [`Clock::sleep_ns`] while
    /// the span was open (inclusive): supervised polls, retry backoff.
    pub wait_ns: u64,
    /// Child spans, in open order.
    pub children: Vec<SpanRecord>,
}

crate::impl_json!(struct SpanRecord {
    name,
    start_ns,
    end_ns,
    tid,
    attrs,
    events,
    allocs,
    alloc_bytes,
    peak_bytes,
    wait_ns,
    children
});

impl SpanRecord {
    /// The span's wall duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The first attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The first direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&SpanRecord> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The frozen, JSON-exportable output of a [`Telemetry`] registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Root spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// Thread names keyed by the dense tid used on [`SpanRecord::tid`].
    pub threads: BTreeMap<u64, String>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Bounded histogram sketches (see [`HistogramSketch`]).
    pub histograms: BTreeMap<String, HistogramSketch>,
    /// Flight-recorder tail at freeze time.
    pub flight: FlightDump,
}

crate::impl_json!(struct TelemetryReport { spans, threads, counters, gauges, histograms, flight });

impl TelemetryReport {
    /// Depth-first search across all roots for the first span named `name`.
    pub fn find_span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Total duration and occurrence count per span name, summed across
    /// the whole forest — the "per-phase breakdown" the bench reports use.
    pub fn phase_totals(&self) -> BTreeMap<String, PhaseTotal> {
        fn walk(span: &SpanRecord, totals: &mut BTreeMap<String, PhaseTotal>) {
            let entry = totals.entry(span.name.clone()).or_default();
            entry.count += 1;
            entry.total_ns += span.duration_ns();
            entry.allocs += span.allocs;
            entry.alloc_bytes += span.alloc_bytes;
            entry.wait_ns += span.wait_ns;
            for child in &span.children {
                walk(child, totals);
            }
        }
        let mut totals = BTreeMap::new();
        for span in &self.spans {
            walk(span, &mut totals);
        }
        totals
    }

    /// Nearest-rank percentile over a named histogram's sketch (within
    /// the sketch's ~1% relative bucket error; exact at the extremes).
    pub fn histogram_percentile(&self, name: &str, pct: f64) -> Option<f64> {
        self.histograms.get(name)?.percentile(pct)
    }

    /// Exact mean of a named histogram's samples.
    pub fn histogram_mean(&self, name: &str) -> Option<f64> {
        self.histograms.get(name)?.mean()
    }

    /// Pretty-prints the span forest, one span per line with durations and
    /// attributes, children indented under parents.
    pub fn render_tree(&self) -> String {
        fn walk(span: &SpanRecord, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} {}", span.name, fmt_ns(span.duration_ns())));
            for (key, value) in &span.attrs {
                out.push_str(&format!(" {key}={value}"));
            }
            out.push('\n');
            for event in &span.events {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!("@ {} at {}\n", event.name, fmt_ns(event.at_ns)));
            }
            for child in &span.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        for span in &self.spans {
            walk(span, 0, &mut out);
        }
        out
    }

    /// Compact per-phase summary lines (spans down to `max_depth`, root =
    /// depth 0), for embedding in `Display` output.
    pub fn summary_lines(&self, max_depth: usize) -> Vec<String> {
        fn walk(span: &SpanRecord, depth: usize, max_depth: usize, out: &mut Vec<String>) {
            let mut line = format!(
                "{}phase {}: {}",
                "  ".repeat(depth),
                span.name,
                fmt_ns(span.duration_ns())
            );
            let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            if !attrs.is_empty() {
                line.push_str(&format!(" ({})", attrs.join(", ")));
            }
            out.push(line);
            if depth < max_depth {
                for child in &span.children {
                    walk(child, depth + 1, max_depth, out);
                }
            }
        }
        let mut out = Vec::new();
        for span in &self.spans {
            walk(span, 0, max_depth, &mut out);
        }
        out
    }

    /// Writes the report as `SCAN_TELEMETRY_<label>.json` into
    /// [`crate::bench::report_dir`] and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, label: &str) -> std::io::Result<PathBuf> {
        self.write_json_in(&crate::bench::report_dir(), label)
    }

    /// Writes the report as `SCAN_TELEMETRY_<label>.json` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content (see [`sanitize_label`]) as `InvalidInput`.
    pub fn write_json_in(&self, dir: &std::path::Path, label: &str) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("SCAN_TELEMETRY_{}.json", checked_label(label)?));
        crate::store::atomic_write_file(&path, self.to_json().render_pretty(2).as_bytes())?;
        Ok(path)
    }

    /// The span forest in Chrome `trace_event` JSON array format: one
    /// complete (`"ph":"X"`) event per span, one counter (`"ph":"C"`)
    /// event per span with allocation activity (series `allocs` /
    /// `alloc_bytes`, emitted at the span's close), one instant
    /// (`"ph":"i"`) event per span event, plus `thread_name` metadata so
    /// Perfetto / `chrome://tracing` labels each pipeline thread.
    /// Timestamps are in microseconds as the format requires; `pid` is
    /// always 1 (one process), `tid` is the registry-stable
    /// [`SpanRecord::tid`].
    pub fn chrome_trace(&self) -> JsonValue {
        fn attr_json(value: &AttrValue) -> JsonValue {
            match value {
                AttrValue::Str(s) => JsonValue::Str(s.clone()),
                AttrValue::UInt(n) => JsonValue::UInt(*n),
                AttrValue::Int(n) => JsonValue::Int(*n),
                AttrValue::Float(x) => JsonValue::Float(*x),
                AttrValue::Bool(b) => JsonValue::Bool(*b),
            }
        }
        fn walk(span: &SpanRecord, out: &mut Vec<JsonValue>) {
            let args: Vec<(String, JsonValue)> = span
                .attrs
                .iter()
                .map(|(k, v)| (k.clone(), attr_json(v)))
                .collect();
            out.push(JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str(span.name.clone())),
                ("cat".into(), JsonValue::Str("scan".into())),
                ("ph".into(), JsonValue::Str("X".into())),
                ("ts".into(), JsonValue::Float(span.start_ns as f64 / 1e3)),
                (
                    "dur".into(),
                    JsonValue::Float(span.duration_ns() as f64 / 1e3),
                ),
                ("pid".into(), JsonValue::UInt(1)),
                ("tid".into(), JsonValue::UInt(span.tid)),
                ("args".into(), JsonValue::Obj(args)),
            ]));
            if span.allocs > 0 || span.alloc_bytes > 0 {
                out.push(JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str("mem".into())),
                    ("cat".into(), JsonValue::Str("scan".into())),
                    ("ph".into(), JsonValue::Str("C".into())),
                    ("ts".into(), JsonValue::Float(span.end_ns as f64 / 1e3)),
                    ("pid".into(), JsonValue::UInt(1)),
                    ("tid".into(), JsonValue::UInt(span.tid)),
                    (
                        "args".into(),
                        JsonValue::Obj(vec![
                            ("allocs".into(), JsonValue::UInt(span.allocs)),
                            ("alloc_bytes".into(), JsonValue::UInt(span.alloc_bytes)),
                        ]),
                    ),
                ]));
            }
            for event in &span.events {
                let args: Vec<(String, JsonValue)> = event
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), attr_json(v)))
                    .collect();
                out.push(JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(event.name.clone())),
                    ("cat".into(), JsonValue::Str("scan".into())),
                    ("ph".into(), JsonValue::Str("i".into())),
                    ("ts".into(), JsonValue::Float(event.at_ns as f64 / 1e3)),
                    ("pid".into(), JsonValue::UInt(1)),
                    ("tid".into(), JsonValue::UInt(span.tid)),
                    ("s".into(), JsonValue::Str("t".into())),
                    ("args".into(), JsonValue::Obj(args)),
                ]));
            }
            for child in &span.children {
                walk(child, out);
            }
        }
        let mut out = Vec::new();
        for (tid, name) in &self.threads {
            out.push(JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str("thread_name".into())),
                ("ph".into(), JsonValue::Str("M".into())),
                ("pid".into(), JsonValue::UInt(1)),
                ("tid".into(), JsonValue::UInt(*tid)),
                (
                    "args".into(),
                    JsonValue::Obj(vec![("name".into(), JsonValue::Str(name.clone()))]),
                ),
            ]));
        }
        for span in &self.spans {
            walk(span, &mut out);
        }
        JsonValue::Arr(out)
    }

    /// Writes [`chrome_trace`](Self::chrome_trace) as
    /// `SCAN_TRACE_<label>.json` into [`crate::bench::report_dir`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects empty labels.
    pub fn write_chrome_trace(&self, label: &str) -> std::io::Result<PathBuf> {
        self.write_chrome_trace_in(&crate::bench::report_dir(), label)
    }

    /// Writes [`chrome_trace`](Self::chrome_trace) as
    /// `SCAN_TRACE_<label>.json` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects empty labels.
    pub fn write_chrome_trace_in(
        &self,
        dir: &std::path::Path,
        label: &str,
    ) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("SCAN_TRACE_{}.json", checked_label(label)?));
        crate::store::atomic_write_file(&path, self.chrome_trace().render_pretty(2).as_bytes())?;
        Ok(path)
    }
}

/// Reduces a free-form label to a filesystem-safe stem: every
/// non-alphanumeric character becomes `_`, runs collapse to one `_`, and
/// leading/trailing `_` are trimmed. Returns `None` when nothing
/// alphanumeric survives (so `"///"` can't silently collide with `"_"`).
pub fn sanitize_label(label: &str) -> Option<String> {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    let trimmed = out.trim_end_matches('_');
    (!trimmed.is_empty()).then(|| trimmed.to_string())
}

pub(crate) fn checked_label(label: &str) -> std::io::Result<String> {
    sanitize_label(label).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("label {label:?} has no alphanumeric content"),
        )
    })
}

/// Per-name aggregate in [`TelemetryReport::phase_totals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotal {
    /// How many spans carried the name.
    pub count: u64,
    /// Summed wall duration across them.
    pub total_ns: u64,
    /// Summed heap allocations (inclusive, per [`SpanRecord::allocs`]).
    pub allocs: u64,
    /// Summed allocated bytes (inclusive).
    pub alloc_bytes: u64,
    /// Summed sleep time (inclusive, per [`SpanRecord::wait_ns`]).
    pub wait_ns: u64,
}

crate::impl_json!(struct PhaseTotal { count, total_ns, allocs, alloc_bytes, wait_ns });

/// Renders a nanosecond duration with a human-scale unit.
///
/// Unit boundaries account for display rounding: a value that would
/// *render* as `1000.0` in one unit (e.g. `999_999_500ns` ≈ `1000.0ms`)
/// rolls up to the next unit instead, so the printed magnitude always
/// stays below 1000 of its unit.
pub fn fmt_ns(ns: u64) -> String {
    // Each threshold is the smallest value that rounds to 1000.0 (one
    // decimal) or 1.00 (two decimals) of the *next* unit's predecessor.
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 999_950 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 999_950_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Renders a byte count with a human-scale binary unit, the byte-count
/// sibling of [`fmt_ns`]: the printed magnitude always stays below 1000
/// of its unit (`999.9KiB` rolls up to `1.0MiB` rather than printing a
/// four-digit mantissa).
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KIB {
        format!("{bytes}B")
    } else if b < 999.95 * KIB {
        format!("{:.1}KiB", b / KIB)
    } else if b < 999.95 * KIB * KIB {
        format!("{:.1}MiB", b / (KIB * KIB))
    } else {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, JsonValue};

    fn fake() -> (Arc<FakeClock>, Telemetry) {
        let clock = Arc::new(FakeClock::new());
        let telemetry = Telemetry::with_clock(clock.clone());
        (clock, telemetry)
    }

    #[test]
    fn spans_nest_and_time_exactly() {
        let (clock, telemetry) = fake();
        {
            let sweep = telemetry.span("sweep");
            sweep.set_attr("machine", "lab");
            clock.advance(10);
            {
                let high = telemetry.span("high_scan");
                high.set_attr("entries", 300u64);
                clock.advance(25);
            }
            {
                let _low = telemetry.span("low_scan");
                clock.advance(40);
            }
            clock.advance(5);
        }
        let report = telemetry.report();
        assert_eq!(report.spans.len(), 1);
        let sweep = &report.spans[0];
        assert_eq!(sweep.name, "sweep");
        assert_eq!(sweep.duration_ns(), 80);
        assert_eq!(sweep.attr("machine"), Some(&AttrValue::Str("lab".into())));
        assert_eq!(sweep.children.len(), 2);
        assert_eq!(sweep.child("high_scan").unwrap().duration_ns(), 25);
        assert_eq!(
            sweep.child("high_scan").unwrap().attr("entries"),
            Some(&AttrValue::UInt(300))
        );
        assert_eq!(sweep.child("low_scan").unwrap().duration_ns(), 40);
        assert_eq!(sweep.child("low_scan").unwrap().start_ns, 35);
    }

    #[test]
    fn sibling_spans_after_explicit_end_stay_roots() {
        let (clock, telemetry) = fake();
        let first = telemetry.span("first");
        clock.advance(3);
        first.end();
        let _second = telemetry.span("second");
        let report = telemetry.report();
        assert_eq!(report.spans.len(), 2, "second is a root, not a child");
        assert_eq!(report.spans[0].duration_ns(), 3);
    }

    #[test]
    fn open_spans_freeze_at_report_time() {
        let (clock, telemetry) = fake();
        let _open = telemetry.span("still_running");
        clock.advance(7);
        let report = telemetry.report();
        assert_eq!(report.spans[0].duration_ns(), 7);
    }

    #[test]
    fn events_record_clock_and_payload() {
        let (clock, telemetry) = fake();
        let span = telemetry.span("scan");
        clock.advance(12);
        span.event_with("tamper", vec![("bytes".into(), AttrValue::UInt(4))]);
        drop(span);
        let report = telemetry.report();
        let event = &report.spans[0].events[0];
        assert_eq!(event.name, "tamper");
        assert_eq!(event.at_ns, 12);
        assert_eq!(event.attrs[0].1, AttrValue::UInt(4));
    }

    #[test]
    fn counters_gauges_histograms() {
        let (_clock, telemetry) = fake();
        telemetry.counter_add("entries", 100);
        telemetry.counter_add("entries", 42);
        telemetry.gauge_set("depth", 3.0);
        telemetry.gauge_set("depth", 5.0);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            telemetry.histogram_record("lat", v);
        }
        let report = telemetry.report();
        assert_eq!(report.counters["entries"], 142);
        assert_eq!(report.gauges["depth"], 5.0);
        // Sketch-backed percentiles are within one bucket (~2%) of the
        // true sample; the extremes are exact (clamped to min/max).
        let p50 = report.histogram_percentile("lat", 50.0).unwrap();
        assert!((p50 / 3.0 - 1.0).abs() < 0.02, "p50 = {p50}");
        assert_eq!(report.histogram_percentile("lat", 100.0), Some(100.0));
        assert_eq!(report.histogram_percentile("lat", 0.0), Some(1.0));
        assert_eq!(report.histogram_mean("lat"), Some(22.0));
        assert_eq!(report.histogram_percentile("missing", 50.0), None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let (clock, telemetry) = fake();
        {
            let span = telemetry.span("outer");
            span.set_attr("kind", "files");
            span.set_attr("count", 9u64);
            clock.advance(50);
            let inner = telemetry.span("inner");
            inner.event("checkpoint");
            clock.advance(50);
        }
        telemetry.counter_add("rows", 12);
        telemetry.gauge_set("ratio", 0.5);
        telemetry.histogram_record("lat", 1.5);
        let report = telemetry.report();
        let text = report.to_json().render_pretty(2);
        let parsed =
            TelemetryReport::from_json(&JsonValue::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(parsed, report);
    }

    #[test]
    fn phase_totals_sum_across_repeats() {
        let (clock, telemetry) = fake();
        for _ in 0..3 {
            let _span = telemetry.span("diff");
            clock.advance(10);
        }
        let totals = telemetry.report().phase_totals();
        assert_eq!(totals["diff"].count, 3);
        assert_eq!(totals["diff"].total_ns, 30);
    }

    #[test]
    fn render_tree_and_summary_show_structure() {
        let (clock, telemetry) = fake();
        {
            let sweep = telemetry.span("sweep");
            sweep.set_attr("suspicious", 2u64);
            clock.advance(1_500);
            let _files = telemetry.span("files");
            clock.advance(500);
        }
        let report = telemetry.report();
        let tree = report.render_tree();
        assert!(tree.contains("sweep 2.0µs suspicious=2"), "{tree}");
        assert!(tree.contains("  files 500ns"), "{tree}");
        let lines = report.summary_lines(0);
        assert_eq!(lines.len(), 1, "depth 0 keeps only roots");
        assert!(lines[0].starts_with("phase sweep:"), "{}", lines[0]);
    }

    #[test]
    fn maybe_span_is_silent_when_disabled() {
        let disabled = MaybeSpan::start(None, "nothing");
        assert!(!disabled.is_recording());
        disabled.set_attr("k", 1u64);
        disabled.event("e");

        let (_clock, telemetry) = fake();
        let enabled = MaybeSpan::start(Some(&telemetry), "something");
        assert!(enabled.is_recording());
        enabled.set_attr("k", 1u64);
        drop(enabled);
        drop(disabled);
        assert_eq!(telemetry.report().spans.len(), 1);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_000_000), "2.0ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.50s");
    }

    #[test]
    fn fmt_ns_never_renders_a_four_digit_magnitude() {
        // Each unit edge: the last value that stays in the unit, and the
        // first value whose *rounded* rendering would read 1000.0 — which
        // must roll up instead.
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_000), "1.0µs");
        assert_eq!(fmt_ns(999_949), "999.9µs");
        assert_eq!(fmt_ns(999_950), "1.0ms");
        assert_eq!(fmt_ns(999_949_999), "999.9ms");
        assert_eq!(fmt_ns(999_950_000), "1.00s");
        assert_eq!(fmt_ns(999_999_500), "1.00s", "regression: was 1000.0ms");
        assert_eq!(fmt_ns(1_000_000_000), "1.00s");
    }

    #[test]
    fn write_json_sanitizes_label_and_writes() {
        let dir = std::env::temp_dir().join(format!("strider-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_clock, telemetry) = fake();
        telemetry.counter_add("x", 1);
        let path = telemetry
            .report()
            .write_json_in(&dir, "unit test!")
            .unwrap();
        assert!(path.ends_with("SCAN_TELEMETRY_unit_test.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"counters\""));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn label_sanitization_collapses_runs_and_rejects_empty() {
        assert_eq!(sanitize_label("unit test!"), Some("unit_test".into()));
        assert_eq!(sanitize_label("a//b--c"), Some("a_b_c".into()));
        assert_eq!(sanitize_label("__x__"), Some("x".into()));
        assert_eq!(sanitize_label("lab-1"), Some("lab_1".into()));
        assert_eq!(sanitize_label("///"), None);
        assert_eq!(sanitize_label(""), None);

        let (_clock, telemetry) = fake();
        let err = telemetry
            .report()
            .write_json_in(std::path::Path::new("/tmp"), "///")
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn sketch_percentiles_stay_within_bucket_error() {
        let mut sketch = HistogramSketch::new();
        for i in 1..=1000 {
            sketch.record(i as f64);
        }
        assert_eq!(sketch.count(), 1000);
        for (pct, expect) in [(10.0, 100.0), (50.0, 500.0), (90.0, 900.0)] {
            let got = sketch.percentile(pct).unwrap();
            assert!(
                (got / expect - 1.0).abs() < 0.02,
                "p{pct}: got {got}, want ~{expect}"
            );
        }
        assert_eq!(sketch.percentile(0.0), Some(1.0));
        assert_eq!(sketch.percentile(100.0), Some(1000.0));
        assert_eq!(sketch.mean(), Some(500.5));
    }

    #[test]
    fn sketch_merge_equals_single_recording() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 997 + 1) as f64).collect();
        let mut whole = HistogramSketch::new();
        let mut left = HistogramSketch::new();
        let mut right = HistogramSketch::new();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        for pct in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(left.percentile(pct), whole.percentile(pct), "p{pct}");
        }
    }

    #[test]
    fn sketch_bucket_count_is_bounded() {
        let mut sketch = HistogramSketch::new();
        // A pathological spread: every order of magnitude from 1e-30 to
        // 1e30 still stays under the cap because buckets are logarithmic.
        let mut v = 1e-30;
        while v < 1e30 {
            sketch.record(v);
            v *= 1.01;
        }
        assert!(sketch.bucket_count() <= SKETCH_MAX_BUCKETS);
        assert!(sketch.count() > 10_000);
        // Non-finite samples are ignored, not recorded.
        let before = sketch.count();
        sketch.record(f64::NAN);
        sketch.record(f64::INFINITY);
        assert_eq!(sketch.count(), before);
    }

    #[test]
    fn sketch_handles_zero_and_negative_samples() {
        let mut sketch = HistogramSketch::new();
        for v in [-5.0, 0.0, 0.0, 10.0] {
            sketch.record(v);
        }
        assert_eq!(sketch.min(), Some(-5.0));
        assert_eq!(sketch.max(), Some(10.0));
        assert_eq!(sketch.percentile(0.0), Some(-5.0));
        assert_eq!(sketch.percentile(100.0), Some(10.0));
    }

    #[test]
    fn flight_ring_wraps_and_keeps_the_tail() {
        let clock = Arc::new(FakeClock::new());
        let recorder = FlightRecorder::with_capacity(clock.clone(), 4);
        for i in 0..10 {
            clock.advance(1);
            recorder.mark(&format!("m{i}"), "");
        }
        let dump = recorder.snapshot();
        assert_eq!(dump.len(), 4, "capacity respected");
        assert_eq!(dump.dropped, 6);
        assert_eq!(dump.capacity, 4);
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "chronological tail");
        assert_eq!(dump.last().unwrap().what, "m9");
        assert_eq!(dump.events[0].at_ns, 7);
    }

    #[test]
    fn telemetry_feeds_its_flight_recorder() {
        let (clock, telemetry) = fake();
        {
            let _span = telemetry.span("files.scan");
            clock.advance(10);
            telemetry.counter_add("files.entries", 3);
        }
        telemetry.recorder().fault("volume", "torn sector");
        let report = telemetry.report();
        let kinds: Vec<FlightEventKind> = report.flight.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlightEventKind::SpanStart,
                FlightEventKind::Counter,
                FlightEventKind::SpanEnd,
                FlightEventKind::Fault,
            ]
        );
        assert_eq!(report.flight.events[0].what, "files.scan");
        assert_eq!(report.flight.events[2].detail, "10ns");
        assert_eq!(report.flight.last().unwrap().detail, "torn sector");
    }

    #[test]
    fn spans_record_stable_thread_ids() {
        let (_clock, telemetry) = fake();
        let _root = telemetry.span("root");
        let t = telemetry.clone();
        std::thread::Builder::new()
            .name("worker".into())
            .spawn(move || {
                let _span = t.span("on_worker");
            })
            .unwrap()
            .join()
            .unwrap();
        let report = telemetry.report();
        let root = report.find_span("root").unwrap();
        let worker = report.find_span("on_worker").unwrap();
        assert_ne!(root.tid, worker.tid, "different OS threads, different tid");
        assert_eq!(report.threads[&worker.tid], "worker");
        assert_eq!(report.threads.len(), 2);
    }

    #[test]
    fn chrome_trace_emits_valid_trace_events() {
        let (clock, telemetry) = fake();
        {
            let span = telemetry.span("sweep");
            span.set_attr("machine", "lab");
            clock.advance(2_000);
            let inner = telemetry.span("files.scan");
            inner.event("checkpoint");
            clock.advance(1_000);
        }
        let trace = telemetry.report().chrome_trace();
        let events = trace.as_arr().expect("top level is an array");
        let get = |obj: &JsonValue, key: &str| {
            obj.as_obj()
                .unwrap()
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or(JsonValue::Null)
        };
        let by_ph = |ph: &str| -> Vec<&JsonValue> {
            events
                .iter()
                .filter(|e| get(e, "ph").as_str().ok() == Some(ph))
                .collect()
        };
        // 1 thread_name metadata + 2 X spans + 1 instant, plus one "C"
        // memory counter per span that allocated (both do: recording a
        // child span / an event allocates inside the parent's window).
        assert_eq!(by_ph("M").len(), 1);
        assert_eq!(by_ph("X").len(), 2);
        assert_eq!(by_ph("i").len(), 1);
        assert_eq!(by_ph("C").len(), 2);
        assert_eq!(events.len(), 6);
        let sweep = by_ph("X")[0];
        assert_eq!(get(sweep, "name").as_str().unwrap(), "sweep");
        assert_eq!(get(sweep, "ts").as_f64().unwrap(), 0.0);
        assert_eq!(get(sweep, "dur").as_f64().unwrap(), 3.0, "3µs total");
        assert_eq!(get(sweep, "pid").as_u64().unwrap(), 1);
        let instant = by_ph("i")[0];
        assert_eq!(get(instant, "ts").as_f64().unwrap(), 2.0);
        let counter = by_ph("C")[0];
        assert_eq!(get(counter, "name").as_str().unwrap(), "mem");
        assert!(
            get(counter, "args")
                .field("allocs")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        // Round-trips through the parser (what verify.sh validates).
        let text = trace.render_pretty(2);
        assert!(JsonValue::parse(&text).is_ok());
    }

    #[test]
    fn spans_attribute_allocations_and_waits() {
        let (clock, telemetry) = fake();
        let waited_before = crate::prof::thread_stats().wait_ns;
        {
            let _sweep = telemetry.span("sweep");
            {
                let _alloc_heavy = telemetry.span("alloc_heavy");
                let v: Vec<u8> = vec![0; 64 * 1024];
                drop(v);
            }
            {
                let _backoff = telemetry.span("backoff");
                clock.sleep_ns(1_234);
            }
        }
        let _ = waited_before;
        let report = telemetry.report();
        let heavy = report.find_span("alloc_heavy").unwrap();
        assert!(heavy.allocs >= 1, "the vec was counted: {heavy:?}");
        assert!(heavy.alloc_bytes >= 64 * 1024);
        assert!(heavy.peak_bytes >= 64 * 1024);
        let backoff = report.find_span("backoff").unwrap();
        assert_eq!(backoff.wait_ns, 1_234, "the sleep is attributed");
        let sweep = report.find_span("sweep").unwrap();
        assert!(sweep.allocs >= heavy.allocs, "attribution is inclusive");
        assert!(sweep.wait_ns >= backoff.wait_ns);
        // The rollup carries the same attribution.
        let totals = report.phase_totals();
        assert_eq!(totals["backoff"].wait_ns, 1_234);
        assert!(totals["alloc_heavy"].alloc_bytes >= 64 * 1024);
    }

    #[test]
    fn fmt_bytes_picks_units() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(1023), "1023B");
        assert_eq!(fmt_bytes(1024), "1.0KiB");
        assert_eq!(fmt_bytes(64 * 1024), "64.0KiB");
        assert_eq!(fmt_bytes(1024 * 1024), "1.0MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00GiB");
        // The rendered magnitude never reaches four digits: the last
        // value that rounds to 999.9KiB stays, the next rolls up.
        assert_eq!(fmt_bytes(1_023_948), "999.9KiB");
        assert_eq!(fmt_bytes(1_023_949), "1.0MiB");
    }
}
