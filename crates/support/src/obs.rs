//! Structured tracing + metrics replacing `tracing` + `metrics`.
//!
//! GhostBuster's detection story is all provenance — *which* view said
//! what, *where* in the API chain a result mutated, *how long* each scan
//! phase took — so the pipeline needs a telemetry layer that can record
//! that provenance without reaching for crates.io. This module provides:
//!
//! * hierarchical **spans** with monotonic timings ([`Telemetry::span`]
//!   returns a [`SpanGuard`] that closes the span on drop), carrying typed
//!   attributes ([`AttrValue`]) and point-in-time [`SpanEvent`]s,
//! * **counters / gauges / histograms** in the same registry
//!   ([`Telemetry::counter_add`], [`Telemetry::gauge_set`],
//!   [`Telemetry::histogram_record`]),
//! * a **global-free handle**: [`Telemetry`] is a cheap `Clone` over shared
//!   state, threaded explicitly through the scanners — no `static`
//!   subscriber, so two sweeps never bleed into each other,
//! * a **JSON exporter**: [`Telemetry::report`] freezes everything into a
//!   [`TelemetryReport`] that round-trips through the [`crate::json`]
//!   machinery and can be written as a `SCAN_TELEMETRY_<label>.json` file
//!   next to the `BENCH_*.json` reports,
//! * a **clock seam**: wall time is read through the [`Clock`] trait so
//!   tests inject a [`FakeClock`] and assert exact durations instead of
//!   sleeping.

use crate::json::ToJson;
use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Clock seam
// ---------------------------------------------------------------------

/// A monotonic nanosecond clock. Production code uses [`MonotonicClock`];
/// tests inject a [`FakeClock`] for exact, non-flaky duration assertions.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin; never decreases.
    fn now_ns(&self) -> u64;

    /// Blocks (or pretends to) for `ns` nanoseconds — the seam retry
    /// backoff goes through so tests with a [`FakeClock`] never actually
    /// sleep. The default is a no-op.
    fn sleep_ns(&self, _ns: u64) {}
}

/// Wall clock anchored to an [`Instant`] taken at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn sleep_ns(&self, ns: u64) {
        std::thread::sleep(std::time::Duration::from_nanos(ns));
    }
}

/// A manually-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A clock stopped at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute value.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ns(&self, ns: u64) {
        self.advance(ns);
    }
}

// ---------------------------------------------------------------------
// Attribute values and events
// ---------------------------------------------------------------------

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute.
    Str(String),
    /// An unsigned integer attribute (entry counts, byte counts).
    UInt(u64),
    /// A signed integer attribute.
    Int(i64),
    /// A floating-point attribute.
    Float(f64),
    /// A boolean attribute.
    Bool(bool),
}

crate::impl_json!(
    enum AttrValue {
        Str(String),
        UInt(u64),
        Int(i64),
        Float(f64),
        Bool(bool),
    }
);

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::UInt(n) => write!(f, "{n}"),
            AttrValue::Int(n) => write!(f, "{n}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<u64> for AttrValue {
    fn from(n: u64) -> Self {
        AttrValue::UInt(n)
    }
}
impl From<usize> for AttrValue {
    fn from(n: usize) -> Self {
        AttrValue::UInt(n as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(n: u32) -> Self {
        AttrValue::UInt(u64::from(n))
    }
}
impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::Int(n)
    }
}
impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Float(x)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// A point-in-time event recorded inside a span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name.
    pub name: String,
    /// Clock value when the event fired.
    pub at_ns: u64,
    /// Typed payload.
    pub attrs: Vec<(String, AttrValue)>,
}

crate::impl_json!(struct SpanEvent { name, at_ns, attrs });

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct SpanSlot {
    name: String,
    start_ns: u64,
    end_ns: Option<u64>,
    attrs: Vec<(String, AttrValue)>,
    events: Vec<SpanEvent>,
    children: Vec<usize>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanSlot>,
    stack: Vec<usize>,
    roots: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Vec<f64>>,
}

struct Inner {
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
}

/// The global-free tracing + metrics registry.
///
/// Cloning a `Telemetry` yields another handle onto the same shared state,
/// so one handle can be threaded through every scanner of a sweep and the
/// facade can later freeze a single combined [`TelemetryReport`].
///
/// # Examples
///
/// ```
/// use strider_support::obs::Telemetry;
///
/// let telemetry = Telemetry::new();
/// {
///     let sweep = telemetry.span("sweep");
///     sweep.set_attr("machine", "lab-1");
///     let _phase = telemetry.span("high_scan"); // nested under "sweep"
///     telemetry.counter_add("entries", 300);
/// }
/// let report = telemetry.report();
/// assert_eq!(report.spans[0].children[0].name, "high_scan");
/// assert_eq!(report.counters["entries"], 300);
/// ```
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Telemetry")
            .field("spans", &state.spans.len())
            .field("counters", &state.counters.len())
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A registry timed by a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry timed by the given clock (inject a [`FakeClock`] here
    /// for deterministic tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The registry clock's current reading.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// Opens a span as a child of the innermost open span (or as a root).
    /// The returned guard closes the span when dropped.
    pub fn span(&self, name: &str) -> SpanGuard {
        let now = self.now_ns();
        let mut state = self.inner.state.lock();
        let index = state.spans.len();
        state.spans.push(SpanSlot {
            name: name.to_string(),
            start_ns: now,
            ..SpanSlot::default()
        });
        match state.stack.last().copied() {
            Some(parent) => state.spans[parent].children.push(index),
            None => state.roots.push(index),
        }
        state.stack.push(index);
        SpanGuard {
            telemetry: self.clone(),
            index,
            ended: false,
        }
    }

    /// Adds `delta` to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut state = self.inner.state.lock();
        *state.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge to its latest observed value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut state = self.inner.state.lock();
        state.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into a histogram.
    pub fn histogram_record(&self, name: &str, value: f64) {
        let mut state = self.inner.state.lock();
        state
            .histograms
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// Freezes the current state into an exportable report. Spans still
    /// open are reported with the clock's current reading as their end.
    pub fn report(&self) -> TelemetryReport {
        let now = self.now_ns();
        let state = self.inner.state.lock();
        fn build(state: &State, index: usize, now: u64) -> SpanRecord {
            let slot = &state.spans[index];
            SpanRecord {
                name: slot.name.clone(),
                start_ns: slot.start_ns,
                end_ns: slot.end_ns.unwrap_or(now),
                attrs: slot.attrs.clone(),
                events: slot.events.clone(),
                children: slot
                    .children
                    .iter()
                    .map(|&c| build(state, c, now))
                    .collect(),
            }
        }
        TelemetryReport {
            spans: state.roots.iter().map(|&r| build(&state, r, now)).collect(),
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state.histograms.clone(),
        }
    }
}

/// Closes its span on drop; use it to attach attributes and events.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    telemetry: Telemetry,
    index: usize,
    ended: bool,
}

impl SpanGuard {
    /// Attaches a typed attribute to the span.
    pub fn set_attr(&self, key: &str, value: impl Into<AttrValue>) {
        let mut state = self.telemetry.inner.state.lock();
        state.spans[self.index]
            .attrs
            .push((key.to_string(), value.into()));
    }

    /// Records a point-in-time event inside the span.
    pub fn event(&self, name: &str) {
        self.event_with(name, Vec::new());
    }

    /// Records an event carrying a typed payload.
    pub fn event_with(&self, name: &str, attrs: Vec<(String, AttrValue)>) {
        let at_ns = self.telemetry.now_ns();
        let mut state = self.telemetry.inner.state.lock();
        state.spans[self.index].events.push(SpanEvent {
            name: name.to_string(),
            at_ns,
            attrs,
        });
    }

    /// Closes the span now instead of at end of scope.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        let now = self.telemetry.now_ns();
        let mut state = self.telemetry.inner.state.lock();
        state.spans[self.index].end_ns = Some(now);
        // Pop back to (and including) this span; any children left open by
        // out-of-order drops are popped with it so nesting stays sane.
        if let Some(pos) = state.stack.iter().rposition(|&i| i == self.index) {
            state.stack.truncate(pos);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

/// A span that may or may not be recording: every method is a no-op when
/// telemetry is disabled, so instrumented code reads straight-line.
#[derive(Debug)]
pub struct MaybeSpan(Option<SpanGuard>);

impl MaybeSpan {
    /// Opens a span if a telemetry handle is present.
    pub fn start(telemetry: Option<&Telemetry>, name: &str) -> Self {
        MaybeSpan(telemetry.map(|t| t.span(name)))
    }

    /// A span that records nothing.
    pub fn disabled() -> Self {
        MaybeSpan(None)
    }

    /// Whether the span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches an attribute if recording.
    pub fn set_attr(&self, key: &str, value: impl Into<AttrValue>) {
        if let Some(span) = &self.0 {
            span.set_attr(key, value);
        }
    }

    /// Records an event if recording.
    pub fn event(&self, name: &str) {
        if let Some(span) = &self.0 {
            span.event(name);
        }
    }
}

// ---------------------------------------------------------------------
// The frozen report
// ---------------------------------------------------------------------

/// One completed span in a frozen report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Clock value at open.
    pub start_ns: u64,
    /// Clock value at close (the report's freeze time for open spans).
    pub end_ns: u64,
    /// Attributes, in attachment order.
    pub attrs: Vec<(String, AttrValue)>,
    /// Events, in firing order.
    pub events: Vec<SpanEvent>,
    /// Child spans, in open order.
    pub children: Vec<SpanRecord>,
}

crate::impl_json!(struct SpanRecord { name, start_ns, end_ns, attrs, events, children });

impl SpanRecord {
    /// The span's wall duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The first attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The first direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&SpanRecord> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The frozen, JSON-exportable output of a [`Telemetry`] registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Root spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Raw histogram samples, in record order.
    pub histograms: BTreeMap<String, Vec<f64>>,
}

crate::impl_json!(struct TelemetryReport { spans, counters, gauges, histograms });

impl TelemetryReport {
    /// Depth-first search across all roots for the first span named `name`.
    pub fn find_span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Total duration and occurrence count per span name, summed across
    /// the whole forest — the "per-phase breakdown" the bench reports use.
    pub fn phase_totals(&self) -> BTreeMap<String, PhaseTotal> {
        fn walk(span: &SpanRecord, totals: &mut BTreeMap<String, PhaseTotal>) {
            let entry = totals.entry(span.name.clone()).or_default();
            entry.count += 1;
            entry.total_ns += span.duration_ns();
            for child in &span.children {
                walk(child, totals);
            }
        }
        let mut totals = BTreeMap::new();
        for span in &self.spans {
            walk(span, &mut totals);
        }
        totals
    }

    /// Nearest-rank percentile over a named histogram's samples.
    pub fn histogram_percentile(&self, name: &str, pct: f64) -> Option<f64> {
        let samples = self.histograms.get(name)?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("histogram samples are finite"));
        let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Mean of a named histogram's samples.
    pub fn histogram_mean(&self, name: &str) -> Option<f64> {
        let samples = self.histograms.get(name)?;
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }

    /// Pretty-prints the span forest, one span per line with durations and
    /// attributes, children indented under parents.
    pub fn render_tree(&self) -> String {
        fn walk(span: &SpanRecord, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} {}", span.name, fmt_ns(span.duration_ns())));
            for (key, value) in &span.attrs {
                out.push_str(&format!(" {key}={value}"));
            }
            out.push('\n');
            for event in &span.events {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!("@ {} at {}\n", event.name, fmt_ns(event.at_ns)));
            }
            for child in &span.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        for span in &self.spans {
            walk(span, 0, &mut out);
        }
        out
    }

    /// Compact per-phase summary lines (spans down to `max_depth`, root =
    /// depth 0), for embedding in `Display` output.
    pub fn summary_lines(&self, max_depth: usize) -> Vec<String> {
        fn walk(span: &SpanRecord, depth: usize, max_depth: usize, out: &mut Vec<String>) {
            let mut line = format!(
                "{}phase {}: {}",
                "  ".repeat(depth),
                span.name,
                fmt_ns(span.duration_ns())
            );
            let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            if !attrs.is_empty() {
                line.push_str(&format!(" ({})", attrs.join(", ")));
            }
            out.push(line);
            if depth < max_depth {
                for child in &span.children {
                    walk(child, depth + 1, max_depth, out);
                }
            }
        }
        let mut out = Vec::new();
        for span in &self.spans {
            walk(span, 0, max_depth, &mut out);
        }
        out
    }

    /// Writes the report as `SCAN_TELEMETRY_<label>.json` into
    /// [`crate::bench::report_dir`] and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, label: &str) -> std::io::Result<PathBuf> {
        self.write_json_in(&crate::bench::report_dir(), label)
    }

    /// Writes the report as `SCAN_TELEMETRY_<label>.json` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json_in(&self, dir: &std::path::Path, label: &str) -> std::io::Result<PathBuf> {
        let file_name = format!(
            "SCAN_TELEMETRY_{}.json",
            label
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect::<String>()
        );
        let path = dir.join(file_name);
        std::fs::write(&path, self.to_json().render_pretty(2))?;
        Ok(path)
    }
}

/// Per-name aggregate in [`TelemetryReport::phase_totals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotal {
    /// How many spans carried the name.
    pub count: u64,
    /// Summed wall duration across them.
    pub total_ns: u64,
}

crate::impl_json!(struct PhaseTotal { count, total_ns });

/// Renders a nanosecond duration with a human-scale unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, JsonValue};

    fn fake() -> (Arc<FakeClock>, Telemetry) {
        let clock = Arc::new(FakeClock::new());
        let telemetry = Telemetry::with_clock(clock.clone());
        (clock, telemetry)
    }

    #[test]
    fn spans_nest_and_time_exactly() {
        let (clock, telemetry) = fake();
        {
            let sweep = telemetry.span("sweep");
            sweep.set_attr("machine", "lab");
            clock.advance(10);
            {
                let high = telemetry.span("high_scan");
                high.set_attr("entries", 300u64);
                clock.advance(25);
            }
            {
                let _low = telemetry.span("low_scan");
                clock.advance(40);
            }
            clock.advance(5);
        }
        let report = telemetry.report();
        assert_eq!(report.spans.len(), 1);
        let sweep = &report.spans[0];
        assert_eq!(sweep.name, "sweep");
        assert_eq!(sweep.duration_ns(), 80);
        assert_eq!(sweep.attr("machine"), Some(&AttrValue::Str("lab".into())));
        assert_eq!(sweep.children.len(), 2);
        assert_eq!(sweep.child("high_scan").unwrap().duration_ns(), 25);
        assert_eq!(
            sweep.child("high_scan").unwrap().attr("entries"),
            Some(&AttrValue::UInt(300))
        );
        assert_eq!(sweep.child("low_scan").unwrap().duration_ns(), 40);
        assert_eq!(sweep.child("low_scan").unwrap().start_ns, 35);
    }

    #[test]
    fn sibling_spans_after_explicit_end_stay_roots() {
        let (clock, telemetry) = fake();
        let first = telemetry.span("first");
        clock.advance(3);
        first.end();
        let _second = telemetry.span("second");
        let report = telemetry.report();
        assert_eq!(report.spans.len(), 2, "second is a root, not a child");
        assert_eq!(report.spans[0].duration_ns(), 3);
    }

    #[test]
    fn open_spans_freeze_at_report_time() {
        let (clock, telemetry) = fake();
        let _open = telemetry.span("still_running");
        clock.advance(7);
        let report = telemetry.report();
        assert_eq!(report.spans[0].duration_ns(), 7);
    }

    #[test]
    fn events_record_clock_and_payload() {
        let (clock, telemetry) = fake();
        let span = telemetry.span("scan");
        clock.advance(12);
        span.event_with("tamper", vec![("bytes".into(), AttrValue::UInt(4))]);
        drop(span);
        let report = telemetry.report();
        let event = &report.spans[0].events[0];
        assert_eq!(event.name, "tamper");
        assert_eq!(event.at_ns, 12);
        assert_eq!(event.attrs[0].1, AttrValue::UInt(4));
    }

    #[test]
    fn counters_gauges_histograms() {
        let (_clock, telemetry) = fake();
        telemetry.counter_add("entries", 100);
        telemetry.counter_add("entries", 42);
        telemetry.gauge_set("depth", 3.0);
        telemetry.gauge_set("depth", 5.0);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            telemetry.histogram_record("lat", v);
        }
        let report = telemetry.report();
        assert_eq!(report.counters["entries"], 142);
        assert_eq!(report.gauges["depth"], 5.0);
        assert_eq!(report.histogram_percentile("lat", 50.0), Some(3.0));
        assert_eq!(report.histogram_percentile("lat", 100.0), Some(100.0));
        assert_eq!(report.histogram_percentile("lat", 0.0), Some(1.0));
        assert_eq!(report.histogram_mean("lat"), Some(22.0));
        assert_eq!(report.histogram_percentile("missing", 50.0), None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let (clock, telemetry) = fake();
        {
            let span = telemetry.span("outer");
            span.set_attr("kind", "files");
            span.set_attr("count", 9u64);
            clock.advance(50);
            let inner = telemetry.span("inner");
            inner.event("checkpoint");
            clock.advance(50);
        }
        telemetry.counter_add("rows", 12);
        telemetry.gauge_set("ratio", 0.5);
        telemetry.histogram_record("lat", 1.5);
        let report = telemetry.report();
        let text = report.to_json().render_pretty(2);
        let parsed =
            TelemetryReport::from_json(&JsonValue::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(parsed, report);
    }

    #[test]
    fn phase_totals_sum_across_repeats() {
        let (clock, telemetry) = fake();
        for _ in 0..3 {
            let _span = telemetry.span("diff");
            clock.advance(10);
        }
        let totals = telemetry.report().phase_totals();
        assert_eq!(totals["diff"].count, 3);
        assert_eq!(totals["diff"].total_ns, 30);
    }

    #[test]
    fn render_tree_and_summary_show_structure() {
        let (clock, telemetry) = fake();
        {
            let sweep = telemetry.span("sweep");
            sweep.set_attr("suspicious", 2u64);
            clock.advance(1_500);
            let _files = telemetry.span("files");
            clock.advance(500);
        }
        let report = telemetry.report();
        let tree = report.render_tree();
        assert!(tree.contains("sweep 2.0µs suspicious=2"), "{tree}");
        assert!(tree.contains("  files 500ns"), "{tree}");
        let lines = report.summary_lines(0);
        assert_eq!(lines.len(), 1, "depth 0 keeps only roots");
        assert!(lines[0].starts_with("phase sweep:"), "{}", lines[0]);
    }

    #[test]
    fn maybe_span_is_silent_when_disabled() {
        let disabled = MaybeSpan::start(None, "nothing");
        assert!(!disabled.is_recording());
        disabled.set_attr("k", 1u64);
        disabled.event("e");

        let (_clock, telemetry) = fake();
        let enabled = MaybeSpan::start(Some(&telemetry), "something");
        assert!(enabled.is_recording());
        enabled.set_attr("k", 1u64);
        drop(enabled);
        drop(disabled);
        assert_eq!(telemetry.report().spans.len(), 1);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_000_000), "2.0ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.50s");
    }

    #[test]
    fn write_json_sanitizes_label_and_writes() {
        let dir = std::env::temp_dir().join(format!("strider-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_clock, telemetry) = fake();
        telemetry.counter_add("x", 1);
        let path = telemetry
            .report()
            .write_json_in(&dir, "unit test!")
            .unwrap();
        assert!(path.ends_with("SCAN_TELEMETRY_unit_test_.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"counters\""));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
