//! Allocation profiling and performance attribution.
//!
//! ROADMAP item 2 demands allocation-free zero-copy hot paths, but a
//! claim like "this scan does not allocate" is only auditable if the
//! workspace can *count*. This module is the measurement plane:
//!
//! * a hermetic counting [`CountingAlloc`] installed as the workspace
//!   `#[global_allocator]`: every allocation and deallocation updates
//!   plain thread-local [`Cell`]s (no locks, no heap, no recursion), so
//!   the counters cost a few adds per malloc and are exact per thread,
//! * **span-scoped attribution**: [`begin_scope`]/[`ScopeToken::end`]
//!   bracket a region and report how many allocations, how many bytes,
//!   and what peak net footprint the region produced on its thread —
//!   [`Telemetry`](crate::obs::Telemetry) spans use this to put
//!   `allocs` / `alloc_bytes` / `peak_bytes` on every
//!   [`SpanRecord`],
//! * **wait accounting**: both [`Clock`](crate::obs::Clock)
//!   implementations report time spent in `sleep_ns` via
//!   [`note_wait_ns`], so supervised-poll and backoff waiting is
//!   separable from compute in every span (`wait_ns`),
//! * a **critical-path analyzer**: [`PerfReport::from_telemetry`] rolls
//!   a frozen span forest into self-time vs child-time, a top-K hotspot
//!   table, a work/wait/alloc decomposition, and the longest
//!   root-to-leaf chain — exported as `SCAN_PERF_<label>.json` and
//!   rendered as the table `SweepReport` prints.
//!
//! The trade-off against a sampling profiler is deliberate: counting
//! instruments every allocation exactly (deterministic, works on the
//! fake clock, no symbolization) at the cost of a few nanoseconds per
//! malloc, where sampling is cheaper per event but statistical and
//! needs wall time to converge. For a detector whose benches run in
//! milliseconds under a seeded clock, exact counting is the only option
//! that yields reproducible, committable numbers (see DESIGN.md).

use crate::json::ToJson;
use crate::obs::{fmt_bytes, fmt_ns, SpanRecord, TelemetryReport};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::path::PathBuf;

// ---------------------------------------------------------------------
// The counting allocator
// ---------------------------------------------------------------------

/// The workspace-wide counting allocator: forwards to [`System`] and
/// updates the calling thread's counters. Installed once (here) as the
/// `#[global_allocator]`, so every crate in the workspace — scanners,
/// fleet, benches, tests — is counted without opting in.
pub struct CountingAlloc;

struct ThreadCounters {
    allocs: Cell<u64>,
    deallocs: Cell<u64>,
    alloc_bytes: Cell<u64>,
    dealloc_bytes: Cell<u64>,
    /// Net live bytes from this thread's perspective: allocations add,
    /// deallocations subtract. Signed because memory allocated on one
    /// thread may be freed on another.
    current_bytes: Cell<i64>,
    /// High-water mark of `current_bytes` since the innermost open
    /// scope began (scopes save/restore it; see [`begin_scope`]).
    peak_bytes: Cell<i64>,
    wait_ns: Cell<u64>,
}

thread_local! {
    // `const` init: no lazy-init flag, no destructor registration, and
    // therefore no allocation on first touch — safe to reach from
    // inside the allocator itself.
    static COUNTERS: ThreadCounters = const {
        ThreadCounters {
            allocs: Cell::new(0),
            deallocs: Cell::new(0),
            alloc_bytes: Cell::new(0),
            dealloc_bytes: Cell::new(0),
            current_bytes: Cell::new(0),
            peak_bytes: Cell::new(0),
            wait_ns: Cell::new(0),
        }
    };
}

#[inline]
fn note_alloc(bytes: u64) {
    // `try_with` so allocations during thread teardown (after TLS
    // destruction) are silently uncounted instead of aborting.
    let _ = COUNTERS.try_with(|c| {
        c.allocs.set(c.allocs.get() + 1);
        c.alloc_bytes.set(c.alloc_bytes.get() + bytes);
        let current = c.current_bytes.get() + bytes as i64;
        c.current_bytes.set(current);
        if current > c.peak_bytes.get() {
            c.peak_bytes.set(current);
        }
    });
}

#[inline]
fn note_dealloc(bytes: u64) {
    let _ = COUNTERS.try_with(|c| {
        c.deallocs.set(c.deallocs.get() + 1);
        c.dealloc_bytes.set(c.dealloc_bytes.get() + bytes);
        c.current_bytes.set(c.current_bytes.get() - bytes as i64);
    });
}

// SAFETY: every method forwards verbatim to `System` and only touches
// plain thread-local `Cell`s afterwards — no locks, no heap use, no
// re-entry into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            note_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            note_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new = System.realloc(ptr, layout, new_size);
        if !new.is_null() {
            // A realloc is one new allocation and one retirement — the
            // books balance the same as an alloc/dealloc pair.
            note_alloc(new_size as u64);
            note_dealloc(layout.size() as u64);
        }
        new
    }
}

#[global_allocator]
static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------
// Thread-local stats and scopes
// ---------------------------------------------------------------------

/// A snapshot of the calling thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocations performed by this thread, ever.
    pub allocs: u64,
    /// Deallocations performed by this thread, ever.
    pub deallocs: u64,
    /// Bytes allocated by this thread, ever.
    pub alloc_bytes: u64,
    /// Bytes freed by this thread, ever.
    pub dealloc_bytes: u64,
    /// Net live bytes from this thread's perspective (negative when it
    /// frees more than it allocates — memory handed over from another
    /// thread).
    pub current_bytes: i64,
    /// Nanoseconds this thread has spent in [`Clock::sleep_ns`]
    /// (see [`note_wait_ns`]).
    ///
    /// [`Clock::sleep_ns`]: crate::obs::Clock::sleep_ns
    pub wait_ns: u64,
}

/// The calling thread's allocation counters so far.
pub fn thread_stats() -> AllocStats {
    COUNTERS
        .try_with(|c| AllocStats {
            allocs: c.allocs.get(),
            deallocs: c.deallocs.get(),
            alloc_bytes: c.alloc_bytes.get(),
            dealloc_bytes: c.dealloc_bytes.get(),
            current_bytes: c.current_bytes.get(),
            wait_ns: c.wait_ns.get(),
        })
        .unwrap_or_default()
}

/// Adds `ns` to the calling thread's wait accumulator. Called by both
/// [`Clock`](crate::obs::Clock) implementations from `sleep_ns`, so
/// every supervised poll and backoff sleep — real or fake-clock — is
/// attributed to the span it happened under.
pub fn note_wait_ns(ns: u64) {
    let _ = COUNTERS.try_with(|c| c.wait_ns.set(c.wait_ns.get() + ns));
}

/// What a closed scope observed on its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScopeMeasurement {
    /// Allocations during the scope.
    pub allocs: u64,
    /// Bytes allocated during the scope.
    pub alloc_bytes: u64,
    /// Peak net footprint the scope added above its starting level
    /// (0 when the scope freed more than it allocated).
    pub peak_bytes: u64,
    /// Nanoseconds the thread spent sleeping inside the scope.
    pub wait_ns: u64,
}

/// An open attribution scope; produce it with [`begin_scope`] and close
/// it with [`ScopeToken::end`] *on the same thread*.
#[derive(Debug)]
pub struct ScopeToken {
    thread: std::thread::ThreadId,
    start_allocs: u64,
    start_alloc_bytes: u64,
    start_current: i64,
    start_wait_ns: u64,
    saved_peak: i64,
}

/// Opens an allocation-attribution scope on the calling thread: the
/// per-thread peak tracker is reset to the current level (the previous
/// peak is saved in the token and restored — merged with `max` — when
/// the scope ends), so nested scopes each observe their own incremental
/// high-water mark.
pub fn begin_scope() -> ScopeToken {
    let stats = thread_stats();
    let saved_peak = COUNTERS
        .try_with(|c| {
            let saved = c.peak_bytes.get();
            c.peak_bytes.set(c.current_bytes.get());
            saved
        })
        .unwrap_or_default();
    ScopeToken {
        thread: std::thread::current().id(),
        start_allocs: stats.allocs,
        start_alloc_bytes: stats.alloc_bytes,
        start_current: stats.current_bytes,
        start_wait_ns: stats.wait_ns,
        saved_peak,
    }
}

impl ScopeToken {
    /// Closes the scope and returns what it observed. Closing on a
    /// different thread than the one that opened it yields an empty
    /// measurement (cross-thread deltas would be meaningless) and
    /// leaves that thread's peak tracker untouched.
    pub fn end(self) -> ScopeMeasurement {
        if self.thread != std::thread::current().id() {
            return ScopeMeasurement::default();
        }
        let stats = thread_stats();
        let observed_peak = COUNTERS
            .try_with(|c| {
                let observed = c.peak_bytes.get();
                // Restore the parent scope's view: its peak is whatever
                // it had seen before, or whatever this scope drove the
                // thread to — whichever is higher.
                c.peak_bytes.set(self.saved_peak.max(observed));
                observed
            })
            .unwrap_or_default();
        ScopeMeasurement {
            allocs: stats.allocs.saturating_sub(self.start_allocs),
            alloc_bytes: stats.alloc_bytes.saturating_sub(self.start_alloc_bytes),
            peak_bytes: observed_peak.saturating_sub(self.start_current).max(0) as u64,
            wait_ns: stats.wait_ns.saturating_sub(self.start_wait_ns),
        }
    }
}

// ---------------------------------------------------------------------
// Critical-path analysis over a frozen span forest
// ---------------------------------------------------------------------

/// How many hotspots [`PerfReport::from_telemetry`] keeps.
pub const PERF_TOP_K: usize = 8;

/// Per-span-name aggregate with self-time (inclusive duration minus the
/// inclusive durations of direct children).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hotspot {
    /// Span name.
    pub name: String,
    /// How many spans carried the name.
    pub count: u64,
    /// Summed inclusive wall duration.
    pub total_ns: u64,
    /// Summed self time: inclusive minus children, clamped at 0 per
    /// span (parallel children can overlap their parent).
    pub self_ns: u64,
    /// Summed self wait time (sleeps under this span but not under a
    /// child).
    pub wait_ns: u64,
    /// Summed self allocation count.
    pub allocs: u64,
    /// Summed self allocated bytes.
    pub alloc_bytes: u64,
}

crate::impl_json!(struct Hotspot { name, count, total_ns, self_ns, wait_ns, allocs, alloc_bytes });

/// One step on the critical path: a span on the longest root-to-leaf
/// chain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// The span's inclusive wall duration.
    pub duration_ns: u64,
    /// The span's self time.
    pub self_ns: u64,
}

crate::impl_json!(struct PathStep { name, duration_ns, self_ns });

/// The performance attribution of one frozen [`TelemetryReport`]:
/// wall/work/wait totals, allocation totals, top-K hotspots by
/// self-time, and the critical path (the chain built by starting at the
/// longest root span and repeatedly descending into the
/// longest-duration child).
///
/// `work_ns` is derived, not measured: summed self-time minus summed
/// self-wait, i.e. the time spans spent neither in children nor asleep.
/// On a fake clock the decomposition is exact; on the wall clock it is
/// within scheduler noise.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerfReport {
    /// Label the report was built under (used for the export file name).
    pub label: String,
    /// Wall span of the forest: latest end minus earliest start.
    pub wall_ns: u64,
    /// Summed self-time minus wait — the compute component.
    pub work_ns: u64,
    /// Summed wait (sleeps: supervised polls, retry backoff).
    pub wait_ns: u64,
    /// Total allocations across all root spans (inclusive).
    pub allocs: u64,
    /// Total allocated bytes across all root spans (inclusive).
    pub alloc_bytes: u64,
    /// Largest single-span peak net footprint observed.
    pub peak_bytes: u64,
    /// Top-K span names by summed self-time.
    pub hotspots: Vec<Hotspot>,
    /// The longest root-to-leaf chain.
    pub critical_path: Vec<PathStep>,
}

crate::impl_json!(struct PerfReport {
    label,
    wall_ns,
    work_ns,
    wait_ns,
    allocs,
    alloc_bytes,
    peak_bytes,
    hotspots,
    critical_path
});

/// A span's self components: inclusive totals minus direct children's
/// inclusive totals, clamped at zero.
fn self_parts(span: &SpanRecord) -> (u64, u64, u64, u64) {
    let child_ns: u64 = span.children.iter().map(SpanRecord::duration_ns).sum();
    let child_wait: u64 = span.children.iter().map(|c| c.wait_ns).sum();
    let child_allocs: u64 = span.children.iter().map(|c| c.allocs).sum();
    let child_bytes: u64 = span.children.iter().map(|c| c.alloc_bytes).sum();
    (
        span.duration_ns().saturating_sub(child_ns),
        span.wait_ns.saturating_sub(child_wait),
        span.allocs.saturating_sub(child_allocs),
        span.alloc_bytes.saturating_sub(child_bytes),
    )
}

impl PerfReport {
    /// Analyzes a frozen telemetry report. `label` names the analysis
    /// (and the `SCAN_PERF_<label>.json` export).
    pub fn from_telemetry(label: &str, report: &TelemetryReport) -> Self {
        use std::collections::BTreeMap;
        let mut by_name: BTreeMap<String, Hotspot> = BTreeMap::new();
        let mut wall_start = u64::MAX;
        let mut wall_end = 0u64;
        let mut peak_bytes = 0u64;
        fn walk(span: &SpanRecord, by_name: &mut BTreeMap<String, Hotspot>, peak: &mut u64) {
            let (self_ns, self_wait, self_allocs, self_bytes) = self_parts(span);
            let entry = by_name.entry(span.name.clone()).or_default();
            if entry.name.is_empty() {
                entry.name = span.name.clone();
            }
            entry.count += 1;
            entry.total_ns += span.duration_ns();
            entry.self_ns += self_ns;
            entry.wait_ns += self_wait;
            entry.allocs += self_allocs;
            entry.alloc_bytes += self_bytes;
            *peak = (*peak).max(span.peak_bytes);
            for child in &span.children {
                walk(child, by_name, peak);
            }
        }
        for root in &report.spans {
            wall_start = wall_start.min(root.start_ns);
            wall_end = wall_end.max(root.end_ns);
            walk(root, &mut by_name, &mut peak_bytes);
        }
        let total_self: u64 = by_name.values().map(|h| h.self_ns).sum();
        let total_wait: u64 = by_name.values().map(|h| h.wait_ns).sum();
        let total_allocs: u64 = by_name.values().map(|h| h.allocs).sum();
        let total_alloc_bytes: u64 = by_name.values().map(|h| h.alloc_bytes).sum();
        let mut hotspots: Vec<Hotspot> = by_name.into_values().collect();
        hotspots.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        hotspots.truncate(PERF_TOP_K);

        // Critical path: the longest root, then always the
        // longest-duration child, down to a leaf.
        let mut critical_path = Vec::new();
        let mut cursor = report
            .spans
            .iter()
            .max_by_key(|s| (s.duration_ns(), std::cmp::Reverse(s.start_ns)));
        while let Some(span) = cursor {
            let (self_ns, ..) = self_parts(span);
            critical_path.push(PathStep {
                name: span.name.clone(),
                duration_ns: span.duration_ns(),
                self_ns,
            });
            cursor = span
                .children
                .iter()
                .max_by_key(|c| (c.duration_ns(), std::cmp::Reverse(c.start_ns)));
        }

        PerfReport {
            label: label.to_string(),
            wall_ns: wall_end.saturating_sub(if wall_start == u64::MAX {
                0
            } else {
                wall_start
            }),
            work_ns: total_self.saturating_sub(total_wait),
            wait_ns: total_wait,
            allocs: total_allocs,
            alloc_bytes: total_alloc_bytes,
            peak_bytes,
            hotspots,
            critical_path,
        }
    }

    /// The work/wait/alloc decomposition as one summary line.
    pub fn summary(&self) -> String {
        format!(
            "perf {}: wall {} (work {}, wait {}), {} allocs / {} (peak {})",
            self.label,
            fmt_ns(self.wall_ns),
            fmt_ns(self.work_ns),
            fmt_ns(self.wait_ns),
            self.allocs,
            fmt_bytes(self.alloc_bytes),
            fmt_bytes(self.peak_bytes),
        )
    }

    /// The rendered attribution table: summary line, hotspot rows
    /// (self-time ranked), and the critical path.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.summary());
        out.push('\n');
        if !self.hotspots.is_empty() {
            out.push_str("hotspots (by self time):\n");
            let width = self
                .hotspots
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap_or(0);
            for h in &self.hotspots {
                out.push_str(&format!(
                    "  {:<width$}  self {:>8}  total {:>8}  x{:<4} {:>6} allocs  {:>9}\n",
                    h.name,
                    fmt_ns(h.self_ns),
                    fmt_ns(h.total_ns),
                    h.count,
                    h.allocs,
                    fmt_bytes(h.alloc_bytes),
                ));
            }
        }
        if !self.critical_path.is_empty() {
            let chain: Vec<String> = self
                .critical_path
                .iter()
                .map(|s| format!("{} {}", s.name, fmt_ns(s.duration_ns)))
                .collect();
            out.push_str(&format!("critical path: {}\n", chain.join(" -> ")));
        }
        out
    }

    /// Writes the report as `SCAN_PERF_<label>.json` into
    /// [`crate::bench::report_dir`] and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no
    /// alphanumeric content.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        self.write_json_in(&crate::bench::report_dir())
    }

    /// Writes the report as `SCAN_PERF_<label>.json` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no
    /// alphanumeric content.
    pub fn write_json_in(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        let label = crate::obs::sanitize_label(&self.label).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("label {:?} has no alphanumeric content", self.label),
            )
        })?;
        let path = dir.join(format!("SCAN_PERF_{label}.json"));
        crate::store::atomic_write_file(&path, self.to_json().render_pretty(2).as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, JsonValue};
    use crate::obs::{Clock, FakeClock, Telemetry};
    use std::sync::Arc;

    #[test]
    fn counting_allocator_counts_this_thread() {
        let before = thread_stats();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        let after = thread_stats();
        assert!(after.allocs > before.allocs, "alloc counted");
        assert!(after.deallocs > before.deallocs, "dealloc counted");
        assert!(
            after.alloc_bytes >= before.alloc_bytes + 4096,
            "bytes counted"
        );
        assert!(after.dealloc_bytes >= before.dealloc_bytes + 4096);
    }

    #[test]
    fn scopes_attribute_allocations_and_peak() {
        let token = begin_scope();
        let a: Vec<u8> = vec![0; 10_000];
        drop(a);
        let b: Vec<u8> = vec![0; 2_000];
        let m = token.end();
        drop(b);
        assert!(m.allocs >= 2, "two vecs allocated: {m:?}");
        assert!(m.alloc_bytes >= 12_000, "both counted: {m:?}");
        assert!(m.peak_bytes >= 10_000, "peak saw the big vec: {m:?}");
        // The big vec was freed before the scope closed, so the peak is
        // not the sum of both.
        assert!(m.peak_bytes < 12_000 + 4096, "peak is not a sum: {m:?}");
    }

    #[test]
    fn nested_scopes_restore_the_parent_peak() {
        let outer = begin_scope();
        let big: Vec<u8> = vec![0; 50_000];
        drop(big);
        {
            let inner = begin_scope();
            let small: Vec<u8> = vec![0; 1_000];
            let m = inner.end();
            drop(small);
            assert!(m.peak_bytes >= 1_000);
            assert!(m.peak_bytes < 50_000, "inner scope never saw the big vec");
        }
        let m = outer.end();
        assert!(
            m.peak_bytes >= 50_000,
            "outer peak survives the inner scope: {m:?}"
        );
    }

    #[test]
    fn cross_thread_end_is_empty() {
        let token = begin_scope();
        let _junk: Vec<u8> = vec![0; 1_000];
        let m = std::thread::spawn(move || token.end()).join().unwrap();
        assert_eq!(m, ScopeMeasurement::default());
    }

    #[test]
    fn wait_accumulates_through_both_clocks() {
        use crate::obs::{Clock, MonotonicClock};
        let before = thread_stats().wait_ns;
        let fake = FakeClock::new();
        fake.sleep_ns(1_000);
        fake.sleep_ns(500);
        let wall = MonotonicClock::new();
        wall.sleep_ns(1);
        let waited = thread_stats().wait_ns - before;
        assert!(waited >= 1_501, "both clocks report waits: {waited}");
    }

    #[test]
    fn perf_report_decomposes_work_and_wait() {
        let clock = Arc::new(FakeClock::new());
        let telemetry = Telemetry::with_clock(clock.clone());
        {
            let _sweep = telemetry.span("sweep");
            clock.advance(100);
            {
                let _scan = telemetry.span("scan");
                clock.advance(300);
            }
            {
                let _retry = telemetry.span("retry");
                clock.sleep_ns(400); // backoff: pure wait
                clock.advance(200);
            }
        }
        let perf = PerfReport::from_telemetry("unit", &telemetry.report());
        assert_eq!(perf.wall_ns, 1_000);
        assert_eq!(perf.wait_ns, 400, "the backoff sleep is wait");
        assert_eq!(perf.work_ns, 600, "everything else is work");
        assert_eq!(perf.critical_path[0].name, "sweep");
        assert_eq!(perf.critical_path[1].name, "retry", "longest child");
        assert_eq!(perf.critical_path.len(), 2);
        let rendered = perf.render();
        assert!(rendered.contains("critical path: sweep 1.0µs -> retry 600ns"));
        assert!(rendered.contains("hotspots"));
    }

    #[test]
    fn perf_report_round_trips_and_writes() {
        let clock = Arc::new(FakeClock::new());
        let telemetry = Telemetry::with_clock(clock.clone());
        {
            let _a = telemetry.span("a");
            clock.advance(10);
        }
        let perf = PerfReport::from_telemetry("round trip!", &telemetry.report());
        let parsed =
            PerfReport::from_json(&JsonValue::parse(&perf.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, perf);

        let dir = std::env::temp_dir().join(format!("strider-prof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = perf.write_json_in(&dir).unwrap();
        assert!(path.ends_with("SCAN_PERF_round_trip.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"critical_path\""));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn empty_report_yields_empty_perf() {
        let perf = PerfReport::from_telemetry("empty", &TelemetryReport::default());
        assert_eq!(perf.wall_ns, 0);
        assert!(perf.hotspots.is_empty());
        assert!(perf.critical_path.is_empty());
    }
}
