//! Deterministic fault injection and the salvage vocabulary (replaces ad-hoc
//! corruption helpers scattered through tests).
//!
//! Two halves, used together by the robustness layer:
//!
//! * **Injection** — [`FaultPlan`] corrupts a byte image the way a live disk
//!   or a mid-flight crash dump gets corrupted (bit flips, torn 512-byte
//!   sector writes, zeroed 4 KiB pages, tail truncation), deterministically
//!   from a seed so every failure reproduces. [`TransientFaults`] models a
//!   device that fails N reads and then recovers, to exercise retry paths;
//!   [`Stall`] models a read that stays *pending* for N polls (or forever),
//!   to exercise deadline and cancellation paths.
//! * **Salvage** — the typed damage report the low-level parsers return in
//!   salvage mode: [`Salvaged<T>`] pairs a best-effort value with the
//!   [`Defect`]s encountered, instead of aborting on the first bad byte.
//!
//! Both halves are `std`-only; the randomness comes from [`crate::rng`].

use crate::rng::SplitMix64;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Disk sector size used for torn-write faults.
pub const SECTOR_BYTES: usize = 512;
/// Memory page size used for zeroed-page faults.
pub const PAGE_BYTES: usize = 4096;

// ---------------------------------------------------------------------
// FaultPlan — deterministic image corruption
// ---------------------------------------------------------------------

/// A deterministic corruption recipe for a byte image.
///
/// All randomness derives from the plan's seed, so the same plan applied to
/// the same bytes always yields the same corrupted image — a failing
/// property-test case reproduces from its seed alone.
///
/// # Examples
///
/// ```
/// use strider_support::fault::FaultPlan;
///
/// let image = vec![0xAAu8; 8192];
/// let plan = FaultPlan::new(7).bit_flips(3).zeroed_pages(1);
/// let a = plan.apply(&image);
/// let b = plan.apply(&image);
/// assert_eq!(a, b); // deterministic
/// assert_ne!(a, image); // but corrupted
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    bit_flips: u32,
    torn_sectors: u32,
    zeroed_pages: u32,
    truncate_fraction: f64,
    zero_ranges: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// An empty (no-op) plan seeded for later randomized faults.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            bit_flips: 0,
            torn_sectors: 0,
            zeroed_pages: 0,
            truncate_fraction: 0.0,
            zero_ranges: Vec::new(),
        }
    }

    /// Flips `n` random bits anywhere in the image.
    pub fn bit_flips(mut self, n: u32) -> Self {
        self.bit_flips = n;
        self
    }

    /// Overwrites `n` random 512-byte sectors with garbage (a torn write
    /// that landed stale or half-written data).
    pub fn torn_sectors(mut self, n: u32) -> Self {
        self.torn_sectors = n;
        self
    }

    /// Zeroes `n` random 4 KiB pages (an unflushed page lost to a crash).
    pub fn zeroed_pages(mut self, n: u32) -> Self {
        self.zeroed_pages = n;
        self
    }

    /// Truncates the image, keeping roughly `keep` of it (clamped to 0..=1).
    /// `keep = 1.0` disables truncation.
    pub fn truncate_to(mut self, keep: f64) -> Self {
        self.truncate_fraction = 1.0 - keep.clamp(0.0, 1.0);
        self
    }

    /// Zeroes an explicit `[offset, offset + len)` range — for targeted
    /// tests that must damage a known region (e.g. one hive bin) while
    /// leaving headers intact. Out-of-range portions are ignored.
    pub fn zero_range(mut self, offset: usize, len: usize) -> Self {
        self.zero_ranges.push((offset, len));
        self
    }

    /// A randomized mixed-fault plan for property tests: the seed picks
    /// which fault classes fire and how hard.
    pub fn random(seed: u64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut plan = FaultPlan::new(seed);
        plan.bit_flips = rng.next_below(9) as u32;
        if rng.chance(1, 2) {
            plan.torn_sectors = rng.next_below(3) as u32 + 1;
        }
        if rng.chance(2, 5) {
            plan.zeroed_pages = rng.next_below(2) as u32 + 1;
        }
        if rng.chance(2, 5) {
            plan.truncate_fraction = rng.next_f64() * 0.9;
        }
        plan
    }

    /// Whether applying this plan returns the input unchanged.
    pub fn is_noop(&self) -> bool {
        self.bit_flips == 0
            && self.torn_sectors == 0
            && self.zeroed_pages == 0
            && self.truncate_fraction == 0.0
            && self.zero_ranges.is_empty()
    }

    /// Applies the plan to `image`, returning the corrupted copy. Faults
    /// land at seed-derived offsets; an empty image passes through.
    pub fn apply(&self, image: &[u8]) -> Vec<u8> {
        let mut bytes = image.to_vec();
        if bytes.is_empty() {
            return bytes;
        }
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        for &(offset, len) in &self.zero_ranges {
            let end = offset.saturating_add(len).min(bytes.len());
            if offset < end {
                bytes[offset..end].fill(0);
            }
        }
        for _ in 0..self.zeroed_pages {
            let page = rng.next_below((bytes.len() / PAGE_BYTES + 1) as u64) as usize;
            let start = (page * PAGE_BYTES).min(bytes.len().saturating_sub(1));
            let end = (start + PAGE_BYTES).min(bytes.len());
            bytes[start..end].fill(0);
        }
        for _ in 0..self.torn_sectors {
            let sector = rng.next_below((bytes.len() / SECTOR_BYTES + 1) as u64) as usize;
            let start = (sector * SECTOR_BYTES).min(bytes.len().saturating_sub(1));
            let end = (start + SECTOR_BYTES).min(bytes.len());
            for b in &mut bytes[start..end] {
                *b = rng.next_u8();
            }
        }
        for _ in 0..self.bit_flips {
            let at = rng.next_below(bytes.len() as u64) as usize;
            let bit = rng.next_below(8) as u8;
            bytes[at] ^= 1 << bit;
        }
        if self.truncate_fraction > 0.0 {
            let keep = ((bytes.len() as f64) * (1.0 - self.truncate_fraction)) as usize;
            bytes.truncate(keep);
        }
        bytes
    }
}

// ---------------------------------------------------------------------
// TransientFaults — "fails N times, then recovers"
// ---------------------------------------------------------------------

/// A countdown of read failures: the first `n` calls to [`should_fail`]
/// report a fault, every later call succeeds — a device that comes back
/// after retries. Interior-mutable so read paths taking `&self` can consume
/// failures.
///
/// [`should_fail`]: TransientFaults::should_fail
///
/// # Examples
///
/// ```
/// use strider_support::fault::TransientFaults;
///
/// let faults = TransientFaults::failing(2);
/// assert!(faults.should_fail());
/// assert!(faults.should_fail());
/// assert!(!faults.should_fail()); // recovered
/// ```
#[derive(Debug, Default)]
pub struct TransientFaults {
    remaining: AtomicU32,
}

impl TransientFaults {
    /// A source that fails the next `n` reads.
    pub fn failing(n: u32) -> Self {
        Self {
            remaining: AtomicU32::new(n),
        }
    }

    /// Consumes one failure if any remain; `true` means "fail this read".
    pub fn should_fail(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Failures still pending.
    pub fn remaining(&self) -> u32 {
        self.remaining.load(Ordering::SeqCst)
    }
}

impl Clone for TransientFaults {
    fn clone(&self) -> Self {
        Self {
            remaining: AtomicU32::new(self.remaining()),
        }
    }
}

// Serialized as the bare remaining-failure count, so hosts embedding a
// fault countdown (e.g. the simulated kernel) stay JSON-roundtrippable.
impl crate::json::ToJson for TransientFaults {
    fn to_json(&self) -> crate::json::JsonValue {
        crate::json::JsonValue::UInt(self.remaining() as u64)
    }
}

impl crate::json::FromJson for TransientFaults {
    fn from_json(value: &crate::json::JsonValue) -> Result<Self, crate::json::JsonError> {
        let n = value.as_u64()?;
        let n = u32::try_from(n)
            .map_err(|_| crate::json::JsonError(format!("{n} out of range for fault count")))?;
        Ok(Self::failing(n))
    }
}

// ---------------------------------------------------------------------
// Stall — "pending until polled N times" (a liveness fault)
// ---------------------------------------------------------------------

/// A read that reports *pending* until it has been polled `n` times — the
/// liveness counterpart of [`TransientFaults`]' availability fault.
///
/// Ghostware can attack the scanner by delaying low-level reads instead of
/// corrupting them; a stall models that. [`Stall::forever`] never completes,
/// so only a caller with a deadline escapes it. Interior-mutable like
/// [`TransientFaults`] so `&self` read paths can consume polls.
///
/// # Examples
///
/// ```
/// use strider_support::fault::Stall;
///
/// let stall = Stall::after_polls(2);
/// assert!(stall.poll_pending());
/// assert!(stall.poll_pending());
/// assert!(!stall.poll_pending()); // the read finally completes
/// assert!(Stall::forever().poll_pending());
/// ```
#[derive(Debug, Default)]
pub struct Stall {
    remaining: AtomicU32,
}

impl Stall {
    /// A read that completes on the `n+1`-th poll.
    pub fn after_polls(n: u32) -> Self {
        Self {
            remaining: AtomicU32::new(n),
        }
    }

    /// A read that never completes (`u32::MAX` polls outlives any budget).
    pub fn forever() -> Self {
        Self::after_polls(u32::MAX)
    }

    /// Whether this stall never drains on its own.
    pub fn is_forever(&self) -> bool {
        self.remaining() == u32::MAX
    }

    /// Consumes one poll; `true` means "still pending, try again later".
    /// A forever-stall never drains its counter.
    pub fn poll_pending(&self) -> bool {
        if self.is_forever() {
            return true;
        }
        self.remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Pending polls left before the read completes.
    pub fn remaining(&self) -> u32 {
        self.remaining.load(Ordering::SeqCst)
    }
}

impl Clone for Stall {
    fn clone(&self) -> Self {
        Self {
            remaining: AtomicU32::new(self.remaining()),
        }
    }
}

// ---------------------------------------------------------------------
// CrashPlan — "the process dies mid-write" (a durability fault)
// ---------------------------------------------------------------------

/// Where a [`CrashPlan`] kills the writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after exactly `n` cumulative bytes have reached the file across
    /// all writes the plan observed — the write that crosses the threshold
    /// lands only its admitted prefix, leaving a torn tail on disk.
    AtWriteByte(u64),
    /// Die after the commit image is fully written but before the atomic
    /// rename publishes it — the visible file keeps its previous state.
    BeforeRename,
}

/// A one-shot, seeded process-death injection for durable writers.
///
/// The plan observes every byte a [`store::RecordStore`](crate::store)
/// write pushes toward disk and, at the configured [`CrashPoint`], stops
/// the write mid-byte-stream and returns the distinctive
/// [`CrashPlan::crash_error`] — the caller treats that as the process
/// dying and must recover by reopening the store. Interior-mutable like
/// [`TransientFaults`], and one-shot: after firing once, later writes
/// pass through untouched (the "restarted" process is healthy).
///
/// # Examples
///
/// ```
/// use strider_support::fault::CrashPlan;
///
/// let plan = CrashPlan::at_write_byte(10);
/// assert_eq!(plan.admit(8), None); // first 8 bytes land whole
/// assert_eq!(plan.admit(8), Some(2)); // crash: only 2 of these 8 land
/// assert!(plan.fired());
/// assert_eq!(plan.admit(8), None); // one-shot: later writes pass
/// ```
#[derive(Debug)]
pub struct CrashPlan {
    point: CrashPoint,
    written: AtomicU64,
    fired: AtomicBool,
}

const CRASH_MESSAGE: &str = "injected crash (CrashPlan)";

impl CrashPlan {
    /// A plan that kills the writer once `n` cumulative bytes have landed.
    pub fn at_write_byte(n: u64) -> Self {
        Self {
            point: CrashPoint::AtWriteByte(n),
            written: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        }
    }

    /// A plan that kills a commit after its temp file is complete but
    /// before the rename that would publish it.
    pub fn before_rename() -> Self {
        Self {
            point: CrashPoint::BeforeRename,
            written: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        }
    }

    /// A plan that never fires — used to *measure* how many bytes an
    /// uninterrupted run writes, so a crash matrix can enumerate every
    /// offset in `0..written()`.
    pub fn never() -> Self {
        Self::at_write_byte(u64::MAX)
    }

    /// The configured kill point.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// Whether the crash has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Total bytes offered to writes so far (admitted or not).
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    /// Accounts a write of `len` bytes. `None` lets the full write through;
    /// `Some(keep)` means the crash fires *inside this write*: exactly
    /// `keep` bytes may land, then the writer must fail with
    /// [`CrashPlan::crash_error`].
    pub fn admit(&self, len: u64) -> Option<u64> {
        let before = self.written.fetch_add(len, Ordering::SeqCst);
        let CrashPoint::AtWriteByte(at) = self.point else {
            return None;
        };
        if before + len > at && !self.fired.swap(true, Ordering::SeqCst) {
            Some(at.saturating_sub(before))
        } else {
            None
        }
    }

    /// Whether a commit should die *now*, between temp-write and rename.
    /// Consumes the plan's one shot when it returns `true`.
    pub fn take_rename_crash(&self) -> bool {
        self.point == CrashPoint::BeforeRename && !self.fired.swap(true, Ordering::SeqCst)
    }

    /// The error an injected crash surfaces as. Distinguishable from real
    /// I/O failures via [`CrashPlan::is_crash`].
    pub fn crash_error() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::Interrupted, CRASH_MESSAGE)
    }

    /// Whether `err` is an injected crash (as opposed to a real I/O error).
    pub fn is_crash(err: &std::io::Error) -> bool {
        err.kind() == std::io::ErrorKind::Interrupted && err.to_string().contains(CRASH_MESSAGE)
    }
}

// ---------------------------------------------------------------------
// Salvage vocabulary
// ---------------------------------------------------------------------

/// What kind of damage a salvage-mode parser stepped over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// The image ended before a structure it promised.
    Truncated,
    /// The format magic did not match.
    BadMagic,
    /// An unsupported format version.
    BadVersion,
    /// One record/cell/page was malformed and skipped.
    BadRecord,
    /// A link or offset chain looped back on itself.
    Cycle,
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefectKind::Truncated => "truncated",
            DefectKind::BadMagic => "bad magic",
            DefectKind::BadVersion => "bad version",
            DefectKind::BadRecord => "bad record",
            DefectKind::Cycle => "cycle",
        };
        f.write_str(s)
    }
}

/// One piece of damage a salvage parse survived: what, where, how much.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Defect {
    /// Damage classification.
    pub kind: DefectKind,
    /// Byte offset in the image where the damage was detected.
    pub offset: u64,
    /// Bytes of the image rendered unreadable by this defect (best effort).
    pub bytes_lost: u64,
    /// What the parser was reading when it hit the damage.
    pub context: &'static str,
}

impl Defect {
    /// A defect record at `offset` losing `bytes_lost` bytes.
    pub fn new(kind: DefectKind, offset: u64, bytes_lost: u64, context: &'static str) -> Self {
        Self {
            kind,
            offset,
            bytes_lost,
            context,
        }
    }
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at offset {} ({} bytes lost) while reading {}",
            self.kind, self.offset, self.bytes_lost, self.context
        )
    }
}

/// A best-effort parse result: everything recoverable, plus the damage map.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvaged<T> {
    /// The recovered value (possibly partial).
    pub value: T,
    /// Damage stepped over to produce it; empty means a clean parse.
    pub defects: Vec<Defect>,
}

impl<T> Salvaged<T> {
    /// Wraps a defect-free parse.
    pub fn clean(value: T) -> Self {
        Self {
            value,
            defects: Vec::new(),
        }
    }

    /// Whether the parse saw no damage at all.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let image: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let plan = FaultPlan::new(42)
            .bit_flips(5)
            .torn_sectors(2)
            .zeroed_pages(1)
            .truncate_to(0.8);
        let a = plan.apply(&image);
        let b = plan.apply(&image);
        assert_eq!(a, b);
        assert_ne!(a, image);
        assert!(a.len() < image.len(), "truncation must shorten the image");
    }

    #[test]
    fn noop_plan_is_identity() {
        let image = vec![7u8; 1000];
        let plan = FaultPlan::new(1);
        assert!(plan.is_noop());
        assert_eq!(plan.apply(&image), image);
    }

    #[test]
    fn zero_range_zeroes_exactly_and_clamps() {
        let image = vec![0xFFu8; 100];
        let out = FaultPlan::new(0).zero_range(10, 20).apply(&image);
        assert!(out[10..30].iter().all(|&b| b == 0));
        assert!(out[..10].iter().all(|&b| b == 0xFF));
        assert!(out[30..].iter().all(|&b| b == 0xFF));
        // Out-of-range tail is ignored, not panicked on.
        let out = FaultPlan::new(0).zero_range(90, 500).apply(&image);
        assert!(out[90..].iter().all(|&b| b == 0));
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn random_plans_vary_by_seed_but_reproduce() {
        let image = vec![0x55u8; 30_000];
        let a1 = FaultPlan::random(1).apply(&image);
        let a2 = FaultPlan::random(1).apply(&image);
        assert_eq!(a1, a2);
        let distinct = (0..16)
            .map(|s| FaultPlan::random(s).apply(&image))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 8, "seeds should produce varied corruption");
    }

    #[test]
    fn empty_and_tiny_images_never_panic() {
        let plan = FaultPlan::random(9)
            .bit_flips(10)
            .torn_sectors(3)
            .zeroed_pages(3)
            .truncate_to(0.1);
        assert_eq!(plan.apply(&[]), Vec::<u8>::new());
        for len in 1..40 {
            let image = vec![1u8; len];
            let _ = plan.apply(&image);
        }
    }

    #[test]
    fn transient_faults_count_down_then_recover() {
        let t = TransientFaults::failing(3);
        assert_eq!(t.remaining(), 3);
        assert!(t.should_fail());
        assert!(t.should_fail());
        assert!(t.should_fail());
        assert!(!t.should_fail());
        assert!(!t.should_fail());
        assert_eq!(t.remaining(), 0);
        let none = TransientFaults::default();
        assert!(!none.should_fail());
    }

    #[test]
    fn stalls_stay_pending_for_n_polls_then_complete() {
        let s = Stall::after_polls(2);
        assert!(s.poll_pending());
        assert!(s.poll_pending());
        assert!(!s.poll_pending());
        assert!(!s.poll_pending(), "a drained stall stays drained");
        assert!(!Stall::default().poll_pending());
    }

    #[test]
    fn forever_stall_never_drains() {
        let s = Stall::forever();
        for _ in 0..1000 {
            assert!(s.poll_pending());
        }
        assert!(s.is_forever());
        assert_eq!(s.remaining(), u32::MAX);
    }

    #[test]
    fn stall_clones_have_independent_counters() {
        let s = Stall::after_polls(1);
        let c = s.clone();
        assert!(c.poll_pending());
        assert!(!c.poll_pending());
        assert!(s.poll_pending(), "clones have independent counters");
    }

    #[test]
    fn defect_display_reads_naturally() {
        let d = Defect::new(DefectKind::BadRecord, 4096, 512, "mft entry");
        let s = d.to_string();
        assert!(s.contains("bad record"));
        assert!(s.contains("4096"));
        assert!(s.contains("mft entry"));
    }

    #[test]
    fn salvaged_clean_constructor() {
        let s = Salvaged::clean(5u32);
        assert!(s.is_clean());
        assert_eq!(s.value, 5);
    }

    #[test]
    fn crash_plan_fires_once_at_the_exact_byte() {
        let plan = CrashPlan::at_write_byte(100);
        assert_eq!(plan.admit(60), None);
        assert_eq!(plan.admit(60), Some(40), "crash splits the second write");
        assert!(plan.fired());
        assert_eq!(plan.admit(1000), None, "one-shot: the restart is healthy");
        assert_eq!(plan.written(), 1120);
    }

    #[test]
    fn crash_plan_at_byte_zero_admits_nothing() {
        let plan = CrashPlan::at_write_byte(0);
        assert_eq!(plan.admit(5), Some(0));
        assert!(plan.fired());
    }

    #[test]
    fn rename_crash_consumes_the_one_shot() {
        let plan = CrashPlan::before_rename();
        assert_eq!(plan.admit(512), None, "byte writes pass through");
        assert!(plan.take_rename_crash());
        assert!(!plan.take_rename_crash(), "second commit survives");
        let byte_plan = CrashPlan::at_write_byte(3);
        assert!(!byte_plan.take_rename_crash(), "wrong point never fires");
    }

    #[test]
    fn never_plan_only_measures() {
        let plan = CrashPlan::never();
        assert_eq!(plan.admit(1 << 30), None);
        assert_eq!(plan.written(), 1 << 30);
        assert!(!plan.fired());
    }

    #[test]
    fn crash_errors_are_recognizable() {
        let err = CrashPlan::crash_error();
        assert!(CrashPlan::is_crash(&err));
        let real = std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR");
        assert!(!CrashPlan::is_crash(&real));
        let other = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(!CrashPlan::is_crash(&other));
    }
}
