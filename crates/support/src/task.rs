//! Cooperative task supervision: cancellation tokens, deadlines and
//! circuit breakers.
//!
//! The sweep engine runs each detection pipeline as a supervised task. The
//! primitives here are deliberately *cooperative*: a task is never killed
//! from outside, it observes its own [`Supervision`] at well-chosen
//! check-points and unwinds cleanly. That keeps every truth-source handle
//! and telemetry span in a consistent state — a pre-empted thread could die
//! holding a lock on the very evidence the sweep is about to report.
//!
//! All timing goes through the [`Clock`] seam from [`crate::obs`], so a
//! `FakeClock` makes deadline expiry and breaker cool-down fully
//! deterministic in tests: a *permanently stalled* read completes (as a
//! timeout) in microseconds of real time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::obs::Clock;
use crate::sync::Mutex;

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

/// A hierarchical, cooperative cancellation flag.
///
/// Cloning shares the flag; [`CancellationToken::child`] derives a token
/// that observes its parent's cancellation but can also be cancelled on its
/// own without affecting siblings — the sweep holds the root, each pipeline
/// gets a child.
///
/// # Examples
///
/// ```
/// use strider_support::task::CancellationToken;
///
/// let root = CancellationToken::new();
/// let pipeline = root.child();
/// pipeline.cancel();
/// assert!(pipeline.is_cancelled());
/// assert!(!root.is_cancelled(), "a child cannot cancel its parent");
/// root.cancel();
/// assert!(root.child().is_cancelled(), "cancellation flows downward");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    inner: Arc<TokenInner>,
}

impl CancellationToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives a child token: cancelled when either it or any ancestor is.
    pub fn child(&self) -> Self {
        CancellationToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Requests cancellation of this token and every descendant.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }
}

// ---------------------------------------------------------------------
// Deadlines and budgets
// ---------------------------------------------------------------------

/// An absolute point on a [`Clock`] after which a task must stop.
#[derive(Clone)]
pub struct Deadline {
    clock: Arc<dyn Clock>,
    at_ns: u64,
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deadline")
            .field("at_ns", &self.at_ns)
            .field("remaining_ns", &self.remaining_ns())
            .finish()
    }
}

impl Deadline {
    /// A deadline `budget_ns` from the clock's current reading.
    pub fn after(clock: Arc<dyn Clock>, budget_ns: u64) -> Self {
        let at_ns = clock.now_ns().saturating_add(budget_ns);
        Deadline { clock, at_ns }
    }

    /// A deadline at an absolute clock reading.
    pub fn at(clock: Arc<dyn Clock>, at_ns: u64) -> Self {
        Deadline { clock, at_ns }
    }

    /// The absolute expiry instant in clock nanoseconds.
    pub fn at_ns(&self) -> u64 {
        self.at_ns
    }

    /// True once the clock has reached the deadline.
    pub fn expired(&self) -> bool {
        self.clock.now_ns() >= self.at_ns
    }

    /// Nanoseconds left before expiry; zero once expired.
    pub fn remaining_ns(&self) -> u64 {
        self.at_ns.saturating_sub(self.clock.now_ns())
    }
}

/// A relative time allowance that [`TimeBudget::start`]s into a [`Deadline`].
///
/// Budgets are plain data (clock-free), so policies can carry them and bind
/// the clock only when a sweep actually begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeBudget {
    ns: u64,
}

impl TimeBudget {
    /// A budget of `ns` nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        TimeBudget { ns }
    }

    /// A budget of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        TimeBudget {
            ns: ms.saturating_mul(1_000_000),
        }
    }

    /// The budget in nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.ns
    }

    /// Binds the budget to a clock, producing the absolute [`Deadline`].
    pub fn start(&self, clock: Arc<dyn Clock>) -> Deadline {
        Deadline::after(clock, self.ns)
    }
}

// ---------------------------------------------------------------------
// Supervision: what a task consults at its check-points
// ---------------------------------------------------------------------

/// Why a supervised task was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The task's [`CancellationToken`] (or an ancestor) was cancelled.
    Cancelled,
    /// The task's [`Deadline`] passed.
    DeadlineExceeded,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// The cancellation token and optional deadline a supervised task checks.
///
/// Long-running loops call [`Supervision::checkpoint`] once per unit of
/// work; the `Err(Interrupt)` propagates out like any other error, which is
/// exactly the point — cooperative cancellation reuses the existing error
/// paths instead of adding a second unwinding mechanism.
#[derive(Debug, Clone, Default)]
pub struct Supervision {
    token: CancellationToken,
    deadline: Option<Deadline>,
}

impl Supervision {
    /// Supervision that never interrupts (no deadline, nobody cancels).
    pub fn unsupervised() -> Self {
        Self::default()
    }

    /// Supervision from a token and an optional deadline.
    pub fn new(token: CancellationToken, deadline: Option<Deadline>) -> Self {
        Supervision { token, deadline }
    }

    /// The task's cancellation token.
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// The task's deadline, if one was set.
    pub fn deadline(&self) -> Option<&Deadline> {
        self.deadline.as_ref()
    }

    /// Derives a child scope: a child token, and the tighter of the parent
    /// deadline and `budget_ns` (when given) on `clock`.
    pub fn child(&self, clock: Arc<dyn Clock>, budget_ns: Option<u64>) -> Self {
        let deadline = match (
            budget_ns.map(|ns| Deadline::after(clock, ns)),
            &self.deadline,
        ) {
            (Some(own), Some(parent)) if parent.at_ns() < own.at_ns() => Some(parent.clone()),
            (Some(own), _) => Some(own),
            (None, parent) => parent.clone(),
        };
        Supervision {
            token: self.token.child(),
            deadline,
        }
    }

    /// Returns `Err` if the task should stop, `Ok(())` to keep working.
    ///
    /// Cancellation wins over deadline expiry when both hold: an operator's
    /// explicit stop is more informative than a timer that also ran out.
    pub fn checkpoint(&self) -> Result<(), Interrupt> {
        if self.token.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        if self.deadline.as_ref().is_some_and(Deadline::expired) {
            return Err(Interrupt::DeadlineExceeded);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// The observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests are rejected until the cool-down elapses.
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ns: u64,
}

/// A Closed→Open→HalfOpen circuit breaker with cool-down through [`Clock`].
///
/// After `failure_threshold` consecutive [`CircuitBreaker::record_failure`]
/// calls the breaker opens: [`CircuitBreaker::try_acquire`] refuses until
/// `cooldown_ns` has elapsed on the clock, then admits exactly one
/// half-open probe. A probe success closes the breaker, a probe failure
/// re-opens it for another full cool-down.
///
/// Clones share state (the breaker is one `Arc`'d state machine), so a
/// sweep engine can hand the same breaker to successive sweeps.
#[derive(Clone)]
pub struct CircuitBreaker {
    clock: Arc<dyn Clock>,
    failure_threshold: u32,
    cooldown_ns: u64,
    inner: Arc<Mutex<BreakerInner>>,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("failure_threshold", &self.failure_threshold)
            .field("cooldown_ns", &self.cooldown_ns)
            .field("state", &self.state())
            .finish()
    }
}

impl CircuitBreaker {
    /// A closed breaker that opens after `failure_threshold` consecutive
    /// failures and cools down for `cooldown_ns` on `clock`.
    ///
    /// A threshold of 0 is treated as 1 — a breaker that can never admit a
    /// request would be a misconfiguration, not a policy.
    pub fn new(clock: Arc<dyn Clock>, failure_threshold: u32, cooldown_ns: u64) -> Self {
        CircuitBreaker {
            clock,
            failure_threshold: failure_threshold.max(1),
            cooldown_ns,
            inner: Arc::new(Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ns: 0,
            })),
        }
    }

    /// The breaker's current state (advancing Open→HalfOpen if the
    /// cool-down has elapsed).
    pub fn state(&self) -> BreakerState {
        let mut inner = self.inner.lock();
        self.advance(&mut inner);
        inner.state
    }

    /// True if a request may proceed. In `HalfOpen` this admits the probe.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        self.advance(&mut inner);
        !matches!(inner.state, BreakerState::Open)
    }

    /// Reports a successful request: closes the breaker, resets the count.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
    }

    /// Reports a failed request; returns the state the breaker is now in,
    /// so callers can emit an event exactly when a failure *trips* it.
    pub fn record_failure(&self) -> BreakerState {
        let mut inner = self.inner.lock();
        self.advance(&mut inner);
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let should_open = match inner.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            _ => inner.consecutive_failures >= self.failure_threshold,
        };
        if should_open {
            inner.state = BreakerState::Open;
            inner.opened_at_ns = self.clock.now_ns();
        }
        inner.state
    }

    fn advance(&self, inner: &mut BreakerInner) {
        if matches!(inner.state, BreakerState::Open)
            && self.clock.now_ns() >= inner.opened_at_ns.saturating_add(self.cooldown_ns)
        {
            inner.state = BreakerState::HalfOpen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::FakeClock;

    fn fake() -> Arc<FakeClock> {
        Arc::new(FakeClock::new())
    }

    #[test]
    fn root_token_cancels_children_but_not_vice_versa() {
        let root = CancellationToken::new();
        let a = root.child();
        let b = root.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled(), "siblings are independent");
        assert!(!root.is_cancelled());
        root.cancel();
        assert!(b.is_cancelled());
        assert!(b.child().is_cancelled(), "grandchildren inherit");
    }

    #[test]
    fn clones_share_the_cancellation_flag() {
        let token = CancellationToken::new();
        let peer = token.clone();
        peer.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_expires_exactly_at_the_budget_on_a_fake_clock() {
        let clock = fake();
        let deadline = Deadline::after(clock.clone(), 1_000);
        assert!(!deadline.expired());
        assert_eq!(deadline.remaining_ns(), 1_000);
        clock.advance(999);
        assert!(!deadline.expired());
        clock.advance(1);
        assert!(deadline.expired());
        assert_eq!(deadline.remaining_ns(), 0);
    }

    #[test]
    fn time_budget_binds_to_a_clock_when_started() {
        let clock = fake();
        clock.advance(500);
        let deadline = TimeBudget::from_millis(2).start(clock.clone());
        assert_eq!(deadline.at_ns(), 500 + 2_000_000);
        assert_eq!(TimeBudget::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn checkpoint_reports_cancellation_before_deadline() {
        let clock = fake();
        let token = CancellationToken::new();
        let sup = Supervision::new(token.clone(), Some(Deadline::after(clock.clone(), 100)));
        assert_eq!(sup.checkpoint(), Ok(()));
        clock.advance(200);
        assert_eq!(sup.checkpoint(), Err(Interrupt::DeadlineExceeded));
        token.cancel();
        assert_eq!(
            sup.checkpoint(),
            Err(Interrupt::Cancelled),
            "cancellation outranks an expired deadline"
        );
    }

    #[test]
    fn unsupervised_never_interrupts() {
        let sup = Supervision::unsupervised();
        assert_eq!(sup.checkpoint(), Ok(()));
    }

    #[test]
    fn child_scope_takes_the_tighter_deadline() {
        let clock = fake();
        let parent = Supervision::new(
            CancellationToken::new(),
            Some(Deadline::after(clock.clone(), 1_000)),
        );
        let loose = parent.child(clock.clone(), Some(5_000));
        assert_eq!(
            loose.deadline().unwrap().at_ns(),
            1_000,
            "parent deadline caps the child"
        );
        let tight = parent.child(clock.clone(), Some(10));
        assert_eq!(tight.deadline().unwrap().at_ns(), 10);
        let inherited = parent.child(clock.clone(), None);
        assert_eq!(inherited.deadline().unwrap().at_ns(), 1_000);
    }

    #[test]
    fn breaker_opens_at_threshold_and_cools_down_to_half_open() {
        let clock = fake();
        let breaker = CircuitBreaker::new(clock.clone(), 3, 1_000);
        assert!(breaker.try_acquire());
        assert_eq!(breaker.record_failure(), BreakerState::Closed);
        assert_eq!(breaker.record_failure(), BreakerState::Closed);
        assert_eq!(breaker.record_failure(), BreakerState::Open);
        assert!(!breaker.try_acquire(), "open rejects requests");
        clock.advance(999);
        assert!(!breaker.try_acquire(), "still cooling down");
        clock.advance(1);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.try_acquire(), "half-open admits a probe");
    }

    #[test]
    fn half_open_probe_outcome_decides_the_next_state() {
        let clock = fake();
        let breaker = CircuitBreaker::new(clock.clone(), 1, 100);
        breaker.record_failure();
        clock.advance(100);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // A failed probe re-opens for a fresh cool-down.
        assert_eq!(breaker.record_failure(), BreakerState::Open);
        clock.advance(100);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.try_acquire());
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let clock = fake();
        let breaker = CircuitBreaker::new(clock, 2, 100);
        breaker.record_failure();
        breaker.record_success();
        assert_eq!(
            breaker.record_failure(),
            BreakerState::Closed,
            "the count restarted after the success"
        );
    }

    #[test]
    fn clones_share_breaker_state() {
        let clock = fake();
        let breaker = CircuitBreaker::new(clock, 1, 100);
        let peer = breaker.clone();
        peer.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
    }
}
