//! `Mutex`/`RwLock` wrappers replacing `parking_lot`.
//!
//! `strider-kernel` declared `parking_lot` for its non-poisoning lock API.
//! These wrappers provide the same call shape over `std::sync`: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s, and
//! a poisoned lock (a panic while held) is transparently recovered rather
//! than propagated — a simulated kernel that has already panicked is being
//! torn down, and the detector's shared state is all plain data.

/// A mutual-exclusion lock with `parking_lot`-style non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`-style `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Runs `f` on a freshly spawned, named thread and joins it, converting a
/// panic into an `Err` with the panic message.
///
/// This is the isolation boundary the supervised sweep engine runs each
/// pipeline behind: a panicking parser tears down one task's thread, not
/// the sweep. The closure's return value travels back on success; on panic
/// the payload is rendered (`&str`/`String` payloads verbatim, anything
/// else as a placeholder) so the caller can file it as a degradation cause.
///
/// # Examples
///
/// ```
/// use strider_support::sync::run_isolated;
///
/// assert_eq!(run_isolated("ok", || 7), Ok(7));
/// let err = run_isolated("boom", || -> u32 { panic!("bad sector") });
/// assert_eq!(err.unwrap_err(), "bad sector");
/// ```
pub fn run_isolated<T, F>(name: &str, f: F) -> Result<T, String>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    // A scoped thread (not `Builder::spawn`) so the closure may borrow from
    // the caller's stack — pipelines borrow the machine and their scanners.
    std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn_scoped(scope, f)
            .map_err(|e| format!("failed to spawn task thread: {e}"))?;
        handle.join().map_err(|payload| {
            if let Some(msg) = payload.downcast_ref::<&str>() {
                (*msg).to_string()
            } else if let Some(msg) = payload.downcast_ref::<String>() {
                msg.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_serializes_concurrent_increments() {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let reader = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || lock.read().len())
        };
        assert_eq!(lock.read().len(), 3);
        assert_eq!(reader.join().unwrap(), 3);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn run_isolated_returns_the_value_or_the_panic_message() {
        assert_eq!(run_isolated("adds", || 1 + 1), Ok(2));
        let owned = run_isolated("owned", || -> () { panic!("code {}", 42) });
        assert_eq!(owned.unwrap_err(), "code 42");
    }

    #[test]
    fn run_isolated_closures_may_borrow_from_the_caller() {
        let data = [1u32, 2, 3];
        let sum = run_isolated("borrows", || data.iter().sum::<u32>());
        assert_eq!(sum, Ok(6));
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let lock = Arc::new(Mutex::new(7u32));
        let poisoner = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _guard = lock.lock();
                panic!("poison the lock");
            })
        };
        assert!(poisoner.join().is_err());
        // A parking_lot-style lock keeps working after a holder panicked.
        assert_eq!(*lock.lock(), 7);
    }
}
