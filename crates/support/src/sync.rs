//! `Mutex`/`RwLock` wrappers replacing `parking_lot`, plus the bounded
//! channel and isolation helpers the fleet fan-out rides on.
//!
//! `strider-kernel` declared `parking_lot` for its non-poisoning lock API.
//! These wrappers provide the same call shape over `std::sync`: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s, and
//! a poisoned lock (a panic while held) is transparently recovered rather
//! than propagated — a simulated kernel that has already panicked is being
//! torn down, and the detector's shared state is all plain data.
//!
//! [`bounded`] is the crossbeam-channel-shaped seam the fleet scheduler
//! uses for batched result ingest: many worker threads send, one ingest
//! thread drains, and the bound applies backpressure so a slow ingester
//! throttles the workers instead of buffering the whole fleet's results.

/// A mutual-exclusion lock with `parking_lot`-style non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`-style `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of a [`bounded`] channel. Clone one per producer
/// thread; the channel closes when every sender has been dropped.
#[derive(Debug, Clone)]
pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is at capacity.
    ///
    /// # Errors
    ///
    /// Returns the value back when the receiver has been dropped — the
    /// producer's cue to stop working, not a panic.
    pub fn send(&self, value: T) -> Result<(), T> {
        self.0.send(value).map_err(|e| e.0)
    }
}

/// The receiving half of a [`bounded`] channel.
#[derive(Debug)]
pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks for the next value; `None` once every sender has dropped
    /// and the buffer is drained — the loop-is-over signal.
    pub fn recv(&self) -> Option<T> {
        self.0.recv().ok()
    }

    /// Returns a value only if one is already buffered.
    pub fn try_recv(&self) -> Option<T> {
        self.0.try_recv().ok()
    }

    /// Drains the channel until it closes, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(|| self.recv())
    }
}

/// A bounded multi-producer single-consumer channel (the
/// `crossbeam_channel::bounded` call shape over `std::sync::mpsc`).
///
/// A `capacity` of 0 is a rendezvous channel: every send blocks until the
/// receiver takes the value, which makes producer/consumer interleaving
/// fully synchronous — useful in deterministic tests.
///
/// # Examples
///
/// ```
/// use strider_support::sync::bounded;
///
/// let (tx, rx) = bounded(4);
/// std::thread::scope(|scope| {
///     for worker in 0..3 {
///         let tx = tx.clone();
///         scope.spawn(move || tx.send(worker).unwrap());
///     }
///     drop(tx); // close our handle so the drain below terminates
///     assert_eq!(rx.iter().count(), 3);
/// });
/// ```
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    (Sender(tx), Receiver(rx))
}

/// Runs `f` on a freshly spawned, named thread and joins it, converting a
/// panic into an `Err` with the panic message.
///
/// This is the isolation boundary the supervised sweep engine runs each
/// pipeline behind: a panicking parser tears down one task's thread, not
/// the sweep. The closure's return value travels back on success; on panic
/// the payload is rendered (`&str`/`String` payloads verbatim, anything
/// else as a placeholder) so the caller can file it as a degradation cause.
///
/// # Examples
///
/// ```
/// use strider_support::sync::run_isolated;
///
/// assert_eq!(run_isolated("ok", || 7), Ok(7));
/// let err = run_isolated("boom", || -> u32 { panic!("bad sector") });
/// assert_eq!(err.unwrap_err(), "bad sector");
/// ```
pub fn run_isolated<T, F>(name: &str, f: F) -> Result<T, String>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    // A scoped thread (not `Builder::spawn`) so the closure may borrow from
    // the caller's stack — pipelines borrow the machine and their scanners.
    std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn_scoped(scope, f)
            .map_err(|e| format!("failed to spawn task thread: {e}"))?;
        handle.join().map_err(|payload| {
            if let Some(msg) = payload.downcast_ref::<&str>() {
                (*msg).to_string()
            } else if let Some(msg) = payload.downcast_ref::<String>() {
                msg.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_serializes_concurrent_increments() {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let reader = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || lock.read().len())
        };
        assert_eq!(lock.read().len(), 3);
        assert_eq!(reader.join().unwrap(), 3);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn run_isolated_returns_the_value_or_the_panic_message() {
        assert_eq!(run_isolated("adds", || 1 + 1), Ok(2));
        let owned = run_isolated("owned", || -> () { panic!("code {}", 42) });
        assert_eq!(owned.unwrap_err(), "code 42");
    }

    #[test]
    fn run_isolated_closures_may_borrow_from_the_caller() {
        let data = [1u32, 2, 3];
        let sum = run_isolated("borrows", || data.iter().sum::<u32>());
        assert_eq!(sum, Ok(6));
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn bounded_channel_applies_backpressure_and_closes_on_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        // Capacity 1: the second send must wait for the drain below.
        let producer = std::thread::spawn(move || {
            tx.send(2).unwrap();
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        producer.join().unwrap();
        assert_eq!(rx.recv(), None, "all senders dropped");
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn bounded_channel_send_fails_once_the_receiver_is_gone() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let lock = Arc::new(Mutex::new(7u32));
        let poisoner = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _guard = lock.lock();
                panic!("poison the lock");
            })
        };
        assert!(poisoner.join().is_err());
        // A parking_lot-style lock keeps working after a holder panicked.
        assert_eq!(*lock.lock(), 7);
    }
}
