//! `Mutex`/`RwLock` wrappers replacing `parking_lot`.
//!
//! `strider-kernel` declared `parking_lot` for its non-poisoning lock API.
//! These wrappers provide the same call shape over `std::sync`: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s, and
//! a poisoned lock (a panic while held) is transparently recovered rather
//! than propagated — a simulated kernel that has already panicked is being
//! torn down, and the detector's shared state is all plain data.

/// A mutual-exclusion lock with `parking_lot`-style non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`-style `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_serializes_concurrent_increments() {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let reader = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || lock.read().len())
        };
        assert_eq!(lock.read().len(), 3);
        assert_eq!(reader.join().unwrap(), 3);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let lock = Arc::new(Mutex::new(7u32));
        let poisoner = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _guard = lock.lock();
                panic!("poison the lock");
            })
        };
        assert!(poisoner.join().is_err());
        // A parking_lot-style lock keeps working after a holder panicked.
        assert_eq!(*lock.lock(), 7);
    }
}
