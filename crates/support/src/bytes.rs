//! Byte-buffer subset replacing the `bytes` crate.
//!
//! The binary formats in this workspace — the NTFS volume image
//! (`strider-ntfs::image`), the Registry hive format (`strider-hive::format`)
//! and the kernel crash dump (`strider-kernel::dump`) — used `bytes::{Buf,
//! BufMut, Bytes, BytesMut}` purely as a little-endian cursor API. This
//! module provides exactly that subset:
//!
//! * [`BufMut`] + [`BytesMut`] — an appendable buffer with `put_u8` /
//!   `put_u16_le` / `put_u32_le` / `put_u64_le` / `put_slice`,
//! * [`Buf`] — a consuming reader with `get_*_le`, `remaining`, `advance`,
//!   `copy_to_slice` and `copy_to_bytes`, implemented for both the owned
//!   [`Bytes`] cursor and plain `&[u8]` slices (the `bytes` crate does the
//!   same, and the hive parser reads through `&mut &[u8]`),
//! * [`Bytes`] — an owned, cheaply cloneable view created with
//!   [`Bytes::copy_from_slice`].
//!
//! Out-of-range reads panic, matching the upstream crate's contract; all
//! parsers in the workspace check [`Buf::remaining`] before reading.

use std::sync::Arc;

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `count` bytes. Panics if fewer remain.
    fn advance(&mut self, count: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Detaches the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, value: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An owned, reference-counted byte view with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// Copies `src` into a new owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            start: 0,
        }
    }

    /// The unread portion as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread portion as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn take(&mut self, count: usize) -> &[u8] {
        assert!(
            count <= self.len(),
            "buffer underflow: need {count}, have {}",
            self.len()
        );
        let start = self.start;
        self.start += count;
        &self.data[start..start + count]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        self.take(count);
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take(dst.len()));
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes::copy_from_slice(self.take(len))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "slice underflow");
        *self = &self[count..];
    }

    fn get_u8(&mut self) -> u8 {
        let value = self[0];
        *self = &self[1..];
        value
    }

    fn get_u16_le(&mut self) -> u16 {
        let value = u16::from_le_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        value
    }

    fn get_u32_le(&mut self) -> u32 {
        let value = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        value
    }

    fn get_u64_le(&mut self) -> u64 {
        let value = u64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        value
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let detached = Bytes::copy_from_slice(&self[..len]);
        *self = &self[len..];
        detached
    }
}

/// An appendable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Ensures space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data),
            start: 0,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_u16_le(&mut self, value: u16) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u32_le(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_u16_le(&mut self, value: u16) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u32_le(&mut self, value: u32) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(0x0102030405060708);
        buf.put_slice(b"tail");

        let mut cursor = Bytes::copy_from_slice(&buf);
        assert_eq!(cursor.remaining(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cursor.get_u64_le(), 0x0102030405060708);
        let tail = cursor.copy_to_bytes(4);
        assert_eq!(tail.as_slice(), b"tail");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances_through_reads() {
        let data = [1u8, 0, 2, 0, 0, 0, 9];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u16_le(), 1);
        assert_eq!(s.get_u32_le(), 2);
        assert_eq!(s.remaining(), 1);
        let mut one = [0u8; 1];
        s.copy_to_slice(&mut one);
        assert_eq!(one[0], 9);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn advance_skips_bytes() {
        let mut cursor = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        cursor.advance(3);
        assert_eq!(cursor.get_u8(), 4);
        assert_eq!(cursor.to_vec(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn overrun_panics() {
        let mut cursor = Bytes::copy_from_slice(&[1]);
        cursor.get_u32_le();
    }

    #[test]
    fn freeze_shares_without_copy() {
        let mut buf = BytesMut::default();
        buf.put_slice(b"shared");
        let frozen = buf.freeze();
        let cloned = frozen.clone();
        assert_eq!(frozen, cloned);
        assert_eq!(cloned.as_slice(), b"shared");
    }
}
