//! # strider-support — the hermetic, zero-dependency support layer
//!
//! Every other crate in this workspace depends only on `std` and on this
//! crate, so `cargo build --release --offline` succeeds with no registry
//! access at all. Each module here is a deliberately small, documented
//! subset of a well-known crates-io dependency that the seed workspace
//! used to pull in:
//!
//! | module    | replaces      | subset provided                                        |
//! |-----------|---------------|--------------------------------------------------------|
//! | [`json`]  | `serde` + `serde_json` | [`json::ToJson`]/[`json::FromJson`] traits, a [`json::JsonValue`] tree, a strict parser/writer, and the [`impl_json!`](crate::impl_json) derive-replacement macro |
//! | [`bytes`] | `bytes`       | [`bytes::Buf`]/[`bytes::BufMut`] traits plus [`bytes::Bytes`]/[`bytes::BytesMut`] with the little-endian accessors the binary formats use |
//! | [`sync`]  | `parking_lot` + `crossbeam-channel` | [`sync::Mutex`]/[`sync::RwLock`] wrappers over `std::sync` with non-poisoning `lock()`/`read()`/`write()`, plus a bounded MPSC channel ([`sync::bounded`], [`sync::Sender`]/[`sync::Receiver`]) and the [`sync::run_isolated`] panic-isolating task runner |
//! | [`rng`]   | `rand`        | [`rng::SplitMix64`], a tiny seeded PRNG with `gen_range`-style helpers; deterministic across platforms |
//! | [`check`] | `proptest`    | a shrinking property-test harness: [`check::check`], the [`check::Shrink`] trait, and the [`prop_assert!`](crate::prop_assert)/[`prop_assert_eq!`](crate::prop_assert_eq) macros |
//! | [`mod@bench`] | `criterion`   | a mini benchmark harness with the `Criterion`/`benchmark_group`/`Bencher` API shape that writes `BENCH_<group>.json` files at the workspace root |
//! | [`fault`] | (in-house)    | deterministic fault injection ([`fault::FaultPlan`], [`fault::TransientFaults`]) and the salvage-parse vocabulary ([`fault::Salvaged`], [`fault::Defect`]) used by the robustness layer |
//! | [`obs`]   | `tracing` + `metrics` + `hdrhistogram` | a global-free [`obs::Telemetry`] registry: hierarchical spans (with stable per-thread ids) behind a [`obs::Clock`] seam, counters/gauges, bounded mergeable [`obs::HistogramSketch`] histograms, an always-on [`obs::FlightRecorder`] ring, and exporters writing `SCAN_TELEMETRY_<label>.json` reports and `SCAN_TRACE_<label>.json` Chrome traces |
//! | [`task`]  | `tokio-util` + failsafe | cooperative supervision: a hierarchical [`task::CancellationToken`], [`task::Deadline`]/[`task::TimeBudget`] over the [`obs::Clock`] seam, and a Closed→Open→HalfOpen [`task::CircuitBreaker`] |
//! | [`alert`] | `prometheus` + alertmanager rules | timestamped [`alert::TimeSeries`] with windowed queries, a declarative [`alert::AlertEngine`] (threshold/baseline/rate/absence/quantile [`alert::AlertRule`]s with `for_ns` hysteresis, bounded [`alert::AlertLog`]), and Prometheus-text [`alert::Exposition`] writing `TELEMETRY_EXPO_<label>.prom` snapshots |
//! | [`prof`]  | `dhat`/`tracing-flame` (attribution core) | a counting `#[global_allocator]` ([`prof::CountingAlloc`]) with thread-local alloc/bytes/peak/wait counters, span-scoped attribution ([`prof::begin_scope`]), and the [`prof::PerfReport`] critical-path analyzer writing `SCAN_PERF_<label>.json` |
//! | [`store`] | `sled`/`redb` (durability core) | the durable state plane: a checksummed generational [`store::RecordStore`] with atomic temp+rename commits, O(1) WAL appends, torn-tail recovery with generation fallback ([`store::Recovered`]), crash injection via [`fault::CrashPlan`], and the [`store::atomic_write_file`] commit primitive all exporters use |
//!
//! The guiding rule is *API-shape compatibility where it is cheap, clarity
//! where it is not*: call sites in the workspace read almost identically to
//! the crates-io versions, but nothing here aims to be a general-purpose
//! reimplementation. The subsets are exactly what the GhostBuster
//! reproduction exercises, plus unit tests pinning their behaviour.
//!
//! A detector you cannot build offline is a detector you cannot trust —
//! the workspace-level `tests/hermetic.rs` guard walks every `Cargo.toml`
//! and fails if a registry dependency is ever reintroduced.
//!
//! # Examples
//!
//! The pieces compose: a fake clock drives telemetry, sketches merge, and
//! values round-trip through the JSON machinery.
//!
//! ```
//! use std::sync::Arc;
//! use strider_support::json::{FromJson, JsonValue, ToJson};
//! use strider_support::obs::{FakeClock, HistogramSketch, Telemetry};
//!
//! // Exact span timing on a fake clock: no sleeps, no flakes.
//! let clock = Arc::new(FakeClock::new());
//! let telemetry = Telemetry::with_clock(clock.clone());
//! {
//!     let _span = telemetry.span("scan");
//!     clock.advance(1_500);
//! }
//! let report = telemetry.report();
//! assert_eq!(report.phase_totals()["scan"].total_ns, 1_500);
//!
//! // Bounded, mergeable histograms: merge is bucket-wise addition, so the
//! // result is independent of who recorded what where.
//! let mut a = HistogramSketch::new();
//! let mut b = HistogramSketch::new();
//! a.record(100.0);
//! b.record(10_000.0);
//! a.merge(&b);
//! assert_eq!(a.count(), 2);
//!
//! // Everything observable serializes through the in-house JSON tree.
//! let json = report.to_json().render();
//! let parsed = JsonValue::parse(&json).unwrap();
//! assert!(strider_support::obs::TelemetryReport::from_json(&parsed).is_ok());
//! ```

pub mod alert;
pub mod bench;
pub mod bytes;
pub mod check;
pub mod fault;
pub mod json;
pub mod obs;
pub mod prof;
pub mod rng;
pub mod store;
pub mod sync;
pub mod task;
