//! Minimal JSON serialization layer replacing the `serde` derives.
//!
//! The seed workspace derived `serde::{Serialize, Deserialize}` on every
//! model type but never linked a serializer (`serde_json` was not a
//! dependency), so the derives were pure registry weight. This module
//! provides the functionality those derives promised:
//!
//! * [`JsonValue`] — an owned JSON document tree with distinct unsigned /
//!   signed / float number variants so `u64` fields (base addresses, record
//!   numbers) round-trip without precision loss,
//! * [`ToJson`] / [`FromJson`] — the serialize/deserialize trait pair,
//!   implemented for the primitives, `String`, `Vec<T>`, `Option<T>`,
//!   `BTreeMap<K, V>` and tuples,
//! * a strict, non-recursive-descent-bomb parser ([`JsonValue::parse`],
//!   depth-capped) and a writer ([`JsonValue::render`] /
//!   [`JsonValue::render_pretty`]),
//! * the [`impl_json!`](crate::impl_json) macro — the `#[derive]` replacement invoked next to
//!   each model type in `nt-core`, `ntfs`, `hive`, `kernel`, `winapi`, and
//!   `core`.
//!
//! Encoding conventions (fixed, matching what `serde_json` would have done
//! with the default derive attributes):
//!
//! * named-field struct → object with one member per field,
//! * newtype struct → the inner value, transparently,
//! * unit enum variant → the variant name as a string,
//! * data-carrying enum variant → `{"VariantName": <inner>}`,
//! * `Option::None` → `null`, `Some(x)` → `x`.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts before bailing out.
const MAX_DEPTH: usize = 128;

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (canonical for all unsigned model fields).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl JsonValue {
    /// Looks up a member of an object by key.
    pub fn field(&self, name: &str) -> Result<&JsonValue, JsonError> {
        match self {
            JsonValue::Obj(members) => members
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError(format!("missing field `{name}`"))),
            other => err(format!(
                "expected object with `{name}`, got {}",
                other.kind()
            )),
        }
    }

    /// Looks up a member of an object, returning `None` when the value is
    /// absent or `null` (used for `Option` fields and enum-variant probing).
    pub fn opt_field(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .filter(|v| !matches!(v, JsonValue::Null)),
            _ => None,
        }
    }

    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::UInt(_) | JsonValue::Int(_) => "integer",
            JsonValue::Float(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    /// The value as a `u64`, accepting any non-negative integer form.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            JsonValue::UInt(n) => Ok(*n),
            JsonValue::Int(n) if *n >= 0 => Ok(*n as u64),
            other => err(format!("expected unsigned integer, got {}", other.kind())),
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            JsonValue::Int(n) => Ok(*n),
            JsonValue::UInt(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
            other => err(format!("expected integer, got {}", other.kind())),
        }
    }

    /// The value as an `f64`; integers widen losslessly where possible.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Float(x) => Ok(*x),
            JsonValue::UInt(n) => Ok(*n as f64),
            JsonValue::Int(n) => Ok(*n as f64),
            other => err(format!("expected number, got {}", other.kind())),
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {}", other.kind())),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => err(format!("expected string, got {}", other.kind())),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Arr(items) => Ok(items),
            other => err(format!("expected array, got {}", other.kind())),
        }
    }

    /// The value as object members.
    pub fn as_obj(&self) -> Result<&[(String, JsonValue)], JsonError> {
        match self {
            JsonValue::Obj(members) => Ok(members),
            other => err(format!("expected object, got {}", other.kind())),
        }
    }

    // -----------------------------------------------------------------
    // Writer
    // -----------------------------------------------------------------

    /// Renders the document compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document with `indent`-space indentation.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * level),
                " ".repeat(width * (level + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => out.push_str(&n.to_string()),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // Keep a trailing `.0` so the value re-parses as a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    // -----------------------------------------------------------------
    // Parser
    // -----------------------------------------------------------------

    /// Parses a JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return err("document nests too deeply");
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(members));
                        }
                        _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => err(format!("unexpected byte `{}` at {}", b as char, self.pos)),
            None => err("unexpected end of document"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() != Some(b'\\') {
                                    return err("unpaired surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return err("unpaired surrogate");
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return err("invalid low surrogate");
                                }
                                let combined = 0x10000
                                    + (((unit - 0xD800) as u32) << 10)
                                    + (low - 0xDC00) as u32;
                                char::from_u32(combined)
                                    .ok_or(JsonError("invalid surrogate pair".into()))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return err("unpaired low surrogate");
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or(JsonError("invalid \\u escape".into()))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => return err("control character in string"),
                None => return err("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        // Called with `pos` on the `u`; consumes it plus four hex digits.
        self.pos += 1;
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(JsonError("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(digits).map_err(|_| JsonError("invalid \\u escape".into()))?;
        let unit =
            u16::from_str_radix(s, 16).map_err(|_| JsonError("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------
// ToJson / FromJson
// ---------------------------------------------------------------------

/// Serialize into a [`JsonValue`]. The replacement for `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> JsonValue;
}

/// Deserialize from a [`JsonValue`]. The replacement for
/// `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON representation.
    fn from_json(value: &JsonValue) -> Result<Self, JsonError>;
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> JsonValue {
                    JsonValue::UInt(*self as u64)
                }
            }
            impl FromJson for $ty {
                fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
                    let wide = value.as_u64()?;
                    <$ty>::try_from(wide)
                        .map_err(|_| JsonError(format!("{wide} out of range for {}", stringify!($ty))))
                }
            }
        )+
    };
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> JsonValue {
                    let wide = *self as i64;
                    if wide >= 0 {
                        JsonValue::UInt(wide as u64)
                    } else {
                        JsonValue::Int(wide)
                    }
                }
            }
            impl FromJson for $ty {
                fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
                    let wide = value.as_i64()?;
                    <$ty>::try_from(wide)
                        .map_err(|_| JsonError(format!("{wide} out of range for {}", stringify!($ty))))
                }
            }
        )+
    };
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for std::collections::VecDeque<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for std::collections::VecDeque<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            None => JsonValue::Null,
            Some(inner) => inner.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        match value {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        T::from_json(value).map(Box::new)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        match value.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            items => err(format!("expected 2-element array, got {}", items.len())),
        }
    }
}

/// Types usable as JSON object keys (maps encode as objects).
pub trait JsonKey: Sized + Ord {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, JsonError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_json_key_num {
    ($($ty:ty),+) => {
        $(
            impl JsonKey for $ty {
                fn to_key(&self) -> String {
                    self.to_string()
                }
                fn from_key(key: &str) -> Result<Self, JsonError> {
                    key.parse()
                        .map_err(|_| JsonError(format!("invalid {} key `{key}`", stringify!($ty))))
                }
            }
        )+
    };
}

impl_json_key_num!(u16, u32, u64, usize, i32, i64);

impl<K: JsonKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonKey, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value
            .as_obj()?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
            .collect()
    }
}

/// The `#[derive(Serialize, Deserialize)]` replacement.
///
/// Invoke next to the type definition (inside its module, so private fields
/// are reachable):
///
/// ```
/// use strider_support::impl_json;
/// use strider_support::json::{FromJson, JsonValue, ToJson};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_json!(struct Point { x, y });
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Id(u64);
/// impl_json!(newtype Id);
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum Mode { Fast, Careful(String) }
/// impl_json!(enum Mode { Fast, Careful(String) });
///
/// let p = Point { x: 1, y: 2 };
/// let round = Point::from_json(&JsonValue::parse(&p.to_json().render()).unwrap()).unwrap();
/// assert_eq!(round, p);
/// ```
///
/// Supported shapes: named-field structs, single-field tuple structs
/// (`newtype`), and enums whose variants are unit or single-field tuples.
/// Generic types (e.g. `Snapshot<T>`) write their impls by hand.
#[macro_export]
macro_rules! impl_json {
    (struct $ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::JsonValue::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                value: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::FromJson::from_json(
                        value.field(stringify!($field))?,
                    )?),+
                })
            }
        }
    };
    (newtype $ty:ident) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                value: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($ty($crate::json::FromJson::from_json(value)?))
            }
        }
    };
    (enum $ty:ident { $($variant:ident $(($inner:ty))?),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $($crate::impl_json!(@to_arm self, $ty, $variant $(($inner))?);)+
                unreachable!("impl_json!: variant list out of sync with enum")
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                value: &$crate::json::JsonValue,
            ) -> Result<Self, $crate::json::JsonError> {
                $($crate::impl_json!(@from_arm value, $ty, $variant $(($inner))?);)+
                Err($crate::json::JsonError(format!(
                    "no variant of {} matches {}",
                    stringify!($ty),
                    value.kind(),
                )))
            }
        }
    };
    (@to_arm $self:ident, $ty:ident, $variant:ident) => {
        if let $ty::$variant = $self {
            return $crate::json::JsonValue::Str(stringify!($variant).to_string());
        }
    };
    (@to_arm $self:ident, $ty:ident, $variant:ident($inner:ty)) => {
        if let $ty::$variant(data) = $self {
            return $crate::json::JsonValue::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::ToJson::to_json(data),
            )]);
        }
    };
    (@from_arm $value:ident, $ty:ident, $variant:ident) => {
        if let $crate::json::JsonValue::Str(name) = $value {
            if name == stringify!($variant) {
                return Ok($ty::$variant);
            }
        }
    };
    (@from_arm $value:ident, $ty:ident, $variant:ident($inner:ty)) => {
        if let Some(data) = $value.opt_field(stringify!($variant)) {
            return Ok($ty::$variant(
                <$inner as $crate::json::FromJson>::from_json(data)?,
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Sample {
        id: u64,
        label: String,
        flags: Vec<bool>,
        note: Option<String>,
    }
    impl_json!(struct Sample { id, label, flags, note });

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapper(u32);
    impl_json!(newtype Wrapper);

    #[derive(Debug, Clone, PartialEq)]
    enum Status {
        Ok,
        Corrupt(String),
        Count(u64),
    }
    impl_json!(
        enum Status {
            Ok,
            Corrupt(String),
            Count(u64),
        }
    );

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: T) {
        let compact = value.to_json().render();
        let reparsed = JsonValue::parse(&compact).unwrap();
        assert_eq!(T::from_json(&reparsed).unwrap(), value, "via {compact}");
        let pretty = value.to_json().render_pretty(2);
        let reparsed = JsonValue::parse(&pretty).unwrap();
        assert_eq!(T::from_json(&reparsed).unwrap(), value);
    }

    #[test]
    fn struct_roundtrip_with_option_and_escapes() {
        roundtrip(Sample {
            id: u64::MAX,
            label: "quote \" backslash \\ newline \n tab \t unicode ✓".into(),
            flags: vec![true, false],
            note: None,
        });
        roundtrip(Sample {
            id: 0,
            label: String::new(),
            flags: vec![],
            note: Some("present".into()),
        });
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Wrapper(7).to_json().render(), "7");
        roundtrip(Wrapper(u32::MAX));
    }

    #[test]
    fn enum_unit_and_data_variants() {
        assert_eq!(Status::Ok.to_json().render(), "\"Ok\"");
        assert_eq!(
            Status::Corrupt("bad cell".into()).to_json().render(),
            "{\"Corrupt\":\"bad cell\"}"
        );
        roundtrip(Status::Ok);
        roundtrip(Status::Corrupt("x".into()));
        roundtrip(Status::Count(42));
    }

    #[test]
    fn map_keys_roundtrip() {
        let mut map = BTreeMap::new();
        map.insert(4u32, "four".to_string());
        map.insert(7u32, "seven".to_string());
        roundtrip(map);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 1;
        let parsed = JsonValue::parse(&big.to_json().render()).unwrap();
        assert_eq!(u64::from_json(&parsed).unwrap(), big);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "01x",
            "nul",
            "[1] trailing",
            "{\"a\":}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = JsonValue::parse(r#"{"s":"aA\n","n":-3,"f":1.5,"arr":[null,true]}"#).unwrap();
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "aA\n");
        assert_eq!(v.field("n").unwrap().as_i64().unwrap(), -3);
        assert_eq!(v.field("f").unwrap().as_f64().unwrap(), 1.5);
        assert_eq!(v.field("arr").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parser_depth_is_capped() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_parse() {
        // Raw UTF-8 passes straight through.
        let v = JsonValue::parse(r#""😀 and é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀 and é");
        // An escaped surrogate pair decodes to the astral-plane character.
        let v = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        // Unpaired surrogates are rejected.
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ude00""#).is_err());
    }
}
