//! Durable state plane: a checksummed, generational record store with
//! atomic commits, an append-only WAL mode, and torn-tail recovery.
//!
//! Everything the detector persists between runs — sweep and fleet
//! checkpoints, monitor baselines, alert logs — is part of the attack
//! surface: a rootkit that can crash the scanner mid-checkpoint or flip a
//! bit in its baseline wins without ever hiding better. The store closes
//! that door with three guarantees:
//!
//! * **Atomic commits** — [`RecordStore::commit`] writes a fresh image to
//!   a temp file and publishes it with `rename`, so the visible file is
//!   always either the old state or the new state, never a blend. The
//!   committed image carries the *previous* last-good record ahead of the
//!   new one, so even post-publish corruption of the newest generation
//!   falls back one generation instead of losing everything.
//! * **O(1) WAL appends** — [`RecordStore::append`] adds one framed
//!   record to the file tail without rewriting what came before, for
//!   incremental writers like per-shard fleet checkpoints.
//! * **Recovery, never panic** — [`RecordStore::recover`] walks the
//!   frames, validates magic + length + FNV-1a checksum + monotonic
//!   generation, and stops at the first damage: a torn or corrupted tail
//!   yields every record before it plus a typed
//!   [`Defect`] report. [`RecordStore::open`]
//!   additionally *repairs* the file by truncating the damaged tail so
//!   later appends land after valid frames.
//!
//! Crash injection rides the existing fault vocabulary: give the store a
//! [`CrashPlan`] and any write dies at a seeded
//! byte offset (or between temp-write and rename), leaving exactly the
//! torn prefix a real process death would. Tests then reopen the store —
//! the "restarted process" — and must find a recoverable state.
//!
//! The store targets *process-crash* safety (the adversary kills or
//! corrupts the scanner), not power-loss durability: writes are flushed,
//! not fsynced, because the threat model is a hostile process, not a
//! failing disk — and the fault plan, not the kernel, decides what lands.
//!
//! # File format
//!
//! ```text
//! file   := FILE_MAGIC (8 bytes, "STRSTOR\x01") frame*
//! frame  := FRAME_MAGIC (4 bytes, "FRM\x01")
//!           generation  u64 LE   (monotonically increasing per file)
//!           length      u32 LE   (payload bytes)
//!           checksum    u64 LE   (FNV-1a over generation ∥ length ∥ payload)
//!           payload     [length bytes]
//! ```
//!
//! # Examples
//!
//! ```
//! use strider_support::store::RecordStore;
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let store = RecordStore::open(dir.join("state.wal"))?;
//! store.append(b"shard 0 done")?;
//! store.append(b"shard 1 done")?;
//! let recovered = store.recover()?;
//! assert!(recovered.is_clean());
//! assert_eq!(recovered.records.len(), 2);
//! assert_eq!(recovered.latest().unwrap().payload, b"shard 1 done");
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::fault::{CrashPlan, Defect, DefectKind};
use crate::rng::fnv1a;
use crate::sync::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic bytes opening every store file.
pub const FILE_MAGIC: [u8; 8] = *b"STRSTOR\x01";
/// Magic bytes opening every record frame.
pub const FRAME_MAGIC: [u8; 4] = *b"FRM\x01";
/// Fixed frame bytes before the payload: magic + generation + length +
/// checksum.
pub const FRAME_HEADER_BYTES: usize = 4 + 8 + 4 + 8;

fn frame_checksum(generation: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    fnv1a(&buf)
}

fn encode_frame(out: &mut Vec<u8>, generation: u64, payload: &[u8]) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(generation, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

// ---------------------------------------------------------------------
// Recovered state
// ---------------------------------------------------------------------

/// One validated record read back from a store file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's generation (monotonic per file).
    pub generation: u64,
    /// Byte offset of the frame start in the file — lets targeted tests
    /// damage a known record.
    pub offset: u64,
    /// The record payload.
    pub payload: Vec<u8>,
}

/// Everything salvageable from a store file, plus the damage map.
///
/// Recovery stops at the first invalid frame: frame boundaries after
/// damage are untrustworthy, so records past it are deliberately not
/// scavenged — the contract is *fall back to the last good generation*,
/// not *salvage every plausible frame*.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovered {
    /// Valid records in file order (generation-ascending).
    pub records: Vec<Record>,
    /// Damage encountered; empty means a clean file.
    pub defects: Vec<Defect>,
    /// Byte offset of the end of the last valid frame — the truncation
    /// point an [`RecordStore::open`] repair cuts the file back to.
    pub good_end: u64,
}

impl Recovered {
    /// The newest valid record, if any survived.
    pub fn latest(&self) -> Option<&Record> {
        self.records.last()
    }

    /// The newest valid generation, if any.
    pub fn last_generation(&self) -> Option<u64> {
        self.records.last().map(|r| r.generation)
    }

    /// Whether the file read back with no damage at all.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }
}

fn scan_image(bytes: &[u8]) -> Recovered {
    let mut out = Recovered::default();
    if bytes.is_empty() {
        return out;
    }
    if bytes.len() < FILE_MAGIC.len() || bytes[..FILE_MAGIC.len()] != FILE_MAGIC {
        out.defects.push(Defect::new(
            DefectKind::BadMagic,
            0,
            bytes.len() as u64,
            "store header",
        ));
        return out;
    }
    let mut at = FILE_MAGIC.len();
    out.good_end = at as u64;
    while at < bytes.len() {
        let left = bytes.len() - at;
        if left < FRAME_HEADER_BYTES {
            out.defects.push(Defect::new(
                DefectKind::Truncated,
                at as u64,
                left as u64,
                "store frame header",
            ));
            break;
        }
        if bytes[at..at + 4] != FRAME_MAGIC {
            out.defects.push(Defect::new(
                DefectKind::BadMagic,
                at as u64,
                left as u64,
                "store frame magic",
            ));
            break;
        }
        let generation = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().unwrap()) as usize;
        let stored_sum = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
        let payload_at = at + FRAME_HEADER_BYTES;
        if bytes.len() - payload_at < len {
            out.defects.push(Defect::new(
                DefectKind::Truncated,
                at as u64,
                left as u64,
                "store frame payload",
            ));
            break;
        }
        let payload = &bytes[payload_at..payload_at + len];
        if frame_checksum(generation, payload) != stored_sum {
            out.defects.push(Defect::new(
                DefectKind::BadRecord,
                at as u64,
                (FRAME_HEADER_BYTES + len) as u64,
                "store frame checksum",
            ));
            break;
        }
        if out
            .records
            .last()
            .is_some_and(|last| generation <= last.generation)
        {
            out.defects.push(Defect::new(
                DefectKind::BadRecord,
                at as u64,
                (FRAME_HEADER_BYTES + len) as u64,
                "store generation order",
            ));
            break;
        }
        out.records.push(Record {
            generation,
            offset: at as u64,
            payload: payload.to_vec(),
        });
        at = payload_at + len;
        out.good_end = at as u64;
    }
    out
}

fn recover_path(path: &Path) -> io::Result<Recovered> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovered::default()),
        Err(e) => return Err(e),
    };
    Ok(scan_image(&bytes))
}

// ---------------------------------------------------------------------
// RecordStore
// ---------------------------------------------------------------------

/// A checksummed, generational record store over one file.
///
/// `Sync` by construction — the generation counter sits behind a mutex
/// held for the whole write, so concurrent appenders serialize instead of
/// interleaving frame bytes.
#[derive(Debug)]
pub struct RecordStore {
    path: PathBuf,
    next_generation: Mutex<u64>,
    crash: Option<Arc<CrashPlan>>,
}

impl RecordStore {
    /// Opens (or creates lazily) the store at `path`, repairing any
    /// damaged tail: the file is truncated back to the end of its last
    /// valid frame so subsequent appends land after good data. A stale
    /// temp file from a crashed commit is discarded.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let _ = fs::remove_file(commit_tmp_path(&path));
        let recovered = recover_path(&path)?;
        if !recovered.defects.is_empty() {
            if recovered.good_end == 0 {
                // Header itself is gone: nothing in the file is trustworthy.
                fs::remove_file(&path)?;
            } else {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(recovered.good_end)?;
            }
        }
        let next = recovered.last_generation().map_or(1, |g| g + 1);
        Ok(Self {
            path,
            next_generation: Mutex::new(next),
            crash: None,
        })
    }

    /// Arms crash injection: every subsequent write consults `plan`.
    pub fn with_crash_plan(mut self, plan: Arc<CrashPlan>) -> Self {
        self.crash = Some(plan);
        self
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replaces the store contents with `payload` as a new
    /// generation, keeping the previous last-good record ahead of it so a
    /// later corruption of the newest record falls back one generation.
    /// Returns the committed generation.
    pub fn commit(&self, payload: &[u8]) -> io::Result<u64> {
        let mut next = self.next_generation.lock();
        let generation = *next;
        let previous = self.recover()?.records.pop();
        let mut image =
            Vec::with_capacity(FILE_MAGIC.len() + 2 * FRAME_HEADER_BYTES + payload.len());
        image.extend_from_slice(&FILE_MAGIC);
        if let Some(prev) = previous {
            encode_frame(&mut image, prev.generation, &prev.payload);
        }
        encode_frame(&mut image, generation, payload);

        let tmp = commit_tmp_path(&self.path);
        let mut file = File::create(&tmp)?;
        self.guarded_write(&mut file, &image)?;
        file.flush()?;
        drop(file);
        if let Some(plan) = &self.crash {
            if plan.take_rename_crash() {
                return Err(CrashPlan::crash_error());
            }
        }
        fs::rename(&tmp, &self.path)?;
        *next = generation + 1;
        Ok(generation)
    }

    /// Appends `payload` as one framed record — O(1) in the file size.
    /// Creates the file (with header) on first use. Returns the appended
    /// generation.
    pub fn append(&self, payload: &[u8]) -> io::Result<u64> {
        let mut next = self.next_generation.lock();
        let generation = *next;
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if file.metadata()?.len() == 0 {
            self.guarded_write(&mut file, &FILE_MAGIC)?;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        encode_frame(&mut frame, generation, payload);
        self.guarded_write(&mut file, &frame)?;
        file.flush()?;
        *next = generation + 1;
        Ok(generation)
    }

    /// Reads everything salvageable from the file. Missing file means an
    /// empty (clean) state, never an error — a first run has no past.
    pub fn recover(&self) -> io::Result<Recovered> {
        recover_path(&self.path)
    }

    fn guarded_write(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        if let Some(plan) = &self.crash {
            if let Some(keep) = plan.admit(bytes.len() as u64) {
                file.write_all(&bytes[..keep as usize])?;
                file.flush()?;
                return Err(CrashPlan::crash_error());
            }
        }
        file.write_all(bytes)
    }
}

fn commit_tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------
// atomic_write_file — the one-shot artifact writer
// ---------------------------------------------------------------------

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// then `rename`. A crash mid-write leaves the old file (or no file) in
/// place — never a truncated artifact. This is the commit primitive every
/// exporter (`SCAN_TELEMETRY_*.json`, `TELEMETRY_EXPO_*.prom`, Chrome
/// traces) routes through.
pub fn atomic_write_file(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}.{n}.tmp", std::process::id()));
    let tmp = path.with_file_name(name);
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("strider-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_roundtrips_in_order() {
        let dir = scratch("append");
        let store = RecordStore::open(dir.join("s.wal")).unwrap();
        for i in 0..10u8 {
            store.append(&[i; 3]).unwrap();
        }
        let rec = store.recover().unwrap();
        assert!(rec.is_clean());
        assert_eq!(rec.records.len(), 10);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.generation, i as u64 + 1);
            assert_eq!(r.payload, vec![i as u8; 3]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_keeps_previous_generation_for_fallback() {
        let dir = scratch("commit");
        let store = RecordStore::open(dir.join("s.db")).unwrap();
        store.commit(b"alpha").unwrap();
        store.commit(b"beta").unwrap();
        store.commit(b"gamma").unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.is_clean());
        // Only the previous + newest generations survive each commit.
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0].payload, b"beta");
        assert_eq!(rec.latest().unwrap().payload, b"gamma");
        assert!(rec.records[0].generation < rec.records[1].generation);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_newest_record_falls_back_a_generation() {
        let dir = scratch("bitflip");
        let path = dir.join("s.db");
        let store = RecordStore::open(&path).unwrap();
        store.commit(b"previous good state").unwrap();
        store.commit(b"newest state").unwrap();
        let clean = store.recover().unwrap();
        let newest_at = clean.latest().unwrap().offset as usize;
        // Flip one bit inside the newest frame's payload.
        let mut bytes = fs::read(&path).unwrap();
        bytes[newest_at + FRAME_HEADER_BYTES] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let reopened = RecordStore::open(&path).unwrap();
        let rec = reopened.recover().unwrap();
        assert_eq!(
            rec.latest().unwrap().payload,
            b"previous good state",
            "fallback to the prior generation, never a panic"
        );
        // open() repaired the tail, so the re-read is clean again.
        assert!(rec.is_clean());
        // And the next commit continues the generation sequence.
        let g = reopened.commit(b"after repair").unwrap();
        assert!(g > rec.last_generation().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_repaired() {
        let dir = scratch("torn");
        let path = dir.join("s.wal");
        let store = RecordStore::open(&path).unwrap();
        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        let full = fs::read(&path).unwrap();
        // Tear the file at every byte length and confirm recovery never
        // panics and never invents records.
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let reopened = RecordStore::open(&path).unwrap();
            let rec = reopened.recover().unwrap();
            assert!(rec.records.len() <= 2);
            for r in &rec.records {
                assert!(r.payload == b"one" || r.payload == b"two");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn random_corruption_never_panics_recovery() {
        let dir = scratch("chaos");
        let path = dir.join("s.wal");
        let store = RecordStore::open(&path).unwrap();
        for i in 0..20u32 {
            store.append(&i.to_le_bytes()).unwrap();
        }
        let image = fs::read(&path).unwrap();
        for seed in 0..64u64 {
            let corrupt = FaultPlan::random(seed).apply(&image);
            fs::write(&path, &corrupt).unwrap();
            let reopened = RecordStore::open(&path).unwrap();
            let rec = reopened.recover().unwrap();
            // Every surviving record must be one we actually wrote, in order.
            for pair in rec.records.windows(2) {
                assert!(pair[0].generation < pair[1].generation);
            }
            for r in &rec.records {
                let val = u32::from_le_bytes(r.payload.as_slice().try_into().unwrap());
                assert_eq!(u64::from(val) + 1, r.generation);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_append_leaves_recoverable_torn_tail() {
        let dir = scratch("crash-append");
        let path = dir.join("s.wal");
        {
            let store = RecordStore::open(&path).unwrap();
            store.append(b"committed before the crash").unwrap();
        }
        let base_len = fs::metadata(&path).unwrap().len();
        // Offsets are counted over the bytes the plan observes, so 10
        // means "10 bytes of the new frame land, then the process dies".
        let plan = Arc::new(CrashPlan::at_write_byte(10));
        let store = RecordStore::open(&path)
            .unwrap()
            .with_crash_plan(plan.clone());
        let err = store.append(b"dies mid-write").unwrap_err();
        assert!(CrashPlan::is_crash(&err));
        assert!(plan.fired());
        assert_eq!(fs::metadata(&path).unwrap().len(), base_len + 10);

        // The restarted process reopens, repairs, and keeps working.
        let store = RecordStore::open(&path).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.latest().unwrap().payload, b"committed before the crash");
        store.append(b"after restart").unwrap();
        assert_eq!(store.recover().unwrap().records.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_rename_keeps_previous_state() {
        let dir = scratch("crash-rename");
        let path = dir.join("s.db");
        {
            let store = RecordStore::open(&path).unwrap();
            store.commit(b"published").unwrap();
        }
        let plan = Arc::new(CrashPlan::before_rename());
        let store = RecordStore::open(&path)
            .unwrap()
            .with_crash_plan(plan.clone());
        let err = store.commit(b"never published").unwrap_err();
        assert!(CrashPlan::is_crash(&err));
        assert!(plan.fired());

        let store = RecordStore::open(&path).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.is_clean());
        assert_eq!(rec.latest().unwrap().payload, b"published");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_clean_state() {
        let dir = scratch("missing");
        let store = RecordStore::open(dir.join("never-written")).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.is_clean());
        assert!(rec.records.is_empty());
        assert!(rec.latest().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_file_replaces_whole_files() {
        let dir = scratch("atomic");
        let path = dir.join("artifact.json");
        atomic_write_file(&path, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}");
        atomic_write_file(&path, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_serialize_cleanly() {
        let dir = scratch("threads");
        let store = Arc::new(RecordStore::open(dir.join("s.wal")).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..25u8 {
                        store.append(&[t, i]).unwrap();
                    }
                });
            }
        });
        let rec = store.recover().unwrap();
        assert!(rec.is_clean());
        assert_eq!(rec.records.len(), 100);
        for pair in rec.records.windows(2) {
            assert!(pair[0].generation < pair[1].generation);
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
