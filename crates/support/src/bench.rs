//! Mini benchmark harness replacing `criterion`.
//!
//! `strider-bench` keeps the `criterion` API shape — [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`] and the
//! [`criterion_group!`](crate::criterion_group)/[`criterion_main!`](crate::criterion_main) macros —
//! so the eleven bench files read unchanged. What it does differently:
//!
//! * every finished group writes `BENCH_<group>.json` at the **workspace
//!   root** with mean / min / p50 / p90 / p99 / max per-iteration timings,
//!   allocation columns (`allocs_per_op` / `bytes_per_op`, counted by the
//!   [`crate::prof`] global allocator around the timed routine), and
//!   derived throughput for each scenario, seeding a commit-able perf
//!   trajectory for future PRs (`BENCH_file_scan.json`,
//!   `BENCH_process_scan.json`, …),
//! * measurement is deliberately simple: a warm-up phase calibrates
//!   iterations-per-sample, then `sample_size` samples are timed and each
//!   sample's mean per-iteration time becomes one data point. No outlier
//!   modelling, no HTML reports.
//!
//! Run via `cargo bench -p strider-bench` (all groups) or
//! `cargo bench -p strider-bench --bench time_file_scan` (one binary).
//! Setting `STRIDER_BENCH_FAST=1` clamps warm-up/measurement/samples to
//! smoke-test sizes (timings become meaningless; alloc columns stay
//! exact — allocation counts are deterministic per iteration).
//!
//! The regression gate lives here too: [`compare_bench_dirs`] diffs a
//! directory of freshly produced `BENCH_*.json` files against committed
//! baselines with per-metric noise thresholds ([`DiffThresholds`] —
//! generous for timings, tight for the deterministic alloc columns), and
//! `scripts/bench_diff` wraps it as a CLI for `verify.sh`.

use crate::json::{JsonValue, ToJson};
use crate::obs::TelemetryReport;
use crate::sync::Mutex;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for derived throughput, matching `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, the harness re-runs setup per iteration regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Harness entry point, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    groups_finished: usize,
}

impl Criterion {
    /// Starts a named group; its results land in `BENCH_<name>.json`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            throughput: None,
            scenarios: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Prints a one-line summary of every report file written.
    pub fn final_summary(&self) {
        let written = written_files().lock();
        for path in written.iter() {
            eprintln!("bench report: {path}");
        }
    }
}

/// A named collection of benchmark scenarios sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    scenarios: Vec<Scenario>,
    phases: Vec<(String, JsonValue)>,
}

#[derive(Debug)]
struct Scenario {
    id: String,
    iters_per_sample: u64,
    sample_means_ns: Vec<f64>,
    allocs_per_iter: f64,
    bytes_per_iter: f64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the calibration warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the total measurement budget per scenario.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets how many samples each scenario records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Declares the per-iteration throughput of subsequent scenarios.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one scenario.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            iters_per_sample: 0,
            sample_means_ns: Vec::new(),
            allocs_per_iter: 0.0,
            bytes_per_iter: 0.0,
        };
        // Smoke-test mode for CI: timings become meaningless but the
        // report schema (and the deterministic alloc columns) stay exact.
        if std::env::var_os("STRIDER_BENCH_FAST").is_some() {
            bencher.warm_up = bencher.warm_up.min(Duration::from_millis(5));
            bencher.measurement = bencher.measurement.min(Duration::from_millis(20));
            bencher.sample_size = bencher.sample_size.min(4);
        }
        body(&mut bencher);
        eprintln!(
            "bench {}/{id}: {:.1} ns/iter, {:.1} allocs/iter ({:.0} B) over {} samples",
            self.name,
            mean(&bencher.sample_means_ns),
            bencher.allocs_per_iter,
            bencher.bytes_per_iter,
            bencher.sample_means_ns.len(),
        );
        self.scenarios.push(Scenario {
            id,
            iters_per_sample: bencher.iters_per_sample,
            sample_means_ns: bencher.sample_means_ns,
            allocs_per_iter: bencher.allocs_per_iter,
            bytes_per_iter: bencher.bytes_per_iter,
            throughput: self.throughput,
        });
        self
    }

    /// Attaches a per-phase timing breakdown from an instrumented run: for
    /// each span name in `report`, the occurrence count and summed wall
    /// duration land under a `"phases"` member of `BENCH_<group>.json`,
    /// keyed by `id`. One instrumented pass per scenario is enough — the
    /// goal is attribution (where the time goes), not statistics.
    pub fn record_phases(&mut self, id: impl Into<String>, report: &TelemetryReport) -> &mut Self {
        let breakdown: Vec<(String, JsonValue)> = report
            .phase_totals()
            .iter()
            .map(|(name, total)| (name.clone(), total.to_json()))
            .collect();
        self.phases.push((id.into(), JsonValue::Obj(breakdown)));
        self
    }

    /// Writes `BENCH_<group>.json` at the workspace root.
    pub fn finish(self) {
        let file_name = format!(
            "BENCH_{}.json",
            self.name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect::<String>()
        );
        let path = report_dir().join(&file_name);
        let report = self.to_json();
        if let Err(error) =
            crate::store::atomic_write_file(&path, report.render_pretty(2).as_bytes())
        {
            eprintln!("bench: could not write {}: {error}", path.display());
            return;
        }
        written_files().lock().push(path.display().to_string());
        self.criterion.groups_finished += 1;
    }

    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("group".into(), JsonValue::Str(self.name.clone())),
            (
                "harness".into(),
                JsonValue::Str("strider-support::bench".into()),
            ),
            (
                "sample_size".into(),
                JsonValue::UInt(self.sample_size as u64),
            ),
            (
                "scenarios".into(),
                JsonValue::Arr(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
        ];
        if !self.phases.is_empty() {
            members.push(("phases".into(), JsonValue::Obj(self.phases.clone())));
        }
        JsonValue::Obj(members)
    }
}

impl Scenario {
    fn to_json(&self) -> JsonValue {
        let mut sorted = self.sample_means_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut members = vec![
            ("id".into(), JsonValue::Str(self.id.clone())),
            (
                "samples".into(),
                JsonValue::UInt(self.sample_means_ns.len() as u64),
            ),
            (
                "iters_per_sample".into(),
                JsonValue::UInt(self.iters_per_sample),
            ),
            ("mean_ns".into(), JsonValue::Float(mean(&sorted))),
            (
                "min_ns".into(),
                JsonValue::Float(sorted.first().copied().unwrap_or(0.0)),
            ),
            ("p50_ns".into(), JsonValue::Float(percentile(&sorted, 50.0))),
            ("p90_ns".into(), JsonValue::Float(percentile(&sorted, 90.0))),
            ("p99_ns".into(), JsonValue::Float(percentile(&sorted, 99.0))),
            (
                "max_ns".into(),
                JsonValue::Float(sorted.last().copied().unwrap_or(0.0)),
            ),
            ("std_dev_ns".into(), JsonValue::Float(std_dev(&sorted))),
            (
                "allocs_per_op".into(),
                JsonValue::Float(self.allocs_per_iter),
            ),
            ("bytes_per_op".into(), JsonValue::Float(self.bytes_per_iter)),
        ];
        if let Some(throughput) = self.throughput {
            let (key, count) = match throughput {
                Throughput::Elements(n) => ("elements", n),
                Throughput::Bytes(n) => ("bytes", n),
            };
            members.push((format!("throughput_{key}"), JsonValue::UInt(count)));
            let mean_ns = mean(&sorted);
            if mean_ns > 0.0 {
                members.push((
                    format!("{key}_per_sec"),
                    JsonValue::Float(count as f64 * 1e9 / mean_ns),
                ));
            }
        }
        JsonValue::Obj(members)
    }
}

/// Times a single scenario's routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    iters_per_sample: u64,
    sample_means_ns: Vec<f64>,
    allocs_per_iter: f64,
    bytes_per_iter: f64,
}

impl Bencher {
    /// Times `routine` back-to-back, criterion's `Bencher::iter`. Also
    /// counts this thread's heap traffic across the timed loops (via the
    /// [`crate::prof`] counting allocator), yielding the per-iteration
    /// `allocs_per_op` / `bytes_per_op` report columns.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles the batch size until the budget is spent, which
        // both warms caches and calibrates the per-iteration cost.
        let mut batch = 1u64;
        let per_iter_ns;
        let warm_up_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            if warm_up_start.elapsed() >= self.warm_up {
                per_iter_ns = (elapsed / batch as f64).max(0.1);
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 24);
        }

        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / per_iter_ns) as u64).clamp(1, 1 << 24);
        self.iters_per_sample = iters;
        let mut total_allocs = 0u64;
        let mut total_bytes = 0u64;
        self.sample_means_ns = (0..self.sample_size)
            .map(|_| {
                let before = crate::prof::thread_stats();
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = t0.elapsed();
                let after = crate::prof::thread_stats();
                total_allocs += after.allocs.saturating_sub(before.allocs);
                total_bytes += after.alloc_bytes.saturating_sub(before.alloc_bytes);
                elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        let total_iters = iters * self.sample_size as u64;
        self.allocs_per_iter = total_allocs as f64 / total_iters as f64;
        self.bytes_per_iter = total_bytes as f64 / total_iters as f64;
    }

    /// Times `routine` with a fresh untimed `setup` product per iteration,
    /// criterion's `Bencher::iter_batched`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with a handful of timed runs.
        let warm_up_start = Instant::now();
        let mut per_iter_ns = f64::MAX;
        while warm_up_start.elapsed() < self.warm_up {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            per_iter_ns = (t0.elapsed().as_nanos() as f64).max(0.1);
        }

        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / per_iter_ns) as u64).clamp(1, 1 << 16);
        self.iters_per_sample = iters;
        let mut total_allocs = 0u64;
        let mut total_bytes = 0u64;
        self.sample_means_ns = (0..self.sample_size)
            .map(|_| {
                let mut timed_ns = 0u128;
                for _ in 0..iters {
                    let input = setup();
                    // Snapshot around the routine only: setup's heap
                    // traffic stays out of the columns, like its time.
                    let before = crate::prof::thread_stats();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    timed_ns += t0.elapsed().as_nanos();
                    let after = crate::prof::thread_stats();
                    total_allocs += after.allocs.saturating_sub(before.allocs);
                    total_bytes += after.alloc_bytes.saturating_sub(before.alloc_bytes);
                }
                timed_ns as f64 / iters as f64
            })
            .collect();
        let total_iters = iters * self.sample_size as u64;
        self.allocs_per_iter = total_allocs as f64 / total_iters as f64;
        self.bytes_per_iter = total_bytes as f64 / total_iters as f64;
    }
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Nearest-rank percentile over pre-sorted samples.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn written_files() -> &'static Mutex<Vec<String>> {
    static WRITTEN: std::sync::OnceLock<Mutex<Vec<String>>> = std::sync::OnceLock::new();
    WRITTEN.get_or_init(|| Mutex::new(Vec::new()))
}

/// Where `BENCH_*.json` files land: `STRIDER_BENCH_DIR` if set, otherwise
/// the enclosing cargo workspace root, otherwise the current directory.
pub fn report_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("STRIDER_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return start,
        }
    }
}

/// Per-metric noise thresholds for the bench regression gate.
///
/// A fresh value only counts as a regression when it exceeds the
/// baseline by *both* the relative fraction and the absolute slack for
/// its metric class — the fraction filters proportional noise, the
/// absolute floor keeps sub-noise measurements (a 40 ns mean moving to
/// 70 ns) from failing builds. Timing metrics get generous defaults
/// because wall time is machine- and load-dependent; the alloc columns
/// are near-deterministic, so their thresholds are tight — they are the
/// gate's reliable signal.
#[derive(Debug, Clone, Copy)]
pub struct DiffThresholds {
    /// Allowed fractional growth for timing metrics (default 0.5).
    pub time_frac: f64,
    /// Absolute timing slack in nanoseconds (default 200).
    pub min_time_ns: f64,
    /// Allowed fractional growth for allocation metrics (default 0.02).
    pub alloc_frac: f64,
    /// Absolute slack in allocations per op (default 2).
    pub min_allocs: f64,
    /// Absolute slack in bytes per op (default 256).
    pub min_bytes: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            time_frac: 0.5,
            min_time_ns: 200.0,
            alloc_frac: 0.02,
            min_allocs: 2.0,
            min_bytes: 256.0,
        }
    }
}

/// One metric that grew past its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRegression {
    /// The bench group (report file stem).
    pub group: String,
    /// The scenario id inside the group.
    pub scenario: String,
    /// Which metric regressed (`mean_ns`, `allocs_per_op`, `bytes_per_op`).
    pub metric: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The fresh value.
    pub fresh: f64,
    /// The fractional growth that was allowed.
    pub allowed_frac: f64,
}

impl std::fmt::Display for MetricRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} {}: {:.1} -> {:.1} (+{:.1}%, allowed {:.0}%)",
            self.group,
            self.scenario,
            self.metric,
            self.baseline,
            self.fresh,
            (self.fresh / self.baseline.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
            self.allowed_frac * 100.0,
        )
    }
}

/// The outcome of diffing fresh bench reports against baselines.
#[derive(Debug, Clone, Default)]
pub struct BenchComparison {
    /// Report files compared.
    pub groups: usize,
    /// Scenarios compared across all groups.
    pub scenarios: usize,
    /// Individual metric comparisons made.
    pub metrics: usize,
    /// Every metric that regressed past its threshold.
    pub regressions: Vec<MetricRegression>,
    /// Groups or scenarios present in the baseline but absent (or
    /// missing the metric) in the fresh results — listed, never silently
    /// dropped.
    pub skipped: Vec<String>,
}

impl BenchComparison {
    /// Whether the gate passes (no metric regressed).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// A human-readable verdict: counts, skips, and one line per
    /// regression.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench_diff: {} groups, {} scenarios, {} metrics compared\n",
            self.groups, self.scenarios, self.metrics
        );
        for skip in &self.skipped {
            out.push_str(&format!("  skipped: {skip}\n"));
        }
        if self.passed() {
            out.push_str("PASS: no metric regressed past its threshold\n");
        } else {
            for r in &self.regressions {
                out.push_str(&format!("  REGRESSION {r}\n"));
            }
            out.push_str(&format!("FAIL: {} regression(s)\n", self.regressions.len()));
        }
        out
    }
}

/// `fresh` regressed past `baseline` when it exceeds both the relative
/// fraction and the absolute slack.
fn exceeds(baseline: f64, fresh: f64, frac: f64, min_abs: f64) -> bool {
    fresh > baseline * (1.0 + frac) && fresh - baseline > min_abs
}

/// Diffs one scenario's metrics, appending regressions into `out`.
/// Metrics absent from either side (older baselines predate the alloc
/// columns) are recorded as skipped rather than compared.
pub fn compare_scenarios(
    group: &str,
    baseline: &JsonValue,
    fresh: &JsonValue,
    thresholds: &DiffThresholds,
    out: &mut BenchComparison,
) {
    let id = baseline
        .field("id")
        .ok()
        .and_then(|v| v.as_str().ok().map(str::to_string))
        .unwrap_or_default();
    let metrics: [(&str, f64, f64); 3] = [
        ("mean_ns", thresholds.time_frac, thresholds.min_time_ns),
        (
            "allocs_per_op",
            thresholds.alloc_frac,
            thresholds.min_allocs,
        ),
        ("bytes_per_op", thresholds.alloc_frac, thresholds.min_bytes),
    ];
    out.scenarios += 1;
    for (metric, frac, min_abs) in metrics {
        let (Ok(b), Ok(f)) = (
            baseline.field(metric).and_then(JsonValue::as_f64),
            fresh.field(metric).and_then(JsonValue::as_f64),
        ) else {
            out.skipped.push(format!("{group}/{id} {metric} (absent)"));
            continue;
        };
        out.metrics += 1;
        if exceeds(b, f, frac, min_abs) {
            out.regressions.push(MetricRegression {
                group: group.to_string(),
                scenario: id.clone(),
                metric: metric.to_string(),
                baseline: b,
                fresh: f,
                allowed_frac: frac,
            });
        }
    }
}

/// Diffs two parsed `BENCH_<group>.json` reports, appending into `out`.
/// Scenarios are matched by id; baseline scenarios missing from the
/// fresh report are recorded as skipped.
pub fn compare_reports(
    group: &str,
    baseline: &JsonValue,
    fresh: &JsonValue,
    thresholds: &DiffThresholds,
    out: &mut BenchComparison,
) {
    out.groups += 1;
    let scenario_id = |s: &JsonValue| {
        s.field("id")
            .ok()
            .and_then(|v| v.as_str().ok().map(str::to_string))
    };
    let empty = Vec::new();
    let fresh_scenarios = fresh
        .field("scenarios")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&empty);
    let baseline_scenarios = baseline
        .field("scenarios")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&empty);
    for b in baseline_scenarios {
        let Some(id) = scenario_id(b) else { continue };
        match fresh_scenarios
            .iter()
            .find(|f| scenario_id(f).as_deref() == Some(&id))
        {
            Some(f) => compare_scenarios(group, b, f, thresholds, out),
            None => out.skipped.push(format!("{group}/{id} (not re-run)")),
        }
    }
}

/// The regression gate's directory walk: every `BENCH_*.json` under
/// `baseline_dir` is diffed against the same-named file under
/// `fresh_dir` (reports without a fresh counterpart are skipped, never
/// failed — partial regeneration is legitimate). Files are visited in
/// sorted order so the verdict is deterministic.
///
/// # Errors
///
/// Propagates directory-walk I/O errors; a baseline or fresh file that
/// exists but does not parse is an `InvalidData` error — a corrupt
/// committed report should fail loudly, not skip silently.
pub fn compare_bench_dirs(
    baseline_dir: &Path,
    fresh_dir: &Path,
    thresholds: &DiffThresholds,
) -> std::io::Result<BenchComparison> {
    let mut names: Vec<String> = std::fs::read_dir(baseline_dir)?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    names.sort();
    let parse = |path: &Path| -> std::io::Result<JsonValue> {
        let text = std::fs::read_to_string(path)?;
        JsonValue::parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    };
    let mut out = BenchComparison::default();
    for name in names {
        let group = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let fresh_path = fresh_dir.join(&name);
        if !fresh_path.exists() {
            out.skipped.push(format!("{group} (no fresh report)"));
            continue;
        }
        let baseline = parse(&baseline_dir.join(&name))?;
        let fresh = parse(&fresh_path)?;
        compare_reports(&group, &baseline, &fresh, thresholds, &mut out);
    }
    Ok(out)
}

/// Declares a bench group function, criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::bench::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_are_sane() {
        let samples = [4.0, 1.0, 3.0, 2.0, 5.0];
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(mean(&sorted), 3.0);
        assert_eq!(percentile(&sorted, 50.0), 3.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 5.0);
        assert!((std_dev(&sorted) - 1.5811).abs() < 1e-3);
    }

    #[test]
    fn bench_writes_report_json() {
        let dir = std::env::temp_dir().join(format!("strider-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The env var is process-global; this is the only test that sets it.
        std::env::set_var("STRIDER_BENCH_DIR", &dir);

        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("selftest");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.sample_size(4);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.bench_function("allocating", |b| {
            b.iter(|| vec![0u8; 128]);
        });
        let telemetry =
            crate::obs::Telemetry::with_clock(std::sync::Arc::new(crate::obs::FakeClock::new()));
        drop(telemetry.span("sum_phase"));
        group.record_phases("sum", &telemetry.report());
        group.finish();
        std::env::remove_var("STRIDER_BENCH_DIR");

        let report_path = dir.join("BENCH_selftest.json");
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report = JsonValue::parse(&text).unwrap();
        assert_eq!(report.field("group").unwrap().as_str().unwrap(), "selftest");
        let scenarios = report.field("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scenarios.len(), 3);
        for scenario in scenarios {
            assert!(scenario.field("mean_ns").unwrap().as_f64().unwrap() > 0.0);
            assert!(scenario.field("p99_ns").unwrap().as_f64().unwrap() > 0.0);
            assert_eq!(
                scenario
                    .field("throughput_elements")
                    .unwrap()
                    .as_u64()
                    .unwrap(),
                64
            );
        }
        // The alloc columns are deterministic: summing borrowed slices
        // allocates nothing; `vec![0u8; 128]` is exactly one 128-byte
        // allocation per iteration.
        let by_id = |id: &str| {
            scenarios
                .iter()
                .find(|s| s.field("id").unwrap().as_str().unwrap() == id)
                .unwrap()
        };
        let col = |id: &str, metric: &str| by_id(id).field(metric).unwrap().as_f64().unwrap();
        assert_eq!(col("batched", "allocs_per_op"), 0.0);
        assert!((col("allocating", "allocs_per_op") - 1.0).abs() < 0.01);
        assert!((col("allocating", "bytes_per_op") - 128.0).abs() < 1.0);
        let phases = report.field("phases").unwrap().field("sum").unwrap();
        assert!(phases.field("sum_phase").is_ok());
        std::fs::remove_file(&report_path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    fn report_json(mean_ns: f64, allocs: f64, bytes: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"group":"g","scenarios":[{{"id":"s","mean_ns":{mean_ns},"allocs_per_op":{allocs},"bytes_per_op":{bytes}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn diff_passes_on_identical_reports() {
        let baseline = report_json(10_000.0, 100.0, 4_096.0);
        let mut out = BenchComparison::default();
        compare_reports(
            "g",
            &baseline,
            &baseline,
            &DiffThresholds::default(),
            &mut out,
        );
        assert!(out.passed(), "{}", out.render());
        assert_eq!(out.metrics, 3);
        assert!(out.render().contains("PASS"));
    }

    #[test]
    fn diff_fails_when_a_metric_regresses_past_its_threshold() {
        let baseline = report_json(10_000.0, 100.0, 4_096.0);
        // Time doubled and allocs up 10%: both past their thresholds.
        let fresh = report_json(20_000.0, 110.0, 4_096.0);
        let mut out = BenchComparison::default();
        compare_reports("g", &baseline, &fresh, &DiffThresholds::default(), &mut out);
        assert!(!out.passed());
        let metrics: Vec<&str> = out.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(metrics, vec!["mean_ns", "allocs_per_op"]);
        assert!(
            out.render().contains("FAIL: 2 regression(s)"),
            "{}",
            out.render()
        );
        assert!(out.regressions[0].to_string().contains("g/s mean_ns"));
    }

    #[test]
    fn diff_absolute_slack_absorbs_sub_noise_movement() {
        // 40 ns -> 70 ns is +75% but under the 200 ns absolute slack;
        // 1 alloc -> 2 allocs is +100% but within the 2-alloc slack.
        let baseline = report_json(40.0, 1.0, 64.0);
        let fresh = report_json(70.0, 2.0, 64.0);
        let mut out = BenchComparison::default();
        compare_reports("g", &baseline, &fresh, &DiffThresholds::default(), &mut out);
        assert!(out.passed(), "{}", out.render());
    }

    #[test]
    fn diff_skips_metrics_absent_from_old_baselines() {
        let baseline =
            JsonValue::parse(r#"{"group":"g","scenarios":[{"id":"s","mean_ns":10.0}]}"#).unwrap();
        let fresh = report_json(10.0, 5.0, 64.0);
        let mut out = BenchComparison::default();
        compare_reports("g", &baseline, &fresh, &DiffThresholds::default(), &mut out);
        assert!(out.passed());
        assert_eq!(out.metrics, 1);
        assert_eq!(out.skipped.len(), 2, "{:?}", out.skipped);
    }

    #[test]
    fn diff_walks_directories_and_lists_missing_fresh_reports() {
        let base = std::env::temp_dir().join(format!("strider-diff-b-{}", std::process::id()));
        let fresh = std::env::temp_dir().join(format!("strider-diff-f-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        let report = report_json(10_000.0, 100.0, 4_096.0).render();
        std::fs::write(base.join("BENCH_alpha.json"), &report).unwrap();
        std::fs::write(fresh.join("BENCH_alpha.json"), &report).unwrap();
        std::fs::write(base.join("BENCH_beta.json"), &report).unwrap();

        let out = compare_bench_dirs(&base, &fresh, &DiffThresholds::default()).unwrap();
        assert!(out.passed(), "{}", out.render());
        assert_eq!(out.groups, 1);
        assert!(out
            .skipped
            .iter()
            .any(|s| s.contains("beta (no fresh report)")));

        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&fresh).ok();
    }
}
