//! Mini benchmark harness replacing `criterion`.
//!
//! `strider-bench` keeps the `criterion` API shape — [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`] and the
//! [`criterion_group!`](crate::criterion_group)/[`criterion_main!`](crate::criterion_main) macros —
//! so the eleven bench files read unchanged. What it does differently:
//!
//! * every finished group writes `BENCH_<group>.json` at the **workspace
//!   root** with mean / min / p50 / p90 / p99 / max per-iteration timings
//!   and derived throughput for each scenario, seeding a commit-able perf
//!   trajectory for future PRs (`BENCH_file_scan.json`,
//!   `BENCH_process_scan.json`, …),
//! * measurement is deliberately simple: a warm-up phase calibrates
//!   iterations-per-sample, then `sample_size` samples are timed and each
//!   sample's mean per-iteration time becomes one data point. No outlier
//!   modelling, no HTML reports.
//!
//! Run via `cargo bench -p strider-bench` (all groups) or
//! `cargo bench -p strider-bench --bench time_file_scan` (one binary).

use crate::json::{JsonValue, ToJson};
use crate::obs::TelemetryReport;
use crate::sync::Mutex;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for derived throughput, matching `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, the harness re-runs setup per iteration regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Harness entry point, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    groups_finished: usize,
}

impl Criterion {
    /// Starts a named group; its results land in `BENCH_<name>.json`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            throughput: None,
            scenarios: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Prints a one-line summary of every report file written.
    pub fn final_summary(&self) {
        let written = written_files().lock();
        for path in written.iter() {
            eprintln!("bench report: {path}");
        }
    }
}

/// A named collection of benchmark scenarios sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    scenarios: Vec<Scenario>,
    phases: Vec<(String, JsonValue)>,
}

#[derive(Debug)]
struct Scenario {
    id: String,
    iters_per_sample: u64,
    sample_means_ns: Vec<f64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the calibration warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the total measurement budget per scenario.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets how many samples each scenario records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Declares the per-iteration throughput of subsequent scenarios.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one scenario.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            iters_per_sample: 0,
            sample_means_ns: Vec::new(),
        };
        body(&mut bencher);
        eprintln!(
            "bench {}/{id}: {:.1} ns/iter over {} samples",
            self.name,
            mean(&bencher.sample_means_ns),
            bencher.sample_means_ns.len(),
        );
        self.scenarios.push(Scenario {
            id,
            iters_per_sample: bencher.iters_per_sample,
            sample_means_ns: bencher.sample_means_ns,
            throughput: self.throughput,
        });
        self
    }

    /// Attaches a per-phase timing breakdown from an instrumented run: for
    /// each span name in `report`, the occurrence count and summed wall
    /// duration land under a `"phases"` member of `BENCH_<group>.json`,
    /// keyed by `id`. One instrumented pass per scenario is enough — the
    /// goal is attribution (where the time goes), not statistics.
    pub fn record_phases(&mut self, id: impl Into<String>, report: &TelemetryReport) -> &mut Self {
        let breakdown: Vec<(String, JsonValue)> = report
            .phase_totals()
            .iter()
            .map(|(name, total)| (name.clone(), total.to_json()))
            .collect();
        self.phases.push((id.into(), JsonValue::Obj(breakdown)));
        self
    }

    /// Writes `BENCH_<group>.json` at the workspace root.
    pub fn finish(self) {
        let file_name = format!(
            "BENCH_{}.json",
            self.name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect::<String>()
        );
        let path = report_dir().join(&file_name);
        let report = self.to_json();
        if let Err(error) =
            crate::store::atomic_write_file(&path, report.render_pretty(2).as_bytes())
        {
            eprintln!("bench: could not write {}: {error}", path.display());
            return;
        }
        written_files().lock().push(path.display().to_string());
        self.criterion.groups_finished += 1;
    }

    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("group".into(), JsonValue::Str(self.name.clone())),
            (
                "harness".into(),
                JsonValue::Str("strider-support::bench".into()),
            ),
            (
                "sample_size".into(),
                JsonValue::UInt(self.sample_size as u64),
            ),
            (
                "scenarios".into(),
                JsonValue::Arr(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
        ];
        if !self.phases.is_empty() {
            members.push(("phases".into(), JsonValue::Obj(self.phases.clone())));
        }
        JsonValue::Obj(members)
    }
}

impl Scenario {
    fn to_json(&self) -> JsonValue {
        let mut sorted = self.sample_means_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut members = vec![
            ("id".into(), JsonValue::Str(self.id.clone())),
            (
                "samples".into(),
                JsonValue::UInt(self.sample_means_ns.len() as u64),
            ),
            (
                "iters_per_sample".into(),
                JsonValue::UInt(self.iters_per_sample),
            ),
            ("mean_ns".into(), JsonValue::Float(mean(&sorted))),
            (
                "min_ns".into(),
                JsonValue::Float(sorted.first().copied().unwrap_or(0.0)),
            ),
            ("p50_ns".into(), JsonValue::Float(percentile(&sorted, 50.0))),
            ("p90_ns".into(), JsonValue::Float(percentile(&sorted, 90.0))),
            ("p99_ns".into(), JsonValue::Float(percentile(&sorted, 99.0))),
            (
                "max_ns".into(),
                JsonValue::Float(sorted.last().copied().unwrap_or(0.0)),
            ),
            ("std_dev_ns".into(), JsonValue::Float(std_dev(&sorted))),
        ];
        if let Some(throughput) = self.throughput {
            let (key, count) = match throughput {
                Throughput::Elements(n) => ("elements", n),
                Throughput::Bytes(n) => ("bytes", n),
            };
            members.push((format!("throughput_{key}"), JsonValue::UInt(count)));
            let mean_ns = mean(&sorted);
            if mean_ns > 0.0 {
                members.push((
                    format!("{key}_per_sec"),
                    JsonValue::Float(count as f64 * 1e9 / mean_ns),
                ));
            }
        }
        JsonValue::Obj(members)
    }
}

/// Times a single scenario's routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    iters_per_sample: u64,
    sample_means_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` back-to-back, criterion's `Bencher::iter`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles the batch size until the budget is spent, which
        // both warms caches and calibrates the per-iteration cost.
        let mut batch = 1u64;
        let per_iter_ns;
        let warm_up_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            if warm_up_start.elapsed() >= self.warm_up {
                per_iter_ns = (elapsed / batch as f64).max(0.1);
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 24);
        }

        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / per_iter_ns) as u64).clamp(1, 1 << 24);
        self.iters_per_sample = iters;
        self.sample_means_ns = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
    }

    /// Times `routine` with a fresh untimed `setup` product per iteration,
    /// criterion's `Bencher::iter_batched`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with a handful of timed runs.
        let warm_up_start = Instant::now();
        let mut per_iter_ns = f64::MAX;
        while warm_up_start.elapsed() < self.warm_up {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            per_iter_ns = (t0.elapsed().as_nanos() as f64).max(0.1);
        }

        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / per_iter_ns) as u64).clamp(1, 1 << 16);
        self.iters_per_sample = iters;
        self.sample_means_ns = (0..self.sample_size)
            .map(|_| {
                let mut timed_ns = 0u128;
                for _ in 0..iters {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    timed_ns += t0.elapsed().as_nanos();
                }
                timed_ns as f64 / iters as f64
            })
            .collect();
    }
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Nearest-rank percentile over pre-sorted samples.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn written_files() -> &'static Mutex<Vec<String>> {
    static WRITTEN: std::sync::OnceLock<Mutex<Vec<String>>> = std::sync::OnceLock::new();
    WRITTEN.get_or_init(|| Mutex::new(Vec::new()))
}

/// Where `BENCH_*.json` files land: `STRIDER_BENCH_DIR` if set, otherwise
/// the enclosing cargo workspace root, otherwise the current directory.
pub fn report_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("STRIDER_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return start,
        }
    }
}

/// Declares a bench group function, criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::bench::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_are_sane() {
        let samples = [4.0, 1.0, 3.0, 2.0, 5.0];
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(mean(&sorted), 3.0);
        assert_eq!(percentile(&sorted, 50.0), 3.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 5.0);
        assert!((std_dev(&sorted) - 1.5811).abs() < 1e-3);
    }

    #[test]
    fn bench_writes_report_json() {
        let dir = std::env::temp_dir().join(format!("strider-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The env var is process-global; this is the only test that sets it.
        std::env::set_var("STRIDER_BENCH_DIR", &dir);

        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("selftest");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.sample_size(4);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        let telemetry =
            crate::obs::Telemetry::with_clock(std::sync::Arc::new(crate::obs::FakeClock::new()));
        drop(telemetry.span("sum_phase"));
        group.record_phases("sum", &telemetry.report());
        group.finish();
        std::env::remove_var("STRIDER_BENCH_DIR");

        let report_path = dir.join("BENCH_selftest.json");
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report = JsonValue::parse(&text).unwrap();
        assert_eq!(report.field("group").unwrap().as_str().unwrap(), "selftest");
        let scenarios = report.field("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scenarios.len(), 2);
        for scenario in scenarios {
            assert!(scenario.field("mean_ns").unwrap().as_f64().unwrap() > 0.0);
            assert!(scenario.field("p99_ns").unwrap().as_f64().unwrap() > 0.0);
            assert_eq!(
                scenario
                    .field("throughput_elements")
                    .unwrap()
                    .as_u64()
                    .unwrap(),
                64
            );
        }
        let phases = report.field("phases").unwrap().field("sum").unwrap();
        assert!(phases.field("sum_phase").is_ok());
        std::fs::remove_file(&report_path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
