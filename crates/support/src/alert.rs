//! Declarative alerting: timestamped metric series, an alert-rules
//! engine with hysteresis, and Prometheus-text exposition.
//!
//! A scanner only pays off operationally when someone learns *when* a
//! machine went bad. This module turns the raw telemetry the sweeps
//! already produce into that signal, in three layers:
//!
//! - [`TimeSeries`] — a bounded ring of `(t_ns, value)` samples on the
//!   [`Clock`](crate::obs::Clock) seam, answering the windowed queries
//!   alerting needs: [`delta`](TimeSeries::delta),
//!   [`rate_per_sec`](TimeSeries::rate_per_sec),
//!   [`quantile_over`](TimeSeries::quantile_over), and
//!   [`absent_for`](TimeSeries::absent_for).
//! - [`AlertEngine`] — evaluates declarative [`AlertRule`]s
//!   ([`AlertCondition`]: threshold, ratio-vs-baseline, rate-of-change,
//!   absence, quantile-over-window) with `for_ns` hysteresis through a
//!   deterministic `Inactive → Pending → Firing → Inactive` state
//!   machine, appending every transition to a bounded [`AlertLog`] and,
//!   when given one, to a [`FlightRecorder`] so black boxes carry alert
//!   context.
//! - [`Exposition`] — renders counters, gauges,
//!   [`HistogramSketch`] cumulative buckets, and active alerts in
//!   Prometheus text format, written hermetically to
//!   `TELEMETRY_EXPO_<label>.prom` files like the `SCAN_TELEMETRY_*`
//!   JSON reports.
//!
//! Everything is driven by explicit `now_ns` readings, so the whole
//! plane is deterministic under [`FakeClock`](crate::obs::FakeClock).
//!
//! ```
//! use std::collections::BTreeMap;
//! use strider_support::alert::{AlertCondition, AlertEngine, AlertRule, AlertState, TimeSeries};
//!
//! let mut engine = AlertEngine::new();
//! engine.add_rule(
//!     AlertRule::new("slow_scan", "scan.duration_ns", AlertCondition::Above(1_000.0))
//!         .with_for_ns(2_000),
//! );
//! let mut metrics = BTreeMap::new();
//! let mut series = TimeSeries::new(16);
//! series.push(0, 5_000.0);
//! metrics.insert("scan.duration_ns".to_string(), series);
//!
//! engine.evaluate(&metrics, 0, None); // breach observed → Pending
//! assert_eq!(engine.state("slow_scan"), Some(AlertState::Pending));
//! engine.evaluate(&metrics, 2_000, None); // held for `for_ns` → Firing
//! assert_eq!(engine.state("slow_scan"), Some(AlertState::Firing));
//! ```

use crate::json::{FromJson, JsonError, JsonValue, ToJson};
use crate::obs::{FlightEventKind, FlightRecorder, HistogramSketch, TelemetryReport};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Timestamped series
// ---------------------------------------------------------------------

/// One timestamped sample in a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Clock reading when the sample was pushed.
    pub at_ns: u64,
    /// The sampled value.
    pub value: f64,
}

crate::impl_json!(struct TimePoint { at_ns, value });

/// A bounded ring of timestamped samples.
///
/// Pushing beyond capacity drops the oldest sample, so a continuous
/// monitor can feed a series forever without growth. Capacity is
/// clamped to at least 1 — both at construction and when deserialized —
/// so a series can never be configured to silently retain nothing.
///
/// Windowed queries take an explicit `now_ns` (the caller's clock
/// reading) rather than consulting a clock themselves; that keeps the
/// series a plain value type and evaluation deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    cap: usize,
    points: VecDeque<TimePoint>,
}

impl TimeSeries {
    /// An empty series retaining at most `cap` samples (clamped ≥ 1).
    pub fn new(cap: usize) -> Self {
        TimeSeries {
            cap: cap.max(1),
            points: VecDeque::new(),
        }
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, at_ns: u64, value: f64) {
        if self.points.len() == self.cap {
            self.points.pop_front();
        }
        self.points.push_back(TimePoint { at_ns, value });
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The newest value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.back().map(|p| p.value)
    }

    /// The newest sample's timestamp, if any.
    pub fn last_at(&self) -> Option<u64> {
        self.points.back().map(|p| p.at_ns)
    }

    /// All retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TimePoint> {
        self.points.iter()
    }

    /// All retained values, oldest first.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Mean over all retained values.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64)
    }

    /// Nearest-rank quantile (`pct` in 0..=100) over all retained values.
    pub fn quantile(&self, pct: f64) -> Option<f64> {
        Self::nearest_rank(self.points.iter().map(|p| p.value), pct)
    }

    /// Samples with `at_ns` inside the trailing window `[now_ns -
    /// window_ns, now_ns]`, oldest first.
    pub fn window(&self, window_ns: u64, now_ns: u64) -> impl Iterator<Item = &TimePoint> {
        let cutoff = now_ns.saturating_sub(window_ns);
        self.points.iter().filter(move |p| p.at_ns >= cutoff)
    }

    /// Newest minus oldest value over the trailing window; `None` with
    /// fewer than two in-window samples.
    pub fn delta(&self, window_ns: u64, now_ns: u64) -> Option<f64> {
        let mut window = self.window(window_ns, now_ns);
        let first = window.next()?;
        let last = window.last()?;
        Some(last.value - first.value)
    }

    /// [`delta`](Self::delta) divided by the in-window time span, in
    /// units per second; `None` when the span is zero or fewer than two
    /// samples are in the window.
    pub fn rate_per_sec(&self, window_ns: u64, now_ns: u64) -> Option<f64> {
        let mut window = self.window(window_ns, now_ns);
        let first = window.next()?;
        let last = window.last()?;
        let span_ns = last.at_ns.saturating_sub(first.at_ns);
        if span_ns == 0 {
            return None;
        }
        Some((last.value - first.value) / span_ns as f64 * 1e9)
    }

    /// Nearest-rank quantile over the trailing window's values.
    pub fn quantile_over(&self, pct: f64, window_ns: u64, now_ns: u64) -> Option<f64> {
        Self::nearest_rank(self.window(window_ns, now_ns).map(|p| p.value), pct)
    }

    /// Whether the series has received no sample inside the trailing
    /// window — true for an empty series, the staleness signal absence
    /// rules key on.
    pub fn absent_for(&self, window_ns: u64, now_ns: u64) -> bool {
        let cutoff = now_ns.saturating_sub(window_ns);
        self.points.back().is_none_or(|p| p.at_ns < cutoff)
    }

    fn nearest_rank(values: impl Iterator<Item = f64>, pct: f64) -> Option<f64> {
        let mut sorted: Vec<f64> = values.collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }
}

impl ToJson for TimeSeries {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("cap".to_string(), self.cap.to_json()),
            ("points".to_string(), self.points.to_json()),
        ])
    }
}

impl FromJson for TimeSeries {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let cap = usize::from_json(value.field("cap")?)?.max(1);
        let mut points = VecDeque::<TimePoint>::from_json(value.field("points")?)?;
        while points.len() > cap {
            points.pop_front();
        }
        Ok(TimeSeries { cap, points })
    }
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// How loud an alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a glance.
    Info,
    /// Needs attention soon.
    Warning,
    /// Needs attention now.
    Critical,
}

crate::impl_json!(
    enum Severity {
        Info,
        Warning,
        Critical,
    }
);

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        })
    }
}

/// The predicate an [`AlertRule`] evaluates against its metric.
///
/// Every condition is evaluated against a [`TimeSeries`] (or its
/// absence) at an explicit `now_ns`, yielding breached-or-not plus the
/// observed value that decided it.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertCondition {
    /// Last value strictly above the threshold.
    Above(f64),
    /// Last value strictly below the threshold.
    Below(f64),
    /// Last value strictly above `baseline * factor + floor` — the
    /// ratio-vs-baseline shape the monitor's latency rules use.
    AboveBaseline {
        /// The recorded healthy value.
        baseline: f64,
        /// Multiplicative slack on the baseline.
        factor: f64,
        /// Additive slack, so tiny baselines don't alert on noise.
        floor: f64,
    },
    /// Rate of change over the trailing window strictly above a
    /// per-second threshold.
    RateAbove {
        /// Threshold in value units per second.
        per_sec: f64,
        /// Trailing window the rate is computed over.
        window_ns: u64,
    },
    /// No sample has arrived inside the trailing window (a missing
    /// series counts as absent) — the staleness/liveness shape.
    Absent {
        /// Trailing window a sample must have landed in.
        window_ns: u64,
    },
    /// Nearest-rank quantile over the trailing window strictly above
    /// the threshold.
    QuantileAbove {
        /// Quantile in 0..=100 (e.g. 95.0).
        pct: f64,
        /// Trailing window the quantile is computed over.
        window_ns: u64,
        /// Threshold the quantile must stay at or under.
        threshold: f64,
    },
}

impl AlertCondition {
    /// Evaluates the condition, returning whether it is breached and the
    /// observed value that decided it (when one exists).
    pub fn eval(&self, series: Option<&TimeSeries>, now_ns: u64) -> (bool, Option<f64>) {
        match self {
            AlertCondition::Above(threshold) => match series.and_then(TimeSeries::last) {
                Some(v) => (v > *threshold, Some(v)),
                None => (false, None),
            },
            AlertCondition::Below(threshold) => match series.and_then(TimeSeries::last) {
                Some(v) => (v < *threshold, Some(v)),
                None => (false, None),
            },
            AlertCondition::AboveBaseline {
                baseline,
                factor,
                floor,
            } => match series.and_then(TimeSeries::last) {
                Some(v) => (v > baseline * factor + floor, Some(v)),
                None => (false, None),
            },
            AlertCondition::RateAbove { per_sec, window_ns } => {
                match series.and_then(|s| s.rate_per_sec(*window_ns, now_ns)) {
                    Some(rate) => (rate > *per_sec, Some(rate)),
                    None => (false, None),
                }
            }
            AlertCondition::Absent { window_ns } => {
                let absent = series.is_none_or(|s| s.absent_for(*window_ns, now_ns));
                (absent, series.and_then(TimeSeries::last))
            }
            AlertCondition::QuantileAbove {
                pct,
                window_ns,
                threshold,
            } => match series.and_then(|s| s.quantile_over(*pct, *window_ns, now_ns)) {
                Some(q) => (q > *threshold, Some(q)),
                None => (false, None),
            },
        }
    }
}

impl fmt::Display for AlertCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertCondition::Above(t) => write!(f, "> {t}"),
            AlertCondition::Below(t) => write!(f, "< {t}"),
            AlertCondition::AboveBaseline {
                baseline,
                factor,
                floor,
            } => write!(f, "> {baseline} × {factor} + {floor}"),
            AlertCondition::RateAbove { per_sec, window_ns } => {
                write!(
                    f,
                    "rate > {per_sec}/s over {}",
                    crate::obs::fmt_ns(*window_ns)
                )
            }
            AlertCondition::Absent { window_ns } => {
                write!(f, "absent for {}", crate::obs::fmt_ns(*window_ns))
            }
            AlertCondition::QuantileAbove {
                pct,
                window_ns,
                threshold,
            } => write!(
                f,
                "p{pct} over {} > {threshold}",
                crate::obs::fmt_ns(*window_ns)
            ),
        }
    }
}

// Multi-field enum variants are beyond `impl_json!` — hand-written,
// mirroring its `{"Variant": {...}}` shape so documents stay uniform.
impl ToJson for AlertCondition {
    fn to_json(&self) -> JsonValue {
        let (variant, body) = match self {
            AlertCondition::Above(t) => ("Above", t.to_json()),
            AlertCondition::Below(t) => ("Below", t.to_json()),
            AlertCondition::AboveBaseline {
                baseline,
                factor,
                floor,
            } => (
                "AboveBaseline",
                JsonValue::Obj(vec![
                    ("baseline".to_string(), baseline.to_json()),
                    ("factor".to_string(), factor.to_json()),
                    ("floor".to_string(), floor.to_json()),
                ]),
            ),
            AlertCondition::RateAbove { per_sec, window_ns } => (
                "RateAbove",
                JsonValue::Obj(vec![
                    ("per_sec".to_string(), per_sec.to_json()),
                    ("window_ns".to_string(), window_ns.to_json()),
                ]),
            ),
            AlertCondition::Absent { window_ns } => (
                "Absent",
                JsonValue::Obj(vec![("window_ns".to_string(), window_ns.to_json())]),
            ),
            AlertCondition::QuantileAbove {
                pct,
                window_ns,
                threshold,
            } => (
                "QuantileAbove",
                JsonValue::Obj(vec![
                    ("pct".to_string(), pct.to_json()),
                    ("window_ns".to_string(), window_ns.to_json()),
                    ("threshold".to_string(), threshold.to_json()),
                ]),
            ),
        };
        JsonValue::Obj(vec![(variant.to_string(), body)])
    }
}

impl FromJson for AlertCondition {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(t) = value.opt_field("Above") {
            return Ok(AlertCondition::Above(f64::from_json(t)?));
        }
        if let Some(t) = value.opt_field("Below") {
            return Ok(AlertCondition::Below(f64::from_json(t)?));
        }
        if let Some(body) = value.opt_field("AboveBaseline") {
            return Ok(AlertCondition::AboveBaseline {
                baseline: f64::from_json(body.field("baseline")?)?,
                factor: f64::from_json(body.field("factor")?)?,
                floor: f64::from_json(body.field("floor")?)?,
            });
        }
        if let Some(body) = value.opt_field("RateAbove") {
            return Ok(AlertCondition::RateAbove {
                per_sec: f64::from_json(body.field("per_sec")?)?,
                window_ns: u64::from_json(body.field("window_ns")?)?,
            });
        }
        if let Some(body) = value.opt_field("Absent") {
            return Ok(AlertCondition::Absent {
                window_ns: u64::from_json(body.field("window_ns")?)?,
            });
        }
        if let Some(body) = value.opt_field("QuantileAbove") {
            return Ok(AlertCondition::QuantileAbove {
                pct: f64::from_json(body.field("pct")?)?,
                window_ns: u64::from_json(body.field("window_ns")?)?,
                threshold: f64::from_json(body.field("threshold")?)?,
            });
        }
        Err(JsonError(format!(
            "no variant of AlertCondition matches {}",
            value.kind()
        )))
    }
}

/// One declarative alert: a named [`AlertCondition`] over one metric,
/// with `for_ns` hysteresis and a [`Severity`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Unique rule name; label on transitions, exposition, and flight
    /// events.
    pub name: String,
    /// The metric (series key) the condition reads.
    pub metric: String,
    /// The predicate.
    pub condition: AlertCondition,
    /// How long the condition must hold before `Pending` becomes
    /// `Firing`; 0 fires on first breach.
    pub for_ns: u64,
    /// How loud the alert is.
    pub severity: Severity,
}

crate::impl_json!(struct AlertRule { name, metric, condition, for_ns, severity });

impl AlertRule {
    /// A rule firing on first breach (`for_ns` 0) at
    /// [`Severity::Warning`].
    pub fn new(name: &str, metric: &str, condition: AlertCondition) -> Self {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            condition,
            for_ns: 0,
            severity: Severity::Warning,
        }
    }

    /// Requires the condition to hold `for_ns` before firing.
    pub fn with_for_ns(mut self, for_ns: u64) -> Self {
        self.for_ns = for_ns;
        self
    }

    /// Sets the severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} {}",
            self.name, self.severity, self.metric, self.condition
        )?;
        if self.for_ns > 0 {
            write!(f, " for {}", crate::obs::fmt_ns(self.for_ns))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// State machine
// ---------------------------------------------------------------------

/// Where a rule is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition not breached.
    Inactive,
    /// Breached, waiting out `for_ns`.
    Pending,
    /// Breached for at least `for_ns` — the alert is live.
    Firing,
}

crate::impl_json!(
    enum AlertState {
        Inactive,
        Pending,
        Firing,
    }
);

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        })
    }
}

/// One recorded state change of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Clock reading at the evaluation that transitioned.
    pub at_ns: u64,
    /// The rule's name.
    pub rule: String,
    /// The rule's severity.
    pub severity: Severity,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// The observed value that decided the evaluation, when one exists.
    pub value: Option<f64>,
    /// Human-readable context (the condition, hold time, resolution).
    pub detail: String,
}

crate::impl_json!(struct AlertTransition { at_ns, rule, severity, from, to, value, detail });

impl fmt::Display for AlertTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}] {} → {}",
            crate::obs::fmt_ns(self.at_ns),
            self.rule,
            self.severity,
            self.from,
            self.to
        )?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Bounded history of [`AlertTransition`]s, oldest first; once full the
/// oldest entries are dropped and counted.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertLog {
    cap: usize,
    /// Entries evicted after the log filled.
    pub dropped: u64,
    entries: VecDeque<AlertTransition>,
}

/// Default [`AlertLog`] retention.
pub const ALERT_LOG_CAPACITY: usize = 256;

impl Default for AlertLog {
    fn default() -> Self {
        Self::new(ALERT_LOG_CAPACITY)
    }
}

impl AlertLog {
    /// An empty log retaining at most `cap` transitions (clamped ≥ 1).
    pub fn new(cap: usize) -> Self {
        AlertLog {
            cap: cap.max(1),
            dropped: 0,
            entries: VecDeque::new(),
        }
    }

    /// Appends a transition, evicting (and counting) the oldest when
    /// full.
    pub fn push(&mut self, transition: AlertTransition) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(transition);
    }

    /// Retained transitions, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &AlertTransition> {
        self.entries.iter()
    }

    /// Number of retained transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded (and nothing dropped).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total transitions ever recorded, including dropped ones.
    pub fn total(&self) -> u64 {
        self.dropped + self.entries.len() as u64
    }

    /// The newest transition, if any.
    pub fn last(&self) -> Option<&AlertTransition> {
        self.entries.back()
    }

    /// Appends a transition to the in-memory log *and* WAL-appends it to
    /// `store` — one O(1) framed record per transition, so alert history
    /// survives a crash without ever rewriting the whole file.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors (including injected crashes); the
    /// in-memory push only happens after the record is durable.
    pub fn push_durable(
        &mut self,
        transition: AlertTransition,
        store: &crate::store::RecordStore,
    ) -> std::io::Result<()> {
        store.append(transition.to_json().render().as_bytes())?;
        self.push(transition);
        Ok(())
    }

    /// Rebuilds a log of capacity `cap` by replaying the WAL in `store`,
    /// oldest record first. Damage — a torn tail from a crash, a record
    /// that no longer parses — is returned as typed defects, never a
    /// panic: the log simply resumes from what survived.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors; damaged records are defects, not
    /// errors.
    pub fn recover(
        store: &crate::store::RecordStore,
        cap: usize,
    ) -> std::io::Result<(Self, Vec<crate::fault::Defect>)> {
        let recovered = store.recover()?;
        let mut defects = recovered.defects.clone();
        let mut log = AlertLog::new(cap);
        for record in &recovered.records {
            let parsed = std::str::from_utf8(&record.payload)
                .ok()
                .and_then(|text| JsonValue::parse(text).ok())
                .and_then(|value| AlertTransition::from_json(&value).ok());
            match parsed {
                Some(transition) => log.push(transition),
                None => defects.push(crate::fault::Defect::new(
                    crate::fault::DefectKind::BadRecord,
                    record.offset,
                    record.payload.len() as u64,
                    "alert log transition",
                )),
            }
        }
        Ok((log, defects))
    }
}

impl ToJson for AlertLog {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("cap".to_string(), self.cap.to_json()),
            ("dropped".to_string(), self.dropped.to_json()),
            ("entries".to_string(), self.entries.to_json()),
        ])
    }
}

impl FromJson for AlertLog {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let cap = usize::from_json(value.field("cap")?)?.max(1);
        let dropped = u64::from_json(value.field("dropped")?)?;
        let mut entries = VecDeque::<AlertTransition>::from_json(value.field("entries")?)?;
        let extra = entries.len().saturating_sub(cap);
        for _ in 0..extra {
            entries.pop_front();
        }
        Ok(AlertLog {
            cap,
            dropped: dropped + extra as u64,
            entries,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct RuleState {
    state: AlertState,
    /// Clock reading when the current breach streak began (meaningful in
    /// `Pending`/`Firing`).
    since_ns: u64,
    /// Lifetime transition count for this rule.
    transitions: u64,
}

/// Evaluates a set of [`AlertRule`]s against named [`TimeSeries`],
/// driving each rule's deterministic state machine.
///
/// Each [`evaluate`](Self::evaluate) pass walks the rules in insertion
/// order; a rule whose condition is breached moves `Inactive → Pending`
/// (or straight to `Firing` when `for_ns` is 0), fires once the breach
/// has held `for_ns`, and resolves back to `Inactive` the first
/// evaluation the condition clears. Every transition lands in the
/// [`AlertLog`] and, when a [`FlightRecorder`] is supplied, in the
/// flight ring as an [`FlightEventKind::Alert`] event.
#[derive(Debug, Clone, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    log: AlertLog,
}

impl AlertEngine {
    /// An engine with no rules and a default-capacity log.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine pre-loaded with `rules`.
    pub fn with_rules(rules: Vec<AlertRule>) -> Self {
        let mut engine = Self::new();
        for rule in rules {
            engine.add_rule(rule);
        }
        engine
    }

    /// Adds a rule (initially `Inactive`). A rule with a duplicate name
    /// replaces the existing one, resetting its state.
    pub fn add_rule(&mut self, rule: AlertRule) {
        let fresh = RuleState {
            state: AlertState::Inactive,
            since_ns: 0,
            transitions: 0,
        };
        if let Some(i) = self.rules.iter().position(|r| r.name == rule.name) {
            self.rules[i] = rule;
            self.states[i] = fresh;
        } else {
            self.rules.push(rule);
            self.states.push(fresh);
        }
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// The bounded transition history.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// A named rule's current state.
    pub fn state(&self, name: &str) -> Option<AlertState> {
        self.rules
            .iter()
            .position(|r| r.name == name)
            .map(|i| self.states[i].state)
    }

    /// Whether a named rule is currently firing.
    pub fn is_firing(&self, name: &str) -> bool {
        self.state(name) == Some(AlertState::Firing)
    }

    /// The rules currently firing, in evaluation order.
    pub fn firing(&self) -> Vec<&AlertRule> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.state == AlertState::Firing)
            .map(|(r, _)| r)
            .collect()
    }

    /// Lifetime transition count for a named rule.
    pub fn transitions(&self, name: &str) -> u64 {
        self.rules
            .iter()
            .position(|r| r.name == name)
            .map_or(0, |i| self.states[i].transitions)
    }

    /// Evaluates every rule against `metrics` at `now_ns`, returning the
    /// transitions this pass produced (also appended to the log and,
    /// when `recorder` is given, to the flight ring).
    pub fn evaluate(
        &mut self,
        metrics: &BTreeMap<String, TimeSeries>,
        now_ns: u64,
        recorder: Option<&FlightRecorder>,
    ) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        for (rule, slot) in self.rules.iter().zip(self.states.iter_mut()) {
            let (breached, value) = rule.condition.eval(metrics.get(&rule.metric), now_ns);
            let next = match (slot.state, breached) {
                (AlertState::Inactive, true) => {
                    slot.since_ns = now_ns;
                    if rule.for_ns == 0 {
                        Some((AlertState::Firing, format!("{} breached", rule.condition)))
                    } else {
                        Some((
                            AlertState::Pending,
                            format!(
                                "{} breached, holding for {}",
                                rule.condition,
                                crate::obs::fmt_ns(rule.for_ns)
                            ),
                        ))
                    }
                }
                (AlertState::Pending, true) => {
                    if now_ns.saturating_sub(slot.since_ns) >= rule.for_ns {
                        Some((
                            AlertState::Firing,
                            format!(
                                "{} held {}",
                                rule.condition,
                                crate::obs::fmt_ns(now_ns.saturating_sub(slot.since_ns))
                            ),
                        ))
                    } else {
                        None
                    }
                }
                (AlertState::Pending, false) => Some((
                    AlertState::Inactive,
                    "condition cleared before hold elapsed".to_string(),
                )),
                (AlertState::Firing, false) => Some((AlertState::Inactive, "resolved".to_string())),
                (AlertState::Inactive, false) | (AlertState::Firing, true) => None,
            };
            if let Some((to, detail)) = next {
                let transition = AlertTransition {
                    at_ns: now_ns,
                    rule: rule.name.clone(),
                    severity: rule.severity,
                    from: slot.state,
                    to,
                    value,
                    detail,
                };
                slot.state = to;
                slot.transitions += 1;
                if let Some(recorder) = recorder {
                    recorder.record(
                        FlightEventKind::Alert,
                        &transition.rule,
                        &format!(
                            "{} → {}: {}",
                            transition.from, transition.to, transition.detail
                        ),
                    );
                }
                self.log.push(transition.clone());
                out.push(transition);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Prometheus-text exposition
// ---------------------------------------------------------------------

/// Reduces a metric name to the Prometheus charset `[a-zA-Z0-9_:]`,
/// mapping every other character to `_` and prefixing `_` when the
/// result would start with a digit. Empty input becomes `"_"`.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    if out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

fn prom_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn prom_number(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

#[derive(Debug, Clone)]
struct Family {
    kind: &'static str,
    samples: Vec<String>,
}

/// A Prometheus-text-format snapshot builder.
///
/// Families render sorted by name and samples in insertion order, so
/// the same inputs always produce byte-identical output — the property
/// test in `tests/properties.rs` leans on that. Written snapshots land
/// as `TELEMETRY_EXPO_<label>.prom` next to the other scan artifacts.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    families: BTreeMap<String, Family>,
}

impl Exposition {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: String, kind: &'static str) -> &mut Family {
        self.families.entry(name).or_insert_with(|| Family {
            kind,
            samples: Vec::new(),
        })
    }

    /// Adds a counter sample.
    pub fn counter(&mut self, name: &str, value: u64) {
        let name = prom_name(name);
        self.family(name.clone(), "counter")
            .samples
            .push(format!("{name} {value}"));
    }

    /// Adds a counter sample with labels.
    pub fn counter_with(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let name = prom_name(name);
        let labels = Self::render_labels(labels);
        self.family(name.clone(), "counter")
            .samples
            .push(format!("{name}{labels} {value}"));
    }

    /// Adds a gauge sample.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let name = prom_name(name);
        let value = prom_number(value);
        self.family(name.clone(), "gauge")
            .samples
            .push(format!("{name} {value}"));
    }

    /// Adds a gauge sample with labels.
    pub fn gauge_with(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let name = prom_name(name);
        let labels = Self::render_labels(labels);
        let value = prom_number(value);
        self.family(name.clone(), "gauge")
            .samples
            .push(format!("{name}{labels} {value}"));
    }

    /// Adds a histogram family from a [`HistogramSketch`]: cumulative
    /// `_bucket{le="..."}` lines per sketch bucket, a final `+Inf`
    /// bucket equal to the count, and exact `_sum`/`_count` lines.
    pub fn histogram(&mut self, name: &str, sketch: &HistogramSketch) {
        let name = prom_name(name);
        let family = self.family(name.clone(), "histogram");
        for (bound, cumulative) in sketch.cumulative_buckets() {
            family.samples.push(format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                prom_number(bound)
            ));
        }
        family
            .samples
            .push(format!("{name}_bucket{{le=\"+Inf\"}} {}", sketch.count()));
        family
            .samples
            .push(format!("{name}_sum {}", prom_number(sketch.sum())));
        family
            .samples
            .push(format!("{name}_count {}", sketch.count()));
    }

    /// Adds the alerting families for an engine: one
    /// `strider_alert_active{rule,severity}` gauge per rule (1 while
    /// firing) and one `strider_alert_transitions_total{rule}` counter.
    pub fn alerts(&mut self, engine: &AlertEngine) {
        for rule in engine.rules() {
            let active = if engine.is_firing(&rule.name) {
                1.0
            } else {
                0.0
            };
            self.gauge_with(
                "strider_alert_active",
                &[
                    ("rule", rule.name.as_str()),
                    ("severity", &rule.severity.to_string()),
                ],
                active,
            );
            self.counter_with(
                "strider_alert_transitions_total",
                &[("rule", rule.name.as_str())],
                engine.transitions(&rule.name),
            );
        }
    }

    fn render_labels(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_label_value(v)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Whether no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders the snapshot: per family (sorted by name) a `# TYPE`
    /// header then its samples, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            out.push_str(&format!("# TYPE {name} {}\n", family.kind));
            for sample in &family.samples {
                out.push_str(sample);
                out.push('\n');
            }
        }
        out
    }

    /// Writes the snapshot as `TELEMETRY_EXPO_<label>.prom` into
    /// [`crate::bench::report_dir`] and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content as `InvalidInput`.
    pub fn write(&self, label: &str) -> std::io::Result<PathBuf> {
        self.write_in(&crate::bench::report_dir(), label)
    }

    /// Writes the snapshot as `TELEMETRY_EXPO_<label>.prom` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content as `InvalidInput`.
    pub fn write_in(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        let path = dir.join(format!(
            "TELEMETRY_EXPO_{}.prom",
            crate::obs::checked_label(label)?
        ));
        crate::store::atomic_write_file(&path, self.render().as_bytes())?;
        Ok(path)
    }
}

impl TelemetryReport {
    /// The report's counters, gauges, and histogram sketches as a
    /// Prometheus-text [`Exposition`] snapshot, plus per-phase
    /// allocation attribution (`strider_phase_allocs_total` /
    /// `strider_phase_alloc_bytes_total`, labelled by span name) from
    /// the [`crate::prof`] counting allocator.
    pub fn prometheus(&self) -> Exposition {
        let mut expo = Exposition::new();
        for (name, value) in &self.counters {
            expo.counter(name, *value);
        }
        for (name, value) in &self.gauges {
            expo.gauge(name, *value);
        }
        for (name, sketch) in &self.histograms {
            expo.histogram(name, sketch);
        }
        for (phase, total) in &self.phase_totals() {
            if total.allocs > 0 || total.alloc_bytes > 0 {
                expo.counter_with(
                    "strider_phase_allocs_total",
                    &[("phase", phase)],
                    total.allocs,
                );
                expo.counter_with(
                    "strider_phase_alloc_bytes_total",
                    &[("phase", phase)],
                    total.alloc_bytes,
                );
            }
        }
        expo
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into [`crate::bench::report_dir`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content as `InvalidInput`.
    pub fn write_prom(&self, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write(label)
    }

    /// Writes [`prometheus`](Self::prometheus) as
    /// `TELEMETRY_EXPO_<label>.prom` into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects labels with no alphanumeric
    /// content as `InvalidInput`.
    pub fn write_prom_in(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        self.prometheus().write_in(dir, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new(64);
        for &(at, v) in points {
            s.push(at, v);
        }
        s
    }

    #[test]
    fn time_series_evicts_oldest_at_capacity() {
        let mut s = TimeSeries::new(3);
        for i in 0..5u64 {
            s.push(i * 100, i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), vec![2.0, 3.0, 4.0]);
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.last_at(), Some(400));
    }

    #[test]
    fn zero_capacity_clamps_to_one_even_through_json() {
        let mut s = TimeSeries::new(0);
        s.push(10, 1.0);
        s.push(20, 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.last(), Some(2.0));

        // A hand-crafted document claiming cap 0 still decodes usable.
        let doc = r#"{"cap": 0, "points": [{"at_ns": 1, "value": 9.5}]}"#;
        let parsed = TimeSeries::from_json(&JsonValue::parse(doc).unwrap()).unwrap();
        assert_eq!(parsed.capacity(), 1);
        assert_eq!(parsed.last(), Some(9.5));
    }

    #[test]
    fn time_series_round_trips_through_json() {
        let s = series(&[(100, 1.5), (200, 2.5), (300, -3.0)]);
        let parsed = TimeSeries::from_json(&JsonValue::parse(&s.to_json().render()).unwrap());
        assert_eq!(parsed.unwrap(), s);
    }

    #[test]
    fn windowed_queries_respect_the_cutoff() {
        let s = series(&[(0, 10.0), (500, 20.0), (1_000, 26.0)]);
        // Window [400, 1000] sees the last two points.
        assert_eq!(s.delta(600, 1_000), Some(6.0));
        let rate = s.rate_per_sec(600, 1_000).unwrap();
        assert!((rate - 6.0 / 500.0 * 1e9).abs() < 1e-6);
        // Whole history.
        assert_eq!(s.delta(u64::MAX, 1_000), Some(16.0));
        // One in-window sample → no delta/rate.
        assert_eq!(s.delta(100, 1_000), None);
        assert_eq!(s.rate_per_sec(100, 1_000), None);
        // Quantiles over the window.
        assert_eq!(s.quantile_over(100.0, 600, 1_000), Some(26.0));
        assert_eq!(s.quantile_over(0.0, u64::MAX, 1_000), Some(10.0));
    }

    #[test]
    fn absence_tracks_the_newest_sample() {
        let s = series(&[(1_000, 1.0)]);
        assert!(!s.absent_for(500, 1_200)); // sample at 1000 >= cutoff 700
        assert!(s.absent_for(500, 2_000)); // cutoff 1500 > 1000
        assert!(TimeSeries::new(4).absent_for(u64::MAX, 0));
    }

    #[test]
    fn rate_is_none_when_span_is_zero() {
        let s = series(&[(100, 1.0), (100, 5.0)]);
        assert_eq!(s.rate_per_sec(u64::MAX, 100), None);
    }

    #[test]
    fn conditions_serialize_and_round_trip() {
        for condition in [
            AlertCondition::Above(1.5),
            AlertCondition::Below(-2.0),
            AlertCondition::AboveBaseline {
                baseline: 100.0,
                factor: 3.0,
                floor: 50.0,
            },
            AlertCondition::RateAbove {
                per_sec: 10.0,
                window_ns: 1_000,
            },
            AlertCondition::Absent { window_ns: 5_000 },
            AlertCondition::QuantileAbove {
                pct: 95.0,
                window_ns: 2_000,
                threshold: 7.0,
            },
        ] {
            let json = condition.to_json().render();
            let parsed = AlertCondition::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
            assert_eq!(parsed, condition);
        }
    }

    #[test]
    fn hysteresis_holds_pending_until_for_ns_elapses() {
        let mut engine = AlertEngine::new();
        engine.add_rule(
            AlertRule::new("hot", "m", AlertCondition::Above(10.0))
                .with_for_ns(1_000)
                .with_severity(Severity::Critical),
        );
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), series(&[(0, 50.0)]));

        let t = engine.evaluate(&metrics, 0, None);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Pending);
        // Still inside the hold — no new transition, not firing.
        assert!(engine.evaluate(&metrics, 999, None).is_empty());
        assert_eq!(engine.state("hot"), Some(AlertState::Pending));
        assert!(engine.firing().is_empty());
        // Hold elapses exactly at for_ns.
        let t = engine.evaluate(&metrics, 1_000, None);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
        assert!(engine.is_firing("hot"));
        // Clears → resolves in one pass.
        metrics.get_mut("m").unwrap().push(1_500, 1.0);
        let t = engine.evaluate(&metrics, 1_500, None);
        assert_eq!(t[0].to, AlertState::Inactive);
        assert_eq!(engine.transitions("hot"), 3);
        assert_eq!(engine.log().len(), 3);
    }

    #[test]
    fn pending_that_clears_never_fires() {
        let mut engine = AlertEngine::new();
        engine.add_rule(AlertRule::new("hot", "m", AlertCondition::Above(10.0)).with_for_ns(1_000));
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), series(&[(0, 50.0)]));
        engine.evaluate(&metrics, 0, None);
        metrics.get_mut("m").unwrap().push(500, 1.0);
        let t = engine.evaluate(&metrics, 500, None);
        assert_eq!(t[0].from, AlertState::Pending);
        assert_eq!(t[0].to, AlertState::Inactive);
        assert!(engine.log().entries().all(|e| e.to != AlertState::Firing));
    }

    #[test]
    fn for_ns_zero_fires_on_first_breach_and_refires() {
        let mut engine = AlertEngine::new();
        engine.add_rule(AlertRule::new("hot", "m", AlertCondition::Above(10.0)));
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), series(&[(0, 50.0)]));
        assert_eq!(engine.evaluate(&metrics, 0, None)[0].to, AlertState::Firing);
        metrics.get_mut("m").unwrap().push(100, 1.0);
        assert_eq!(
            engine.evaluate(&metrics, 100, None)[0].to,
            AlertState::Inactive
        );
        metrics.get_mut("m").unwrap().push(200, 99.0);
        assert_eq!(
            engine.evaluate(&metrics, 200, None)[0].to,
            AlertState::Firing
        );
        assert_eq!(engine.transitions("hot"), 3);
    }

    #[test]
    fn absent_rule_fires_for_missing_and_stale_series() {
        let mut engine = AlertEngine::new();
        engine.add_rule(AlertRule::new(
            "stale",
            "heartbeat",
            AlertCondition::Absent { window_ns: 1_000 },
        ));
        // Missing series counts as absent.
        assert!(!engine.evaluate(&BTreeMap::new(), 0, None).is_empty());
        assert!(engine.is_firing("stale"));
        // A fresh sample resolves it.
        let mut metrics = BTreeMap::new();
        metrics.insert("heartbeat".to_string(), series(&[(5_000, 1.0)]));
        engine.evaluate(&metrics, 5_100, None);
        assert!(!engine.is_firing("stale"));
        // Going stale re-fires it.
        engine.evaluate(&metrics, 7_000, None);
        assert!(engine.is_firing("stale"));
    }

    #[test]
    fn transitions_land_in_the_flight_recorder() {
        use crate::obs::FakeClock;
        use std::sync::Arc;
        let clock = Arc::new(FakeClock::new());
        let recorder = FlightRecorder::new(clock);
        let mut engine = AlertEngine::new();
        engine.add_rule(AlertRule::new("hot", "m", AlertCondition::Above(10.0)));
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), series(&[(0, 50.0)]));
        engine.evaluate(&metrics, 0, Some(&recorder));
        let dump = recorder.snapshot();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump.events[0].kind, FlightEventKind::Alert);
        assert_eq!(dump.events[0].what, "hot");
        assert!(dump.events[0].detail.contains("inactive → firing"));
    }

    #[test]
    fn alert_log_bounds_and_counts_drops() {
        let mut log = AlertLog::new(2);
        for i in 0..5u64 {
            log.push(AlertTransition {
                at_ns: i,
                rule: "r".to_string(),
                severity: Severity::Info,
                from: AlertState::Inactive,
                to: AlertState::Firing,
                value: None,
                detail: String::new(),
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 3);
        assert_eq!(log.total(), 5);
        assert_eq!(log.last().unwrap().at_ns, 4);
        // Round-trip keeps the accounting.
        let parsed = AlertLog::from_json(&JsonValue::parse(&log.to_json().render()).unwrap());
        assert_eq!(parsed.unwrap(), log);
    }

    #[test]
    fn alert_log_survives_crash_through_the_wal() {
        let dir = std::env::temp_dir().join(format!("strider-alertwal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = crate::store::RecordStore::open(dir.join("alerts.wal")).unwrap();
        let mut log = AlertLog::new(8);
        for i in 0..3u64 {
            log.push_durable(
                AlertTransition {
                    at_ns: i,
                    rule: format!("rule-{i}"),
                    severity: Severity::Warning,
                    from: AlertState::Inactive,
                    to: AlertState::Firing,
                    value: Some(i as f64),
                    detail: "breach".to_string(),
                },
                &store,
            )
            .unwrap();
        }
        // Tear the file mid-frame, as a crash would, then recover.
        let path = store.path().to_path_buf();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let store = crate::store::RecordStore::open(&path).unwrap();
        let (recovered, defects) = AlertLog::recover(&store, 8).unwrap();
        assert_eq!(recovered.len(), 2, "torn newest entry falls away");
        assert_eq!(recovered.last().unwrap().rule, "rule-1");
        assert!(
            defects.is_empty(),
            "open() already repaired the tail: {defects:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prom_name_maps_to_the_legal_charset() {
        assert_eq!(prom_name("files.duration_ns"), "files_duration_ns");
        assert_eq!(prom_name("sweep:total"), "sweep:total");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn exposition_renders_sorted_families_with_type_headers() {
        let mut expo = Exposition::new();
        expo.gauge("zeta", 1.5);
        expo.counter("alpha.total", 7);
        expo.gauge_with("zeta", &[("shard", "s-1")], 2.0);
        let text = expo.render();
        let alpha = text.find("# TYPE alpha_total counter").unwrap();
        let zeta = text.find("# TYPE zeta gauge").unwrap();
        assert!(alpha < zeta);
        assert!(text.contains("alpha_total 7\n"));
        assert!(text.contains("zeta{shard=\"s-1\"} 2\n"));
        // Deterministic: re-render is byte-identical.
        assert_eq!(expo.render(), text);
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_sums_exactly() {
        let mut sketch = HistogramSketch::new();
        sketch.record(0.0);
        sketch.record(100.0);
        sketch.record(100.0);
        sketch.record(10_000.0);
        let mut expo = Exposition::new();
        expo.histogram("probe.ns", &sketch);
        let text = expo.render();
        assert!(text.contains("# TYPE probe_ns histogram"));
        assert!(text.contains("probe_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("probe_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("probe_ns_count 4\n"));
        assert!(text.contains("probe_ns_sum 10200\n"));
        // Cumulative counts never decrease.
        let mut previous = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= previous, "bucket counts must be cumulative");
            previous = count;
        }
    }

    #[test]
    fn active_alerts_appear_in_the_exposition() {
        let mut engine = AlertEngine::new();
        engine.add_rule(
            AlertRule::new("hot", "m", AlertCondition::Above(10.0))
                .with_severity(Severity::Critical),
        );
        engine.add_rule(AlertRule::new("cold", "m", AlertCondition::Below(-10.0)));
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), series(&[(0, 50.0)]));
        engine.evaluate(&metrics, 0, None);
        let mut expo = Exposition::new();
        expo.alerts(&engine);
        let text = expo.render();
        assert!(text.contains("strider_alert_active{rule=\"hot\",severity=\"critical\"} 1\n"));
        assert!(text.contains("strider_alert_active{rule=\"cold\",severity=\"warning\"} 0\n"));
        assert!(text.contains("strider_alert_transitions_total{rule=\"hot\"} 1\n"));
    }

    #[test]
    fn exposition_writes_a_prom_file() {
        let dir = std::env::temp_dir().join("strider_alert_expo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut expo = Exposition::new();
        expo.counter("sweeps.total", 3);
        let path = expo.write_in(&dir, "unit label!").unwrap();
        assert!(path.ends_with("TELEMETRY_EXPO_unit_label.prom"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("sweeps_total 3"));
        std::fs::remove_file(&path).unwrap();
        assert!(Exposition::new().write_in(&dir, "///").is_err());
    }

    #[test]
    fn rule_round_trips_and_displays() {
        let rule = AlertRule::new(
            "latency.files",
            "files.duration_ns",
            AlertCondition::AboveBaseline {
                baseline: 1_000.0,
                factor: 3.0,
                floor: 500.0,
            },
        )
        .with_for_ns(2_000_000)
        .with_severity(Severity::Warning);
        let parsed = AlertRule::from_json(&JsonValue::parse(&rule.to_json().render()).unwrap());
        assert_eq!(parsed.unwrap(), rule);
        let line = rule.to_string();
        assert!(line.contains("latency.files"));
        assert!(line.contains("warning"));
    }
}
