//! The binary hive format: cell-based serialization and the independent
//! raw parser used by low-level and outside-the-box scans.
//!
//! Layout (all integers little-endian), modeled on the real `regf` format in
//! spirit:
//!
//! ```text
//! header: magic "SREGF1\0\0" | u32 version | u32 root-cell offset
//! cells:  u16 tag | payload…          (offsets are absolute byte positions)
//!   'nk' key node:     name | u64 timestamp | u32 subkey-list off | u32 value-list off
//!   'lf' subkey list:  u32 count | count × u32 key-cell offsets
//!   'vl' value list:   u32 count | count × u32 value-cell offsets
//!   'vk' value record: name | u32 type | u32 declared data len | u32 data-cell off
//!   'db' data cell:    u32 stored len | bytes
//! ```
//!
//! A value record whose *declared* length disagrees with its data cell's
//! *stored* length is exactly the corruption the paper hit in `AppInit_DLLs`:
//! RegEdit showed nothing while the raw parse reported data. The parser here
//! does what a careful forensic parser must: it salvages the stored bytes and
//! flags the value as corrupt instead of failing the whole hive.

use crate::key::{Key, Value, ValueData};
use std::fmt;
use strider_nt_core::{NtString, Tick};
use strider_support::bytes::{Buf, BufMut, BytesMut};
use strider_support::fault::{Defect, DefectKind, Salvaged};

const MAGIC: &[u8; 8] = b"SREGF1\0\0";
const VERSION: u32 = 1;
const TAG_NK: u16 = 0x6B6E; // "nk"
const TAG_LF: u16 = 0x666C; // "lf"
const TAG_VL: u16 = 0x6C76; // "vl"
const TAG_VK: u16 = 0x6B76; // "vk"
const TAG_DB: u16 = 0x6264; // "db"

/// Serializes a key tree to hive bytes. The `root` key's own name is stored
/// so offline mounting can label the tree.
pub(crate) fn write_hive(root: &Key) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(0); // root offset backpatched below
    let root_off = write_key(&mut buf, root);
    let bytes = buf.as_mut();
    bytes[12..16].copy_from_slice(&root_off.to_le_bytes());
    buf.to_vec()
}

fn put_name(buf: &mut BytesMut, name: &NtString) {
    buf.put_u16_le(name.len() as u16);
    for &u in name.units() {
        buf.put_u16_le(u);
    }
}

fn write_key(buf: &mut BytesMut, key: &Key) -> u32 {
    // Children first so the parent can reference their offsets.
    let subkey_offs: Vec<u32> = key.subkeys.iter().map(|k| write_key(buf, k)).collect();
    let value_offs: Vec<u32> = key.values.iter().map(|v| write_value(buf, v)).collect();

    let subkey_list_off = if subkey_offs.is_empty() {
        0
    } else {
        let off = buf.len() as u32;
        buf.put_u16_le(TAG_LF);
        buf.put_u32_le(subkey_offs.len() as u32);
        for o in &subkey_offs {
            buf.put_u32_le(*o);
        }
        off
    };
    let value_list_off = if value_offs.is_empty() {
        0
    } else {
        let off = buf.len() as u32;
        buf.put_u16_le(TAG_VL);
        buf.put_u32_le(value_offs.len() as u32);
        for o in &value_offs {
            buf.put_u32_le(*o);
        }
        off
    };

    let off = buf.len() as u32;
    buf.put_u16_le(TAG_NK);
    put_name(buf, &key.name);
    buf.put_u64_le(key.timestamp.0);
    buf.put_u32_le(subkey_list_off);
    buf.put_u32_le(value_list_off);
    off
}

fn encode_data(data: &ValueData) -> Vec<u8> {
    match data {
        ValueData::Sz(s) | ValueData::ExpandSz(s) => {
            let mut out = Vec::with_capacity(s.len() * 2);
            for &u in s.units() {
                out.extend_from_slice(&u.to_le_bytes());
            }
            out
        }
        ValueData::Binary(b) => b.clone(),
        ValueData::Dword(d) => d.to_le_bytes().to_vec(),
        ValueData::MultiSz(v) => {
            // Strings separated by NUL units, double-NUL terminated.
            let mut out = Vec::new();
            for s in v {
                for &u in s.units() {
                    out.extend_from_slice(&u.to_le_bytes());
                }
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            out.extend_from_slice(&0u16.to_le_bytes());
            out
        }
    }
}

fn write_value(buf: &mut BytesMut, value: &Value) -> u32 {
    let data = encode_data(&value.data);
    let data_off = buf.len() as u32;
    buf.put_u16_le(TAG_DB);
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(&data);

    let off = buf.len() as u32;
    buf.put_u16_le(TAG_VK);
    put_name(buf, &value.name);
    buf.put_u32_le(value.data.type_code());
    // A corrupted record declares more data than its cell stores.
    let declared = if value.corrupt_data {
        data.len() as u32 + 8
    } else {
        data.len() as u32
    };
    buf.put_u32_le(declared);
    buf.put_u32_le(data_off);
    off
}

/// Error produced while parsing hive bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HiveFormatError {
    /// The bytes ran out inside the named structure.
    Truncated {
        /// What was being parsed.
        context: &'static str,
    },
    /// Wrong magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// A cell offset pointed outside the hive or at the wrong cell type.
    BadCell {
        /// The offending offset.
        offset: u32,
        /// What was expected there.
        expected: &'static str,
    },
    /// The key graph exceeded the cell budget (cycle).
    CellCycle,
}

impl fmt::Display for HiveFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HiveFormatError::Truncated { context } => {
                write!(f, "hive truncated while reading {context}")
            }
            HiveFormatError::BadMagic => write!(f, "bad hive magic"),
            HiveFormatError::BadVersion(v) => write!(f, "unsupported hive version {v}"),
            HiveFormatError::BadCell { offset, expected } => {
                write!(f, "bad cell at offset {offset}: expected {expected}")
            }
            HiveFormatError::CellCycle => write!(f, "cycle detected in hive cells"),
        }
    }
}

impl std::error::Error for HiveFormatError {}

/// Converts a strict-parse error into the workspace-wide salvage [`Defect`]
/// vocabulary. `fallback_off` locates the damage when the error itself does
/// not carry an offset; `total` bounds the bytes-lost estimate.
fn defect_for(e: &HiveFormatError, fallback_off: u32, total: u64) -> Defect {
    let (kind, offset, context): (DefectKind, u64, &'static str) = match e {
        HiveFormatError::Truncated { context } => {
            (DefectKind::Truncated, fallback_off as u64, context)
        }
        HiveFormatError::BadMagic => (DefectKind::BadMagic, 0, "hive magic"),
        HiveFormatError::BadVersion(_) => (DefectKind::BadVersion, 8, "hive version"),
        HiveFormatError::BadCell { offset, expected } => {
            (DefectKind::BadRecord, *offset as u64, expected)
        }
        HiveFormatError::CellCycle => (DefectKind::Cycle, fallback_off as u64, "cell graph"),
    };
    // A stale cell offset can point past a truncated image's end; a defect
    // always locates a position *within* the bytes that exist.
    let offset = offset.min(total);
    let bytes_lost = match kind {
        DefectKind::Truncated | DefectKind::BadMagic | DefectKind::BadVersion => {
            total.saturating_sub(offset)
        }
        // A skipped cell's true footprint is unknowable without trusting
        // the bytes that just failed to parse; report only its location.
        DefectKind::BadRecord | DefectKind::Cycle => 0,
    };
    Defect::new(kind, offset, bytes_lost, context)
}

/// A value recovered from raw hive bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawValue {
    /// The counted value name.
    pub name: NtString,
    /// The on-disk type code.
    pub type_code: u32,
    /// The stored data bytes (salvaged even when corrupt).
    pub data: Vec<u8>,
    /// Declared length disagreed with the stored cell — the record is
    /// corrupt. RegEdit-level views drop such values; the raw view keeps
    /// them, which is the paper's Registry false-positive mechanism.
    pub corrupt: bool,
}

/// A key recovered from raw hive bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawKey {
    /// The counted key name.
    pub name: NtString,
    /// Last-write time.
    pub timestamp: Tick,
    /// Values on this key.
    pub values: Vec<RawValue>,
    /// Child keys.
    pub subkeys: Vec<RawKey>,
}

/// A hive parsed from raw bytes, independent of the live tree code.
///
/// # Examples
///
/// ```
/// use strider_hive::{Key, Value, ValueData, RawHive, Hive};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut root = Key::new("SOFTWARE");
/// root.set_value(Value::new("v", ValueData::Dword(1)));
/// let hive = Hive::from_root("HKLM\\SOFTWARE".parse()?, "C:\\sw".parse()?, root);
/// let raw = RawHive::parse(&hive.to_bytes())?;
/// assert_eq!(raw.root().name.to_win32_lossy(), "SOFTWARE");
/// assert_eq!(raw.all_values().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RawHive {
    root: RawKey,
    byte_len: u64,
}

struct Parser<'a> {
    bytes: &'a [u8],
    cells_visited: usize,
    cell_budget: usize,
    defects: Vec<Defect>,
}

/// Validates the 16-byte header and returns the root-cell offset. All reads
/// are length-checked; a header shorter than 16 bytes is a [`Truncated`]
/// error, never a panic.
///
/// [`Truncated`]: HiveFormatError::Truncated
fn parse_header(bytes: &[u8]) -> Result<u32, HiveFormatError> {
    if bytes.len() < 16 {
        return Err(HiveFormatError::Truncated { context: "header" });
    }
    if &bytes[0..8] != MAGIC {
        return Err(HiveFormatError::BadMagic);
    }
    let mut s = &bytes[8..16];
    let version = read_u32(&mut s, "header version")?;
    if version != VERSION {
        return Err(HiveFormatError::BadVersion(version));
    }
    read_u32(&mut s, "header root offset")
}

impl RawHive {
    /// Parses hive bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HiveFormatError`] on truncation, bad header, dangling cell
    /// offsets, or cycles. Corrupt value *records* do not fail the parse;
    /// they are salvaged and flagged.
    pub fn parse(bytes: &[u8]) -> Result<Self, HiveFormatError> {
        let root_off = parse_header(bytes)?;
        let mut parser = Parser::new(bytes);
        let root = parser.parse_key(root_off)?;
        Ok(Self {
            root,
            byte_len: bytes.len() as u64,
        })
    }

    /// Best-effort parse for damaged hives: every cell that fails to parse
    /// becomes a [`Defect`] and is skipped, keeping the rest of the tree —
    /// a rootkit (or a torn write) that corrupts one bin must not blind the
    /// whole registry diff. Never panics and never errors; a hive damaged
    /// beyond the header salvages to an empty root plus the defect that
    /// explains why.
    pub fn parse_salvage(bytes: &[u8]) -> Salvaged<Self> {
        let byte_len = bytes.len() as u64;
        let empty_root = || RawKey {
            name: NtString::from(""),
            timestamp: Tick(0),
            values: Vec::new(),
            subkeys: Vec::new(),
        };
        let root_off = match parse_header(bytes) {
            Ok(off) => off,
            Err(e) => {
                return Salvaged {
                    value: Self {
                        root: empty_root(),
                        byte_len,
                    },
                    defects: vec![defect_for(&e, 0, byte_len)],
                }
            }
        };
        let mut parser = Parser::new(bytes);
        let root = match parser.parse_key_salvage(root_off) {
            Ok(root) => root,
            Err(e) => {
                parser.record(&e, root_off);
                empty_root()
            }
        };
        Salvaged {
            value: Self { root, byte_len },
            defects: parser.defects,
        }
    }

    /// The recovered root key.
    pub fn root(&self) -> &RawKey {
        &self.root
    }

    /// Hive size in bytes (drives the cost model).
    pub fn byte_len(&self) -> u64 {
        self.byte_len
    }

    /// Flattens every value in the hive as `(key-path-components, value)`.
    pub fn all_values(&self) -> Vec<(Vec<NtString>, &RawValue)> {
        let mut out = Vec::new();
        fn walk<'h>(
            key: &'h RawKey,
            path: &mut Vec<NtString>,
            out: &mut Vec<(Vec<NtString>, &'h RawValue)>,
        ) {
            for v in &key.values {
                out.push((path.clone(), v));
            }
            for sk in &key.subkeys {
                path.push(sk.name.clone());
                walk(sk, path, out);
                path.pop();
            }
        }
        walk(&self.root, &mut Vec::new(), &mut out);
        out
    }

    /// Descends from the root along case-insensitive component names.
    pub fn descend(&self, components: &[NtString]) -> Option<&RawKey> {
        let mut cur = &self.root;
        for c in components {
            cur = cur.subkeys.iter().find(|k| k.name.eq_ignore_case(c))?;
        }
        Some(cur)
    }
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            cells_visited: 0,
            // Generous: every cell is ≥ 6 bytes, so this bounds any cycle.
            cell_budget: bytes.len() / 4 + 16,
            defects: Vec::new(),
        }
    }

    /// Records a salvage defect; consecutive cycle defects collapse into
    /// one (once the cell budget is gone, every remaining cell reports it).
    fn record(&mut self, e: &HiveFormatError, fallback_off: u32) {
        let d = defect_for(e, fallback_off, self.bytes.len() as u64);
        if d.kind == DefectKind::Cycle
            && self
                .defects
                .last()
                .is_some_and(|p| p.kind == DefectKind::Cycle)
        {
            return;
        }
        self.defects.push(d);
    }

    fn slice_from(&self, off: u32, context: &'static str) -> Result<&'a [u8], HiveFormatError> {
        self.bytes
            .get(off as usize..)
            .filter(|s| !s.is_empty())
            .ok_or(HiveFormatError::Truncated { context })
    }

    fn bump(&mut self) -> Result<(), HiveFormatError> {
        self.cells_visited += 1;
        if self.cells_visited > self.cell_budget {
            return Err(HiveFormatError::CellCycle);
        }
        Ok(())
    }

    fn parse_key(&mut self, off: u32) -> Result<RawKey, HiveFormatError> {
        self.bump()?;
        let mut s = self.slice_from(off, "key cell")?;
        let tag = read_u16(&mut s, "key tag")?;
        if tag != TAG_NK {
            return Err(HiveFormatError::BadCell {
                offset: off,
                expected: "nk",
            });
        }
        let name = read_name(&mut s, "key name")?;
        let timestamp = Tick(read_u64(&mut s, "key timestamp")?);
        let subkey_list_off = read_u32(&mut s, "subkey list offset")?;
        let value_list_off = read_u32(&mut s, "value list offset")?;

        let mut subkeys = Vec::new();
        if subkey_list_off != 0 {
            for child_off in self.parse_list(subkey_list_off, TAG_LF, "subkey list")? {
                subkeys.push(self.parse_key(child_off)?);
            }
        }
        let mut values = Vec::new();
        if value_list_off != 0 {
            for v_off in self.parse_list(value_list_off, TAG_VL, "value list")? {
                values.push(self.parse_value(v_off)?);
            }
        }
        Ok(RawKey {
            name,
            timestamp,
            values,
            subkeys,
        })
    }

    /// Salvage-mode key parse: the key's own header must parse (the caller
    /// records a defect and skips the key otherwise), but damage in its
    /// lists, children, or values is recorded and stepped over.
    fn parse_key_salvage(&mut self, off: u32) -> Result<RawKey, HiveFormatError> {
        self.bump()?;
        let mut s = self.slice_from(off, "key cell")?;
        let tag = read_u16(&mut s, "key tag")?;
        if tag != TAG_NK {
            return Err(HiveFormatError::BadCell {
                offset: off,
                expected: "nk",
            });
        }
        let name = read_name(&mut s, "key name")?;
        let timestamp = Tick(read_u64(&mut s, "key timestamp")?);
        let subkey_list_off = read_u32(&mut s, "subkey list offset")?;
        let value_list_off = read_u32(&mut s, "value list offset")?;

        let mut subkeys = Vec::new();
        if subkey_list_off != 0 {
            match self.parse_list(subkey_list_off, TAG_LF, "subkey list") {
                Ok(offs) => {
                    for child_off in offs {
                        match self.parse_key_salvage(child_off) {
                            Ok(k) => subkeys.push(k),
                            Err(e) => self.record(&e, child_off),
                        }
                    }
                }
                Err(e) => self.record(&e, subkey_list_off),
            }
        }
        let mut values = Vec::new();
        if value_list_off != 0 {
            match self.parse_list(value_list_off, TAG_VL, "value list") {
                Ok(offs) => {
                    for v_off in offs {
                        match self.parse_value(v_off) {
                            Ok(v) => values.push(v),
                            Err(e) => self.record(&e, v_off),
                        }
                    }
                }
                Err(e) => self.record(&e, value_list_off),
            }
        }
        Ok(RawKey {
            name,
            timestamp,
            values,
            subkeys,
        })
    }

    fn parse_list(
        &mut self,
        off: u32,
        want_tag: u16,
        context: &'static str,
    ) -> Result<Vec<u32>, HiveFormatError> {
        self.bump()?;
        let mut s = self.slice_from(off, context)?;
        let tag = read_u16(&mut s, context)?;
        if tag != want_tag {
            return Err(HiveFormatError::BadCell {
                offset: off,
                expected: if want_tag == TAG_LF { "lf" } else { "vl" },
            });
        }
        let count = read_u32(&mut s, context)?;
        // The count is untrusted: bound the allocation by the bytes that
        // could actually back it before reserving anything.
        if s.remaining() / 4 < count as usize {
            return Err(HiveFormatError::Truncated { context });
        }
        let mut offs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            offs.push(read_u32(&mut s, context)?);
        }
        Ok(offs)
    }

    fn parse_value(&mut self, off: u32) -> Result<RawValue, HiveFormatError> {
        self.bump()?;
        let mut s = self.slice_from(off, "value cell")?;
        let tag = read_u16(&mut s, "value tag")?;
        if tag != TAG_VK {
            return Err(HiveFormatError::BadCell {
                offset: off,
                expected: "vk",
            });
        }
        let name = read_name(&mut s, "value name")?;
        let type_code = read_u32(&mut s, "value type")?;
        let declared_len = read_u32(&mut s, "value declared length")?;
        let data_off = read_u32(&mut s, "value data offset")?;

        let mut d = self.slice_from(data_off, "data cell")?;
        let dtag = read_u16(&mut d, "data tag")?;
        if dtag != TAG_DB {
            return Err(HiveFormatError::BadCell {
                offset: data_off,
                expected: "db",
            });
        }
        let stored_len = read_u32(&mut d, "data stored length")? as usize;
        if d.len() < stored_len {
            return Err(HiveFormatError::Truncated { context: "data" });
        }
        let data = d[..stored_len].to_vec();
        // Salvage semantics: disagreement marks the record corrupt.
        let corrupt = declared_len as usize != stored_len;
        Ok(RawValue {
            name,
            type_code,
            data,
            corrupt,
        })
    }
}

fn read_u16(s: &mut &[u8], context: &'static str) -> Result<u16, HiveFormatError> {
    if s.remaining() < 2 {
        return Err(HiveFormatError::Truncated { context });
    }
    Ok(s.get_u16_le())
}

fn read_u32(s: &mut &[u8], context: &'static str) -> Result<u32, HiveFormatError> {
    if s.remaining() < 4 {
        return Err(HiveFormatError::Truncated { context });
    }
    Ok(s.get_u32_le())
}

fn read_u64(s: &mut &[u8], context: &'static str) -> Result<u64, HiveFormatError> {
    if s.remaining() < 8 {
        return Err(HiveFormatError::Truncated { context });
    }
    Ok(s.get_u64_le())
}

fn read_name(s: &mut &[u8], context: &'static str) -> Result<NtString, HiveFormatError> {
    let len = read_u16(s, context)? as usize;
    if s.remaining() < len * 2 {
        return Err(HiveFormatError::Truncated { context });
    }
    let mut units = Vec::with_capacity(len);
    for _ in 0..len {
        units.push(s.get_u16_le());
    }
    Ok(NtString::from_units(&units))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Key {
        let mut root = Key::new("SOFTWARE");
        root.timestamp = Tick(10);
        let ms = root.subkey_or_create(&NtString::from("Microsoft"), Tick(10));
        let win = ms.subkey_or_create(&NtString::from("Windows"), Tick(10));
        let cv = win.subkey_or_create(&NtString::from("CurrentVersion"), Tick(10));
        let run = cv.subkey_or_create(&NtString::from("Run"), Tick(11));
        run.set_value(Value::new("Updater", ValueData::sz("C:\\u.exe")));
        run.set_value(Value::new("Count", ValueData::Dword(3)));
        run.set_value(Value::new(
            "Multi",
            ValueData::MultiSz(vec![NtString::from("a"), NtString::from("b")]),
        ));
        run.set_value(Value::new("Blob", ValueData::Binary(vec![1, 2, 3])));
        root
    }

    #[test]
    fn roundtrip_structure_and_values() {
        let tree = sample_tree();
        let bytes = write_hive(&tree);
        let raw = RawHive::parse(&bytes).unwrap();
        assert_eq!(raw.root().name.to_win32_lossy(), "SOFTWARE");
        let run = raw
            .descend(&[
                NtString::from("microsoft"),
                NtString::from("windows"),
                NtString::from("currentversion"),
                NtString::from("run"),
            ])
            .unwrap();
        assert_eq!(run.values.len(), 4);
        assert_eq!(run.timestamp, Tick(11));
        let updater = run
            .values
            .iter()
            .find(|v| v.name.to_win32_lossy() == "Updater")
            .unwrap();
        assert_eq!(updater.type_code, 1);
        assert!(!updater.corrupt);
        // UTF-16LE of "C:\u.exe"
        assert_eq!(updater.data.len(), 16);
    }

    #[test]
    fn corrupt_value_is_salvaged_and_flagged() {
        let mut root = Key::new("SOFTWARE");
        let mut v = Value::new("AppInit_DLLs", ValueData::sz("msvsres.dll"));
        v.corrupt_data = true;
        root.set_value(v);
        let raw = RawHive::parse(&write_hive(&root)).unwrap();
        let rv = &raw.root().values[0];
        assert!(rv.corrupt);
        assert_eq!(rv.data.len(), "msvsres.dll".len() * 2, "bytes salvaged");
    }

    #[test]
    fn nul_embedded_value_name_round_trips() {
        let mut root = Key::new("R");
        let sneaky = NtString::from_units(&[b'x' as u16, 0, b'y' as u16]);
        root.set_value(Value::new(sneaky.clone(), ValueData::Dword(1)));
        let raw = RawHive::parse(&write_hive(&root)).unwrap();
        assert_eq!(raw.root().values[0].name, sneaky);
        assert!(raw.root().values[0].name.contains_nul());
    }

    #[test]
    fn bad_magic_and_truncation() {
        assert!(matches!(
            RawHive::parse(b"XXXXXXXXXXXXXXXXXX"),
            Err(HiveFormatError::BadMagic)
        ));
        assert!(matches!(
            RawHive::parse(&[]),
            Err(HiveFormatError::Truncated { .. })
        ));
        let bytes = write_hive(&sample_tree());
        assert!(matches!(
            RawHive::parse(&bytes[..bytes.len() - 2]),
            Err(HiveFormatError::Truncated { .. })
        ));
    }

    #[test]
    fn all_values_flattens_with_paths() {
        let raw = RawHive::parse(&write_hive(&sample_tree())).unwrap();
        let all = raw.all_values();
        assert_eq!(all.len(), 4);
        let (path, _) = &all[0];
        assert_eq!(path.len(), 4, "Run is 4 levels below the hive root");
    }

    #[test]
    fn dangling_root_offset_is_rejected() {
        let tree = Key::new("X");
        let mut bytes = write_hive(&tree);
        let huge = (bytes.len() as u32 + 100).to_le_bytes();
        bytes[12..16].copy_from_slice(&huge);
        assert!(matches!(
            RawHive::parse(&bytes),
            Err(HiveFormatError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_list_count_is_an_error_not_an_allocation() {
        let mut root = Key::new("R");
        root.subkey_or_create(&NtString::from("child"), Tick(1));
        let mut bytes = write_hive(&root);
        // Find the lf list cell and blow up its count field.
        let pos = bytes
            .windows(2)
            .position(|w| w == TAG_LF.to_le_bytes())
            .unwrap();
        bytes[pos + 2..pos + 6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            RawHive::parse(&bytes),
            Err(HiveFormatError::Truncated { .. })
        ));
    }

    #[test]
    fn salvage_on_clean_hive_is_clean_and_identical_to_strict() {
        let bytes = write_hive(&sample_tree());
        let strict = RawHive::parse(&bytes).unwrap();
        let salvaged = RawHive::parse_salvage(&bytes);
        assert!(salvaged.is_clean());
        assert_eq!(salvaged.value.root(), strict.root());
    }

    #[test]
    fn salvage_skips_damaged_subtree_and_keeps_the_rest() {
        let mut root = Key::new("SOFTWARE");
        let keep = root.subkey_or_create(&NtString::from("Keep"), Tick(1));
        keep.set_value(Value::new("v", ValueData::Dword(7)));
        root.subkey_or_create(&NtString::from("Damaged"), Tick(1));
        let mut bytes = write_hive(&root);
        // Children serialize before parents: "Keep"'s subtree is written
        // first, then "Damaged"'s nk cell. Corrupt Damaged's tag.
        let needle: Vec<u8> = {
            let mut n = Vec::new();
            n.extend_from_slice(&TAG_NK.to_le_bytes());
            n.extend_from_slice(&(7u16).to_le_bytes()); // name length
            for u in NtString::from("Damaged").units() {
                n.extend_from_slice(&u.to_le_bytes());
            }
            n
        };
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        bytes[pos] = 0xFF;
        bytes[pos + 1] = 0xFF;

        assert!(RawHive::parse(&bytes).is_err(), "strict parse must fail");
        let salvaged = RawHive::parse_salvage(&bytes);
        assert_eq!(salvaged.defects.len(), 1);
        assert_eq!(salvaged.defects[0].kind, DefectKind::BadRecord);
        let names: Vec<String> = salvaged
            .value
            .root()
            .subkeys
            .iter()
            .map(|k| k.name.to_win32_lossy())
            .collect();
        assert_eq!(names, vec!["Keep"], "surviving subtree is kept");
        assert_eq!(salvaged.value.root().subkeys[0].values.len(), 1);
    }

    #[test]
    fn salvage_of_garbage_yields_empty_root_plus_defect() {
        let salvaged = RawHive::parse_salvage(b"not a hive at all");
        assert_eq!(salvaged.value.root().subkeys.len(), 0);
        assert_eq!(salvaged.defects.len(), 1);
        assert_eq!(salvaged.defects[0].kind, DefectKind::BadMagic);
        let short = RawHive::parse_salvage(&[1, 2, 3]);
        assert_eq!(short.defects[0].kind, DefectKind::Truncated);
    }

    #[test]
    fn wrong_cell_tag_is_rejected() {
        let tree = Key::new("X");
        let mut bytes = write_hive(&tree);
        // Point root at offset 16, which after an empty-tree write is the
        // key cell itself — corrupt its tag instead.
        let root_off = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        bytes[root_off] = 0xFF;
        bytes[root_off + 1] = 0xFF;
        assert!(matches!(
            RawHive::parse(&bytes),
            Err(HiveFormatError::BadCell { .. })
        ));
    }
}
