//! The live Registry key/value tree.

use std::fmt;
use strider_nt_core::{NtString, Tick};

/// Typed Registry value data.
///
/// The variants correspond to the on-disk `REG_*` type codes the serializer
/// writes (`REG_SZ=1`, `REG_EXPAND_SZ=2`, `REG_BINARY=3`, `REG_DWORD=4`,
/// `REG_MULTI_SZ=7`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueData {
    /// `REG_SZ` — a string.
    Sz(NtString),
    /// `REG_EXPAND_SZ` — a string with unexpanded `%VAR%` references.
    ExpandSz(NtString),
    /// `REG_BINARY` — raw bytes.
    Binary(Vec<u8>),
    /// `REG_DWORD` — a 32-bit integer.
    Dword(u32),
    /// `REG_MULTI_SZ` — a list of strings.
    MultiSz(Vec<NtString>),
}

impl ValueData {
    /// Convenience constructor for a `REG_SZ` value.
    pub fn sz(s: impl Into<NtString>) -> Self {
        ValueData::Sz(s.into())
    }

    /// The on-disk type code.
    pub fn type_code(&self) -> u32 {
        match self {
            ValueData::Sz(_) => 1,
            ValueData::ExpandSz(_) => 2,
            ValueData::Binary(_) => 3,
            ValueData::Dword(_) => 4,
            ValueData::MultiSz(_) => 7,
        }
    }

    /// A human-readable rendering of the data (used in reports).
    pub fn to_display_string(&self) -> String {
        match self {
            ValueData::Sz(s) | ValueData::ExpandSz(s) => s.to_display_string(),
            ValueData::Binary(b) => format!("<{} bytes>", b.len()),
            ValueData::Dword(d) => format!("{d:#x}"),
            ValueData::MultiSz(v) => v
                .iter()
                .map(NtString::to_display_string)
                .collect::<Vec<_>>()
                .join(";"),
        }
    }
}

impl fmt::Display for ValueData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

/// A named Registry value (a key "item" in the paper's terminology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The counted value name; may embed `NUL`s when created natively.
    pub name: NtString,
    /// The typed data.
    pub data: ValueData,
    /// Set when the stored data cell is corrupted: the live Win32 view
    /// (RegEdit) fails to render the value and skips it, while the raw hive
    /// parser still reports it — the paper's one Registry false positive.
    pub corrupt_data: bool,
}

impl Value {
    /// Creates a healthy value.
    pub fn new(name: impl Into<NtString>, data: ValueData) -> Self {
        Self {
            name: name.into(),
            data,
            corrupt_data: false,
        }
    }
}

/// A live Registry key: a named node with values and subkeys.
///
/// Lookup helpers are case-insensitive, matching the configuration manager.
#[derive(Debug, Clone, PartialEq)]
pub struct Key {
    /// The counted key name.
    pub name: NtString,
    /// Last-write time.
    pub timestamp: Tick,
    /// Values on this key.
    pub values: Vec<Value>,
    /// Child keys.
    pub subkeys: Vec<Key>,
}

impl Key {
    /// Creates an empty key named `name`.
    pub fn new(name: impl Into<NtString>) -> Self {
        Self {
            name: name.into(),
            timestamp: Tick::ZERO,
            values: Vec::new(),
            subkeys: Vec::new(),
        }
    }

    /// Finds a direct subkey by case-insensitive name.
    pub fn subkey(&self, name: &NtString) -> Option<&Key> {
        self.subkeys.iter().find(|k| k.name.eq_ignore_case(name))
    }

    /// Mutable variant of [`Key::subkey`].
    pub fn subkey_mut(&mut self, name: &NtString) -> Option<&mut Key> {
        self.subkeys
            .iter_mut()
            .find(|k| k.name.eq_ignore_case(name))
    }

    /// Finds a value by case-insensitive name.
    pub fn value(&self, name: &NtString) -> Option<&Value> {
        self.values.iter().find(|v| v.name.eq_ignore_case(name))
    }

    /// Sets (replacing by case-insensitive name) a value and returns the
    /// previous one, if any.
    pub fn set_value(&mut self, value: Value) -> Option<Value> {
        match self
            .values
            .iter_mut()
            .find(|v| v.name.eq_ignore_case(&value.name))
        {
            Some(slot) => Some(std::mem::replace(slot, value)),
            None => {
                self.values.push(value);
                None
            }
        }
    }

    /// Removes a value by case-insensitive name, returning it.
    pub fn remove_value(&mut self, name: &NtString) -> Option<Value> {
        let i = self
            .values
            .iter()
            .position(|v| v.name.eq_ignore_case(name))?;
        Some(self.values.remove(i))
    }

    /// Gets or creates a direct subkey, returning a mutable reference.
    pub fn subkey_or_create(&mut self, name: &NtString, now: Tick) -> &mut Key {
        if let Some(i) = self
            .subkeys
            .iter()
            .position(|k| k.name.eq_ignore_case(name))
        {
            return &mut self.subkeys[i];
        }
        let mut k = Key::new(name.clone());
        k.timestamp = now;
        self.subkeys.push(k);
        self.timestamp = now;
        self.subkeys.last_mut().expect("just pushed")
    }

    /// Removes a direct subkey (and its whole subtree), returning it.
    pub fn remove_subkey(&mut self, name: &NtString) -> Option<Key> {
        let i = self
            .subkeys
            .iter()
            .position(|k| k.name.eq_ignore_case(name))?;
        Some(self.subkeys.remove(i))
    }

    /// Walks a relative path of component names below this key.
    pub fn descend(&self, components: &[NtString]) -> Option<&Key> {
        let mut cur = self;
        for c in components {
            cur = cur.subkey(c)?;
        }
        Some(cur)
    }

    /// Mutable variant of [`Key::descend`].
    pub fn descend_mut(&mut self, components: &[NtString]) -> Option<&mut Key> {
        let mut cur = self;
        for c in components {
            cur = cur.subkey_mut(c)?;
        }
        Some(cur)
    }

    /// Total number of keys in this subtree, including `self`.
    pub fn key_count(&self) -> usize {
        1 + self.subkeys.iter().map(Key::key_count).sum::<usize>()
    }

    /// Total number of values in this subtree.
    pub fn value_count(&self) -> usize {
        self.values.len() + self.subkeys.iter().map(Key::value_count).sum::<usize>()
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(
    enum ValueData {
        Sz(NtString),
        ExpandSz(NtString),
        Binary(Vec<u8>),
        Dword(u32),
        MultiSz(Vec<NtString>),
    }
);
strider_support::impl_json!(struct Value { name, data, corrupt_data });
strider_support::impl_json!(struct Key { name, timestamp, values, subkeys });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_value_replaces_case_insensitively() {
        let mut k = Key::new("Run");
        k.set_value(Value::new("Updater", ValueData::sz("a.exe")));
        let old = k.set_value(Value::new("UPDATER", ValueData::sz("b.exe")));
        assert!(old.is_some());
        assert_eq!(k.values.len(), 1);
        assert_eq!(
            k.value(&NtString::from("updater")).unwrap().data,
            ValueData::sz("b.exe")
        );
    }

    #[test]
    fn descend_and_counts() {
        let mut root = Key::new("SOFTWARE");
        let ms = root.subkey_or_create(&NtString::from("Microsoft"), Tick(1));
        let win = ms.subkey_or_create(&NtString::from("Windows"), Tick(1));
        win.set_value(Value::new("v", ValueData::Dword(7)));
        assert_eq!(root.key_count(), 3);
        assert_eq!(root.value_count(), 1);
        let path = [NtString::from("microsoft"), NtString::from("WINDOWS")];
        assert!(root.descend(&path).is_some());
    }

    #[test]
    fn remove_subkey_removes_subtree() {
        let mut root = Key::new("SYSTEM");
        let svc = root.subkey_or_create(&NtString::from("Services"), Tick(1));
        svc.subkey_or_create(&NtString::from("Vanquish"), Tick(1));
        let removed = root.remove_subkey(&NtString::from("services")).unwrap();
        assert_eq!(removed.key_count(), 2);
        assert_eq!(root.key_count(), 1);
    }

    #[test]
    fn value_data_type_codes_and_display() {
        assert_eq!(ValueData::sz("x").type_code(), 1);
        assert_eq!(ValueData::ExpandSz(NtString::from("%p%")).type_code(), 2);
        assert_eq!(ValueData::Binary(vec![1, 2]).type_code(), 3);
        assert_eq!(ValueData::Dword(5).type_code(), 4);
        assert_eq!(
            ValueData::MultiSz(vec![NtString::from("a"), NtString::from("b")]).type_code(),
            7
        );
        assert_eq!(ValueData::Dword(255).to_display_string(), "0xff");
        assert_eq!(
            ValueData::Binary(vec![0; 3]).to_display_string(),
            "<3 bytes>"
        );
        assert_eq!(
            ValueData::MultiSz(vec![NtString::from("a"), NtString::from("b")]).to_string(),
            "a;b"
        );
    }

    #[test]
    fn nul_embedded_names_are_storable_and_distinct() {
        let mut k = Key::new("Run");
        let sneaky = NtString::from_units(&[b'u' as u16, 0, b'2' as u16]);
        k.set_value(Value::new(sneaky.clone(), ValueData::sz("evil.exe")));
        k.set_value(Value::new("u", ValueData::sz("benign.exe")));
        assert_eq!(k.values.len(), 2, "NUL-embedded name is a distinct value");
        assert!(k.value(&sneaky).is_some());
    }
}
