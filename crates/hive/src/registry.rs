//! Mounted hives and the full Registry forest.

use crate::format::{write_hive, RawHive};
use crate::key::{Key, Value, ValueData};
use std::fmt;
use strider_nt_core::{NtPath, NtString, Tick};

/// Error type for Registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No hive is mounted at a prefix of the path.
    NoHiveForPath(NtPath),
    /// The key does not exist.
    KeyNotFound(NtPath),
    /// The value does not exist on the key.
    ValueNotFound {
        /// The key that was searched.
        key: NtPath,
        /// The missing value name.
        value: NtString,
    },
    /// A hive is already mounted at this prefix.
    AlreadyMounted(NtPath),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NoHiveForPath(p) => write!(f, "no hive mounted for {p}"),
            RegistryError::KeyNotFound(p) => write!(f, "key not found: {p}"),
            RegistryError::ValueNotFound { key, value } => {
                write!(f, "value not found: {value} on {key}")
            }
            RegistryError::AlreadyMounted(p) => write!(f, "hive already mounted at {p}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A hive: a key tree mounted at a Registry path and backed by a file.
///
/// `HKLM\SYSTEM` is backed by `C:\windows\system32\config\system`,
/// `HKLM\SOFTWARE` by `...\config\software`, and the per-user hive by
/// `ntuser.dat`, exactly as the paper describes. [`Hive::to_bytes`] renders
/// the binary image written to that backing file; the low-level scan parses
/// those bytes with [`RawHive`].
#[derive(Debug, Clone)]
pub struct Hive {
    mount: NtPath,
    backing_file: NtPath,
    root: Key,
}

impl Hive {
    /// Creates an empty hive mounted at `mount`, backed by `backing_file`.
    pub fn new(mount: NtPath, backing_file: NtPath) -> Self {
        let name = mount.to_string();
        Self {
            mount,
            backing_file,
            root: Key::new(name),
        }
    }

    /// Creates a hive from an existing root key.
    pub fn from_root(mount: NtPath, backing_file: NtPath, root: Key) -> Self {
        Self {
            mount,
            backing_file,
            root,
        }
    }

    /// The Registry path this hive is mounted at.
    pub fn mount(&self) -> &NtPath {
        &self.mount
    }

    /// The filesystem path of the backing hive file.
    pub fn backing_file(&self) -> &NtPath {
        &self.backing_file
    }

    /// The root key.
    pub fn root(&self) -> &Key {
        &self.root
    }

    /// Mutable access to the root key.
    pub fn root_mut(&mut self) -> &mut Key {
        &mut self.root
    }

    /// Serializes the hive to its binary on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        write_hive(&self.root)
    }

    /// Parses backing-file bytes into a raw (offline) view.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::HiveFormatError`] from the raw parser.
    pub fn parse_bytes(bytes: &[u8]) -> Result<RawHive, crate::HiveFormatError> {
        RawHive::parse(bytes)
    }
}

/// The full Registry: a forest of mounted hives with path resolution.
///
/// Paths like `HKLM\SOFTWARE\Microsoft\...` resolve by longest mounted
/// prefix. The conventional Windows layout is available via
/// [`Registry::standard`].
///
/// # Examples
///
/// ```
/// use strider_hive::{Registry, ValueData};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = Registry::standard();
/// let services = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\Beep".parse()?;
/// reg.create_key(&services)?;
/// reg.set_value(&services, "ImagePath", ValueData::sz("beep.sys"))?;
/// assert!(reg.key_exists(&services));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Registry {
    hives: Vec<Hive>,
    now: Tick,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty Registry with no hives mounted.
    pub fn new() -> Self {
        Self {
            hives: Vec::new(),
            now: Tick::ZERO,
        }
    }

    /// Creates the conventional Windows hive layout:
    ///
    /// * `HKLM\SYSTEM` ← `C:\windows\system32\config\system`
    /// * `HKLM\SOFTWARE` ← `C:\windows\system32\config\software`
    /// * `HKU\.DEFAULT` ← `C:\documents and settings\user\ntuser.dat`
    pub fn standard() -> Self {
        let mut reg = Self::new();
        let mounts = [
            ("HKLM\\SYSTEM", "C:\\windows\\system32\\config\\system"),
            ("HKLM\\SOFTWARE", "C:\\windows\\system32\\config\\software"),
            (
                "HKU\\.DEFAULT",
                "C:\\documents and settings\\user\\ntuser.dat",
            ),
        ];
        for (m, f) in mounts {
            reg.mount_hive(Hive::new(
                m.parse().expect("static mount parses"),
                f.parse().expect("static path parses"),
            ))
            .expect("fresh mounts cannot collide");
        }
        reg
    }

    /// Sets the clock used to stamp key write times.
    pub fn set_clock(&mut self, now: Tick) {
        self.now = now;
    }

    /// Mounts a hive.
    ///
    /// # Errors
    ///
    /// Fails if a hive is already mounted at the same path.
    pub fn mount_hive(&mut self, hive: Hive) -> Result<(), RegistryError> {
        if self
            .hives
            .iter()
            .any(|h| h.mount().eq_ignore_case(hive.mount()))
        {
            return Err(RegistryError::AlreadyMounted(hive.mount().clone()));
        }
        self.hives.push(hive);
        Ok(())
    }

    /// The mounted hives.
    pub fn hives(&self) -> &[Hive] {
        &self.hives
    }

    /// Mutable access to the mounted hives.
    pub fn hives_mut(&mut self) -> &mut [Hive] {
        &mut self.hives
    }

    /// Finds the hive whose mount point is a prefix of `path` (longest wins),
    /// together with the path components relative to the hive root.
    pub fn resolve(&self, path: &NtPath) -> Option<(&Hive, Vec<NtString>)> {
        let idx = self.resolve_index(path)?;
        let hive = &self.hives[idx];
        let rel = path.components()[hive.mount().components().len()..].to_vec();
        Some((hive, rel))
    }

    fn resolve_index(&self, path: &NtPath) -> Option<usize> {
        self.hives
            .iter()
            .enumerate()
            .filter(|(_, h)| path.starts_with(h.mount()))
            .max_by_key(|(_, h)| h.mount().components().len())
            .map(|(i, _)| i)
    }

    /// The hive containing `path`, if any.
    pub fn hive_containing(&self, path: &NtPath) -> Option<&Hive> {
        self.resolve(path).map(|(h, _)| h)
    }

    /// The key at `path`, if it exists.
    pub fn key_at(&self, path: &NtPath) -> Option<&Key> {
        let (hive, rel) = self.resolve(path)?;
        hive.root().descend(&rel)
    }

    /// Whether a key exists at `path`.
    pub fn key_exists(&self, path: &NtPath) -> bool {
        self.key_at(path).is_some()
    }

    fn key_at_mut(&mut self, path: &NtPath) -> Result<&mut Key, RegistryError> {
        let idx = self
            .resolve_index(path)
            .ok_or_else(|| RegistryError::NoHiveForPath(path.clone()))?;
        let hive = &mut self.hives[idx];
        let rel = path.components()[hive.mount().components().len()..].to_vec();
        hive.root_mut()
            .descend_mut(&rel)
            .ok_or_else(|| RegistryError::KeyNotFound(path.clone()))
    }

    /// Creates the key at `path`, creating intermediate keys as needed.
    ///
    /// # Errors
    ///
    /// Fails only when no hive covers the path.
    pub fn create_key(&mut self, path: &NtPath) -> Result<(), RegistryError> {
        let now = self.now;
        let idx = self
            .resolve_index(path)
            .ok_or_else(|| RegistryError::NoHiveForPath(path.clone()))?;
        let hive = &mut self.hives[idx];
        let rel = path.components()[hive.mount().components().len()..].to_vec();
        let mut cur = hive.root_mut();
        for c in &rel {
            cur = cur.subkey_or_create(c, now);
        }
        Ok(())
    }

    /// Sets a value on an existing key.
    ///
    /// # Errors
    ///
    /// Fails when the key does not exist.
    pub fn set_value(
        &mut self,
        key_path: &NtPath,
        name: impl Into<NtString>,
        data: ValueData,
    ) -> Result<(), RegistryError> {
        let now = self.now;
        let key = self.key_at_mut(key_path)?;
        key.set_value(Value::new(name, data));
        key.timestamp = now;
        Ok(())
    }

    /// Sets a pre-built [`Value`] (e.g. one flagged corrupt) on an existing key.
    ///
    /// # Errors
    ///
    /// Fails when the key does not exist.
    pub fn set_value_raw(&mut self, key_path: &NtPath, value: Value) -> Result<(), RegistryError> {
        let now = self.now;
        let key = self.key_at_mut(key_path)?;
        key.set_value(value);
        key.timestamp = now;
        Ok(())
    }

    /// Reads a value.
    ///
    /// # Errors
    ///
    /// Fails when the key or value does not exist.
    pub fn value(&self, key_path: &NtPath, name: &NtString) -> Result<&Value, RegistryError> {
        let key = self
            .key_at(key_path)
            .ok_or_else(|| RegistryError::KeyNotFound(key_path.clone()))?;
        key.value(name).ok_or_else(|| RegistryError::ValueNotFound {
            key: key_path.clone(),
            value: name.clone(),
        })
    }

    /// Deletes a value, returning it.
    ///
    /// # Errors
    ///
    /// Fails when the key or value does not exist.
    pub fn delete_value(
        &mut self,
        key_path: &NtPath,
        name: &NtString,
    ) -> Result<Value, RegistryError> {
        let key = self.key_at_mut(key_path)?;
        key.remove_value(name)
            .ok_or_else(|| RegistryError::ValueNotFound {
                key: key_path.clone(),
                value: name.clone(),
            })
    }

    /// Deletes a key and its whole subtree, returning it.
    ///
    /// # Errors
    ///
    /// Fails when the key does not exist or is a hive root.
    pub fn delete_key(&mut self, path: &NtPath) -> Result<Key, RegistryError> {
        let parent_path = path
            .parent()
            .ok_or_else(|| RegistryError::KeyNotFound(path.clone()))?;
        let name = path
            .file_name()
            .cloned()
            .ok_or_else(|| RegistryError::KeyNotFound(path.clone()))?;
        // A hive root itself cannot be deleted through this API.
        if self.hives.iter().any(|h| h.mount().eq_ignore_case(path)) {
            return Err(RegistryError::KeyNotFound(path.clone()));
        }
        let parent = self.key_at_mut(&parent_path)?;
        parent
            .remove_subkey(&name)
            .ok_or_else(|| RegistryError::KeyNotFound(path.clone()))
    }

    /// Total key count across all hives.
    pub fn key_count(&self) -> usize {
        self.hives.iter().map(|h| h.root().key_count()).sum()
    }

    /// Total value count across all hives.
    pub fn value_count(&self) -> usize {
        self.hives.iter().map(|h| h.root().value_count()).sum()
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(struct Hive { mount, backing_file, root });
strider_support::impl_json!(struct Registry { hives, now });

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> NtPath {
        s.parse().unwrap()
    }

    fn n(s: &str) -> NtString {
        NtString::from(s)
    }

    #[test]
    fn standard_layout_mounts_three_hives() {
        let reg = Registry::standard();
        assert_eq!(reg.hives().len(), 3);
        assert!(reg
            .hive_containing(&p("HKLM\\SOFTWARE\\Microsoft"))
            .is_some());
        assert!(reg.hive_containing(&p("HKCC\\x")).is_none());
    }

    #[test]
    fn create_set_get_delete() {
        let mut reg = Registry::standard();
        let run = p("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
        reg.create_key(&run).unwrap();
        reg.set_value(&run, "A", ValueData::sz("a.exe")).unwrap();
        assert_eq!(
            reg.value(&run, &n("a")).unwrap().data,
            ValueData::sz("a.exe")
        );
        let old = reg.delete_value(&run, &n("A")).unwrap();
        assert_eq!(old.name, n("A"));
        assert!(matches!(
            reg.value(&run, &n("A")),
            Err(RegistryError::ValueNotFound { .. })
        ));
    }

    #[test]
    fn delete_key_removes_subtree_but_not_hive_roots() {
        let mut reg = Registry::standard();
        let svc = p("HKLM\\SYSTEM\\CurrentControlSet\\Services\\HackerDefender100");
        reg.create_key(&svc).unwrap();
        assert!(reg.key_exists(&svc));
        reg.delete_key(&svc).unwrap();
        assert!(!reg.key_exists(&svc));
        assert!(matches!(
            reg.delete_key(&p("HKLM\\SYSTEM")),
            Err(RegistryError::KeyNotFound(_))
        ));
    }

    #[test]
    fn longest_prefix_mount_wins() {
        let mut reg = Registry::new();
        reg.mount_hive(Hive::new(p("HKLM\\SOFTWARE"), p("C:\\sw")))
            .unwrap();
        reg.mount_hive(Hive::new(p("HKLM\\SOFTWARE\\Sub"), p("C:\\sub")))
            .unwrap();
        let (hive, rel) = reg.resolve(&p("HKLM\\SOFTWARE\\Sub\\Deep")).unwrap();
        assert_eq!(hive.mount().to_string(), "HKLM\\SOFTWARE\\Sub");
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn duplicate_mount_rejected() {
        let mut reg = Registry::standard();
        assert!(matches!(
            reg.mount_hive(Hive::new(p("hklm\\software"), p("C:\\x"))),
            Err(RegistryError::AlreadyMounted(_))
        ));
    }

    #[test]
    fn set_value_on_missing_key_fails() {
        let mut reg = Registry::standard();
        assert!(matches!(
            reg.set_value(&p("HKLM\\SOFTWARE\\Nope"), "v", ValueData::Dword(1)),
            Err(RegistryError::KeyNotFound(_))
        ));
        assert!(matches!(
            reg.set_value(&p("HKXX\\Nope"), "v", ValueData::Dword(1)),
            Err(RegistryError::NoHiveForPath(_))
        ));
    }

    #[test]
    fn counts_aggregate_across_hives() {
        let mut reg = Registry::standard();
        reg.create_key(&p("HKLM\\SOFTWARE\\A\\B")).unwrap();
        reg.set_value(&p("HKLM\\SOFTWARE\\A"), "v", ValueData::Dword(1))
            .unwrap();
        // 3 hive roots + A + B
        assert_eq!(reg.key_count(), 5);
        assert_eq!(reg.value_count(), 1);
    }

    #[test]
    fn hive_serialization_roundtrip_through_registry() {
        let mut reg = Registry::standard();
        let run = p("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
        reg.create_key(&run).unwrap();
        reg.set_value(&run, "x", ValueData::sz("x.exe")).unwrap();
        let hive = reg.hive_containing(&run).unwrap();
        let raw = Hive::parse_bytes(&hive.to_bytes()).unwrap();
        assert_eq!(raw.all_values().len(), 1);
    }
}
