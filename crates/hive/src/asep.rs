//! Auto-Start Extensibility Points (ASEPs) and hook extraction.
//!
//! Most Windows ghostware does not patch OS files; it "hooks" one of the many
//! Registry locations the OS consults to auto-start code — services and
//! drivers, `Run` keys, `AppInit_DLLs`, Browser Helper Objects, and so on
//! (paper, Section 3, building on the Gatekeeper ASEP study). Because these
//! hooks are critical for surviving reboots, ghostware hides them; GhostBuster
//! therefore scans exactly this catalog in both the high-level and low-level
//! views and diffs the extracted hook sets.
//!
//! Extraction is generic over a [`KeyView`], so the same catalog logic runs
//! against:
//!
//! * the live tree with Win32 semantics ([`Win32KeyView`]) — corrupt values
//!   skipped, names truncated at embedded `NUL`s, as RegEdit would show them;
//! * the live tree with native semantics ([`NativeKeyView`]) — full counted
//!   names (used below the Win32 boundary in the API chain);
//! * raw parsed hive bytes ([`RawKeyView`]) — the low-level truth, including
//!   salvaged corrupt values.

use crate::format::{RawHive, RawKey};
use crate::key::Key;
use crate::registry::Registry;
use std::fmt;
use strider_nt_core::{NtPath, NtString};

/// How hooks are laid out at an ASEP location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsepKind {
    /// Every value on the key is one hook (`Run`, `RunOnce`, …): the value
    /// name identifies the hook and the data is the launched target.
    ValuePerEntry,
    /// Every subkey is one hook (`Services`): the subkey name identifies the
    /// hook and the named value inside it (e.g. `ImagePath`) is the target.
    SubkeyPerEntry {
        /// The value inside each subkey that holds the target, if any.
        target_value: Option<&'static str>,
    },
    /// A single named value whose data is a separator-delimited list of
    /// targets (`AppInit_DLLs`): one hook per listed target.
    SingleValueList {
        /// The value name holding the list.
        value_name: &'static str,
    },
}

/// One ASEP location: an identifier, the key path, and the hook layout.
#[derive(Debug, Clone)]
pub struct AsepLocation {
    /// Short identifier used in reports (`"Run"`, `"Services"`, …).
    pub id: &'static str,
    /// Full Registry path of the ASEP key.
    pub key_path: NtPath,
    /// How hooks are laid out at this location.
    pub kind: AsepKind,
}

/// The catalog of ASEP locations GhostBuster scans.
///
/// A representative subset of the Gatekeeper catalog: every location the
/// paper's Figure 4 exercises (Services, Run, AppInit_DLLs) plus the other
/// high-traffic auto-start points.
pub fn catalog() -> Vec<AsepLocation> {
    fn p(s: &str) -> NtPath {
        s.parse().expect("static catalog path parses")
    }
    vec![
        AsepLocation {
            id: "Services",
            key_path: p("HKLM\\SYSTEM\\CurrentControlSet\\Services"),
            kind: AsepKind::SubkeyPerEntry {
                target_value: Some("ImagePath"),
            },
        },
        AsepLocation {
            id: "Run",
            key_path: p("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"),
            kind: AsepKind::ValuePerEntry,
        },
        AsepLocation {
            id: "RunOnce",
            key_path: p("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\RunOnce"),
            kind: AsepKind::ValuePerEntry,
        },
        AsepLocation {
            id: "AppInit_DLLs",
            key_path: p("HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"),
            kind: AsepKind::SingleValueList {
                value_name: "AppInit_DLLs",
            },
        },
        AsepLocation {
            id: "BHO",
            key_path: p(
                "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Explorer\\Browser Helper Objects",
            ),
            kind: AsepKind::SubkeyPerEntry { target_value: None },
        },
        AsepLocation {
            id: "WinlogonNotify",
            key_path: p("HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon\\Notify"),
            kind: AsepKind::SubkeyPerEntry {
                target_value: Some("DllName"),
            },
        },
        AsepLocation {
            id: "WinlogonShell",
            key_path: p("HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon"),
            kind: AsepKind::SingleValueList {
                value_name: "Shell",
            },
        },
        AsepLocation {
            id: "WinlogonUserinit",
            key_path: p("HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon"),
            kind: AsepKind::SingleValueList {
                value_name: "Userinit",
            },
        },
        AsepLocation {
            id: "IFEO",
            key_path: p(
                "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Image File Execution Options",
            ),
            kind: AsepKind::SubkeyPerEntry {
                target_value: Some("Debugger"),
            },
        },
        AsepLocation {
            id: "ShellServiceObjectDelayLoad",
            key_path: p(
                "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\ShellServiceObjectDelayLoad",
            ),
            kind: AsepKind::ValuePerEntry,
        },
        AsepLocation {
            id: "ShellExecuteHooks",
            key_path: p(
                "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Explorer\\ShellExecuteHooks",
            ),
            kind: AsepKind::ValuePerEntry,
        },
        AsepLocation {
            id: "UserRun",
            key_path: p("HKU\\.DEFAULT\\Software\\Microsoft\\Windows\\CurrentVersion\\Run"),
            kind: AsepKind::ValuePerEntry,
        },
    ]
}

/// One extracted auto-start hook.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AsepHook {
    /// The catalog id of the location (`"Run"`, `"Services"`, …).
    pub asep_id: String,
    /// The hook's entry name as rendered by the extracting view.
    pub entry: String,
    /// The launched/loaded target as rendered by the extracting view.
    pub target: String,
    /// The ASEP key path.
    pub key_path: NtPath,
    /// The value record backing this hook was corrupt (raw views only).
    pub corrupt: bool,
}

impl AsepHook {
    /// The identity under which hooks are diffed across views.
    pub fn identity(&self) -> String {
        format!(
            "{}|{}|{}",
            self.asep_id,
            self.entry.to_ascii_lowercase(),
            self.target.to_ascii_lowercase()
        )
    }
}

impl fmt::Display for AsepHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\\{} -> {}", self.key_path, self.entry, self.target)
    }
}

/// A value as yielded by a [`KeyView`], after that view's visibility rules.
#[derive(Debug, Clone)]
pub struct ViewedValue {
    /// The exact counted name.
    pub name: NtString,
    /// The data rendered as text.
    pub target: String,
    /// Whether the backing record was corrupt (raw views only).
    pub corrupt: bool,
}

/// A read-only view over one Registry key with view-specific visibility
/// semantics.
pub trait KeyView: Sized {
    /// Descends to a direct subkey by case-insensitive name.
    fn subkey(&self, name: &NtString) -> Option<Self>;
    /// Lists direct subkeys as `(exact name, view)`.
    fn subkeys(&self) -> Vec<(NtString, Self)>;
    /// Lists values after this view's visibility rules.
    fn values(&self) -> Vec<ViewedValue>;
    /// Renders a counted name the way this view's tools would show it.
    fn render_name(&self, name: &NtString) -> String;

    /// Looks up a value's rendered data by case-insensitive name.
    fn value_target(&self, name: &NtString) -> Option<String> {
        self.values()
            .into_iter()
            .find(|v| v.name.eq_ignore_case(name))
            .map(|v| v.target)
    }
}

/// Extracts all hooks for `catalog` using `resolve` to obtain the view at
/// each ASEP key path. Locations whose key does not exist yield no hooks.
pub fn extract_hooks_with<V, F>(resolve: F, catalog: &[AsepLocation]) -> Vec<AsepHook>
where
    V: KeyView,
    F: Fn(&NtPath) -> Option<V>,
{
    let mut hooks = Vec::new();
    for loc in catalog {
        let Some(view) = resolve(&loc.key_path) else {
            continue;
        };
        match loc.kind {
            AsepKind::ValuePerEntry => {
                for v in view.values() {
                    hooks.push(AsepHook {
                        asep_id: loc.id.to_string(),
                        entry: view.render_name(&v.name),
                        target: v.target,
                        key_path: loc.key_path.clone(),
                        corrupt: v.corrupt,
                    });
                }
            }
            AsepKind::SubkeyPerEntry { target_value } => {
                for (name, sub) in view.subkeys() {
                    let (target, corrupt) = match target_value {
                        Some(tv) => {
                            let tvn = NtString::from(tv);
                            match sub
                                .values()
                                .into_iter()
                                .find(|v| v.name.eq_ignore_case(&tvn))
                            {
                                Some(v) => (v.target, v.corrupt),
                                None => (String::new(), false),
                            }
                        }
                        None => (String::new(), false),
                    };
                    hooks.push(AsepHook {
                        asep_id: loc.id.to_string(),
                        entry: view.render_name(&name),
                        target,
                        key_path: loc.key_path.join(name),
                        corrupt,
                    });
                }
            }
            AsepKind::SingleValueList { value_name } => {
                let vn = NtString::from(value_name);
                let Some(v) = view
                    .values()
                    .into_iter()
                    .find(|v| v.name.eq_ignore_case(&vn))
                else {
                    continue;
                };
                for part in v.target.split([' ', ',', ';']).filter(|s| !s.is_empty()) {
                    hooks.push(AsepHook {
                        asep_id: loc.id.to_string(),
                        entry: value_name.to_string(),
                        target: part.to_string(),
                        key_path: loc.key_path.clone(),
                        corrupt: v.corrupt,
                    });
                }
            }
        }
    }
    hooks
}

/// Decodes raw value bytes as the given `REG_*` type for display.
fn render_raw_data(type_code: u32, data: &[u8]) -> String {
    match type_code {
        1 | 2 => {
            let units: Vec<u16> = data
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            NtString::from_units(&units).to_display_string()
        }
        4 if data.len() >= 4 => {
            format!(
                "{:#x}",
                u32::from_le_bytes(data[..4].try_into().expect("4 bytes"))
            )
        }
        7 => {
            let units: Vec<u16> = data
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            units
                .split(|&u| u == 0)
                .filter(|s| !s.is_empty())
                .map(|s| NtString::from_units(s).to_display_string())
                .collect::<Vec<_>>()
                .join(";")
        }
        _ => format!("<{} bytes>", data.len()),
    }
}

/// Native-semantics view over the live tree: full counted names, corrupt
/// values *hidden* (the live configuration manager fails to materialize
/// their data, so RegEdit shows nothing — the paper's FP mechanism).
#[derive(Debug, Clone, Copy)]
pub struct NativeKeyView<'a>(pub &'a Key);

impl<'a> KeyView for NativeKeyView<'a> {
    fn subkey(&self, name: &NtString) -> Option<Self> {
        self.0.subkey(name).map(NativeKeyView)
    }

    fn subkeys(&self) -> Vec<(NtString, Self)> {
        self.0
            .subkeys
            .iter()
            .map(|k| (k.name.clone(), NativeKeyView(k)))
            .collect()
    }

    fn values(&self) -> Vec<ViewedValue> {
        self.0
            .values
            .iter()
            .filter(|v| !v.corrupt_data)
            .map(|v| ViewedValue {
                name: v.name.clone(),
                target: v.data.to_display_string(),
                corrupt: false,
            })
            .collect()
    }

    fn render_name(&self, name: &NtString) -> String {
        name.to_display_string()
    }
}

/// Win32-semantics view over the live tree: names truncated at embedded
/// `NUL`s, corrupt values hidden. This is what RegEdit and the Win32
/// enumeration APIs show.
#[derive(Debug, Clone, Copy)]
pub struct Win32KeyView<'a>(pub &'a Key);

impl<'a> KeyView for Win32KeyView<'a> {
    fn subkey(&self, name: &NtString) -> Option<Self> {
        self.0.subkey(name).map(Win32KeyView)
    }

    fn subkeys(&self) -> Vec<(NtString, Self)> {
        self.0
            .subkeys
            .iter()
            .map(|k| (k.name.clone(), Win32KeyView(k)))
            .collect()
    }

    fn values(&self) -> Vec<ViewedValue> {
        self.0
            .values
            .iter()
            .filter(|v| !v.corrupt_data)
            .map(|v| ViewedValue {
                name: v.name.clone(),
                target: v.data.to_display_string(),
                corrupt: false,
            })
            .collect()
    }

    fn render_name(&self, name: &NtString) -> String {
        name.to_win32_lossy()
    }
}

/// Raw view over parsed hive bytes: the low-level truth. Full counted names,
/// corrupt records salvaged and flagged.
#[derive(Debug, Clone, Copy)]
pub struct RawKeyView<'a>(pub &'a RawKey);

impl<'a> KeyView for RawKeyView<'a> {
    fn subkey(&self, name: &NtString) -> Option<Self> {
        self.0
            .subkeys
            .iter()
            .find(|k| k.name.eq_ignore_case(name))
            .map(RawKeyView)
    }

    fn subkeys(&self) -> Vec<(NtString, Self)> {
        self.0
            .subkeys
            .iter()
            .map(|k| (k.name.clone(), RawKeyView(k)))
            .collect()
    }

    fn values(&self) -> Vec<ViewedValue> {
        self.0
            .values
            .iter()
            .map(|v| ViewedValue {
                name: v.name.clone(),
                target: render_raw_data(v.type_code, &v.data),
                corrupt: v.corrupt,
            })
            .collect()
    }

    fn render_name(&self, name: &NtString) -> String {
        name.to_display_string()
    }
}

/// Extracts hooks from the live Registry with Win32 (RegEdit) semantics —
/// useful for the outside-the-box scan where hive files are mounted under a
/// clean OS and scanned with the ordinary APIs.
pub fn extract_live_win32(reg: &Registry, catalog: &[AsepLocation]) -> Vec<AsepHook> {
    extract_hooks_with(
        |path| {
            let (hive, rel) = reg.resolve(path)?;
            hive.root().descend(&rel).map(Win32KeyView)
        },
        catalog,
    )
}

/// Extracts hooks from raw parsed hives — the low-level inside-the-box scan.
/// `hives` pairs each mount path with its parsed image.
pub fn extract_raw(hives: &[(NtPath, RawHive)], catalog: &[AsepLocation]) -> Vec<AsepHook> {
    extract_hooks_with(
        |path| {
            let (mount, raw) = hives
                .iter()
                .filter(|(m, _)| path.starts_with(m))
                .max_by_key(|(m, _)| m.components().len())?;
            let rel = path.components()[mount.components().len()..].to_vec();
            raw.descend(&rel).map(RawKeyView)
        },
        catalog,
    )
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(struct AsepHook { asep_id, entry, target, key_path, corrupt });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{Value, ValueData};

    fn p(s: &str) -> NtPath {
        s.parse().unwrap()
    }

    fn populated_registry() -> Registry {
        let mut reg = Registry::standard();
        let run = p("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
        reg.create_key(&run).unwrap();
        reg.set_value(&run, "Updater", ValueData::sz("C:\\u.exe"))
            .unwrap();
        let svc = p("HKLM\\SYSTEM\\CurrentControlSet\\Services\\Beep");
        reg.create_key(&svc).unwrap();
        reg.set_value(&svc, "ImagePath", ValueData::sz("beep.sys"))
            .unwrap();
        let win = p("HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows");
        reg.create_key(&win).unwrap();
        reg.set_value(&win, "AppInit_DLLs", ValueData::sz("a.dll b.dll"))
            .unwrap();
        reg
    }

    #[test]
    fn catalog_contains_paper_locations() {
        let cat = catalog();
        let ids: Vec<&str> = cat.iter().map(|l| l.id).collect();
        for want in ["Services", "Run", "AppInit_DLLs"] {
            assert!(ids.contains(&want), "missing {want}");
        }
        assert!(cat.len() >= 10);
    }

    #[test]
    fn live_extraction_finds_all_hook_kinds() {
        let reg = populated_registry();
        let hooks = extract_live_win32(&reg, &catalog());
        let ids: Vec<String> = hooks.iter().map(AsepHook::identity).collect();
        assert!(ids.contains(&"Run|updater|c:\\u.exe".to_string()));
        assert!(ids.contains(&"Services|beep|beep.sys".to_string()));
        assert!(ids.contains(&"AppInit_DLLs|appinit_dlls|a.dll".to_string()));
        assert!(ids.contains(&"AppInit_DLLs|appinit_dlls|b.dll".to_string()));
    }

    #[test]
    fn raw_extraction_matches_live_for_clean_registry() {
        let reg = populated_registry();
        let live = extract_live_win32(&reg, &catalog());
        let raws: Vec<(NtPath, RawHive)> = reg
            .hives()
            .iter()
            .map(|h| (h.mount().clone(), RawHive::parse(&h.to_bytes()).unwrap()))
            .collect();
        let raw = extract_raw(&raws, &catalog());
        let mut a: Vec<String> = live.iter().map(AsepHook::identity).collect();
        let mut b: Vec<String> = raw.iter().map(AsepHook::identity).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_value_visible_only_in_raw_view() {
        let mut reg = populated_registry();
        let win = p("HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows");
        let mut v = Value::new("AppInit_DLLs", ValueData::sz("msvsres.dll"));
        v.corrupt_data = true;
        reg.set_value_raw(&win, v).unwrap();

        let live = extract_live_win32(&reg, &catalog());
        assert!(
            !live.iter().any(|h| h.target.contains("msvsres")),
            "live view must hide the corrupt value"
        );
        let raws: Vec<(NtPath, RawHive)> = reg
            .hives()
            .iter()
            .map(|h| (h.mount().clone(), RawHive::parse(&h.to_bytes()).unwrap()))
            .collect();
        let raw = extract_raw(&raws, &catalog());
        let hit = raw
            .iter()
            .find(|h| h.target.contains("msvsres"))
            .expect("raw view must report the corrupt value");
        assert!(hit.corrupt);
    }

    #[test]
    fn nul_embedded_value_name_renders_differently_per_view() {
        let mut reg = populated_registry();
        let run = p("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
        let sneaky = NtString::from_units(&[b'e' as u16, 0, b'!' as u16]);
        reg.set_value_raw(&run, Value::new(sneaky, ValueData::sz("evil.exe")))
            .unwrap();

        let live = extract_live_win32(&reg, &catalog());
        let live_entry = live
            .iter()
            .find(|h| h.target == "evil.exe")
            .expect("value enumerable");
        assert_eq!(live_entry.entry, "e", "win32 truncates at NUL");

        let raws: Vec<(NtPath, RawHive)> = reg
            .hives()
            .iter()
            .map(|h| (h.mount().clone(), RawHive::parse(&h.to_bytes()).unwrap()))
            .collect();
        let raw = extract_raw(&raws, &catalog());
        let raw_entry = raw.iter().find(|h| h.target == "evil.exe").unwrap();
        assert_eq!(raw_entry.entry, "e\\0!", "raw view keeps the counted name");
        assert_ne!(live_entry.identity(), raw_entry.identity());
    }

    #[test]
    fn missing_asep_keys_are_skipped() {
        let reg = Registry::standard();
        let hooks = extract_live_win32(&reg, &catalog());
        assert!(hooks.is_empty());
    }

    #[test]
    fn subkey_per_entry_without_target_value() {
        let mut reg = Registry::standard();
        let bho = p(
            "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Explorer\\Browser Helper Objects\\{CLSID-1}",
        );
        reg.create_key(&bho).unwrap();
        let hooks = extract_live_win32(&reg, &catalog());
        let h = hooks.iter().find(|h| h.asep_id == "BHO").unwrap();
        assert_eq!(h.entry, "{CLSID-1}");
        assert_eq!(h.target, "");
    }
}
