//! A simulated Windows Registry: hives, cells, values, and the ASEP catalog.
//!
//! The Windows Registry is a centralized, hierarchical store of name–value
//! pairs, composed of several *hives*, each backed by a file with a
//! well-defined binary schema (paper, Section 3). GhostBuster's low-level
//! Registry scan copies and parses the raw hive files directly, bypassing the
//! `RegEnumValue`/`NtEnumerateKey` APIs a ghostware program can hook.
//!
//! This crate provides:
//!
//! * [`Key`]/[`Value`] — the live configuration-manager tree.
//! * [`Hive`] — a mounted tree with a backing-file path, serializable to a
//!   cell-based binary format ([`Hive::to_bytes`]) modeled on the real `regf`
//!   layout (allocated cells holding key nodes, value records, subkey lists,
//!   and data).
//! * [`RawHive`] — the **independent parser** used by the low-level and
//!   outside-the-box scans. It detects and *reports* value records whose
//!   declared data length disagrees with the data cell — the corruption that
//!   produced the paper's single Registry false positive.
//! * [`Registry`] — the full forest of mounted hives with path resolution.
//! * [`asep`] — the catalog of Auto-Start Extensibility Points the paper's
//!   Gatekeeper work identified; ghostware hides its ASEP hooks to survive
//!   reboots undetected.
//!
//! Registry names are counted UTF-16 [`NtString`]s and may embed `NUL`s —
//! entries created that way through the native API are invisible to
//! Win32-level tools, the second Registry-hiding trick of Section 3.
//!
//! [`NtString`]: strider_nt_core::NtString
//!
//! # Examples
//!
//! ```
//! use strider_hive::{Registry, ValueData};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = Registry::standard();
//! let run = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run".parse()?;
//! reg.create_key(&run)?;
//! reg.set_value(&run, "updater", ValueData::sz("C:\\windows\\updater.exe"))?;
//!
//! // Low-level view: serialize the hive, re-parse the raw bytes.
//! let hive = reg.hive_containing(&run).unwrap();
//! let raw = strider_hive::RawHive::parse(&hive.to_bytes())?;
//! assert!(raw.all_values().iter().any(|(_, v)| v.name.to_win32_lossy() == "updater"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asep;
mod format;
mod key;
mod registry;

pub use format::{HiveFormatError, RawHive, RawKey, RawValue};
pub use key::{Key, Value, ValueData};
pub use registry::{Hive, Registry, RegistryError};
pub use strider_support::fault::{Defect, DefectKind, Salvaged};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::asep::{self, AsepHook, AsepKind, AsepLocation, KeyView, ViewedValue};
    pub use crate::{
        Hive, HiveFormatError, Key, RawHive, RawKey, RawValue, Registry, RegistryError, Value,
        ValueData,
    };
}
