//! The scan-observation tap: what ghostware can see of a scan in flight.
//!
//! The paper's countermeasures discussion (Section 7) anticipates ghostware
//! that *adapts* to the scanner — unhiding while a low-level scan runs,
//! re-hooking after a sweep, flickering which resources hide. All of those
//! tactics need a sensor. On a real machine the sensor is free: a rootkit
//! sitting on the query chain sees every `NtQueryDirectoryFile` go by, a
//! filter driver sees raw volume reads, and the process list names the
//! scanner binary. [`ScanTap`] models exactly that observable surface —
//! and *only* that surface.
//!
//! Crucially, [`Machine::snapshot_disk`] (the outside-the-box capture) is
//! **not** tapped: powering the box down and reading the disk from a clean
//! environment is invisible to software running inside the box, which is
//! precisely the paper's argument for why the outside-the-box scan wins
//! the arms race.
//!
//! The tap is a clone-handle (like `FlightRecorder`): [`Machine`] owns one
//! and records into it from `&self` query/read paths; ghostware filters
//! capture a clone and consult it per call. All counters are monotonic and
//! cheap (atomics; one small mutex for the run/caller state).
//!
//! [`Machine`]: crate::Machine
//! [`Machine::snapshot_disk`]: crate::Machine::snapshot_disk

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::query::QueryKind;

/// How many distinct recent caller image names the tap retains.
const RECENT_CALLERS: usize = 16;

/// Which low-level truth source a raw read touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawSource {
    /// The raw NTFS volume image ([`read_raw_volume_image`] and its
    /// fallible wrapper).
    ///
    /// [`read_raw_volume_image`]: crate::Machine::read_raw_volume_image
    Volume,
    /// A Registry hive's backing bytes ([`copy_hive_bytes`]).
    ///
    /// [`copy_hive_bytes`]: crate::Machine::copy_hive_bytes
    Hive,
    /// A kernel crash-dump capture ([`try_crash_dump`]).
    ///
    /// [`try_crash_dump`]: crate::Machine::try_crash_dump
    Dump,
}

#[derive(Debug, Default)]
struct RunState {
    /// Kind of the most recent query.
    last_kind: Option<QueryKind>,
    /// Length of the current same-kind query run (including the latest).
    run_length: u64,
    /// Recent distinct caller image names, newest last, bounded.
    callers: Vec<String>,
}

#[derive(Debug)]
struct TapInner {
    /// Total queries observed on the hook chain.
    queries: AtomicU64,
    /// Total raw truth-source reads observed.
    raw_reads: AtomicU64,
    /// Query counter value at the most recent raw read of each source;
    /// `u64::MAX` means that source has never been read.
    raw_volume_at: AtomicU64,
    raw_hive_at: AtomicU64,
    raw_dump_at: AtomicU64,
    run: Mutex<RunState>,
}

/// A clone-handle view of in-flight scan activity, as observable from
/// *inside* the box.
///
/// Obtained from [`Machine::scan_tap`]; every clone shares the same
/// counters. Installed ghostware captures a clone in its query filters and
/// uses it to sense scans: raw-read activity on the volume/hive/dump
/// sources, burst-enumeration patterns (long same-kind query runs), and
/// scanner process names among recent callers.
///
/// [`Machine::scan_tap`]: crate::Machine::scan_tap
#[derive(Debug, Clone)]
pub struct ScanTap {
    inner: Arc<TapInner>,
}

impl Default for ScanTap {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanTap {
    /// Creates a fresh tap with zeroed counters.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TapInner {
                queries: AtomicU64::new(0),
                raw_reads: AtomicU64::new(0),
                raw_volume_at: AtomicU64::new(u64::MAX),
                raw_hive_at: AtomicU64::new(u64::MAX),
                raw_dump_at: AtomicU64::new(u64::MAX),
                run: Mutex::new(RunState::default()),
            }),
        }
    }

    // --------------------------------------------------------------
    // Recording (called by Machine)
    // --------------------------------------------------------------

    /// Records one query entering the hook chain. Called by
    /// [`Machine::query`]/[`Machine::query_traced`] before any hook runs,
    /// so filters consulting the tap already see the in-flight query.
    ///
    /// [`Machine::query`]: crate::Machine::query
    /// [`Machine::query_traced`]: crate::Machine::query_traced
    pub(crate) fn record_query(&self, kind: QueryKind, caller: &str) {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        let mut run = self.inner.run.lock().unwrap_or_else(|e| e.into_inner());
        if run.last_kind == Some(kind) {
            run.run_length += 1;
        } else {
            run.last_kind = Some(kind);
            run.run_length = 1;
        }
        if !run.callers.iter().any(|c| c == caller) {
            if run.callers.len() == RECENT_CALLERS {
                run.callers.remove(0);
            }
            run.callers.push(caller.to_string());
        }
    }

    /// Records one raw read of a low-level truth source.
    pub(crate) fn record_raw_read(&self, source: RawSource) {
        self.inner.raw_reads.fetch_add(1, Ordering::Relaxed);
        let now = self.inner.queries.load(Ordering::Relaxed);
        let slot = match source {
            RawSource::Volume => &self.inner.raw_volume_at,
            RawSource::Hive => &self.inner.raw_hive_at,
            RawSource::Dump => &self.inner.raw_dump_at,
        };
        slot.store(now, Ordering::Relaxed);
    }

    // --------------------------------------------------------------
    // Sensing (called by ghostware)
    // --------------------------------------------------------------

    /// Total queries observed so far.
    pub fn queries(&self) -> u64 {
        self.inner.queries.load(Ordering::Relaxed)
    }

    /// Total raw truth-source reads observed so far.
    pub fn raw_reads(&self) -> u64 {
        self.inner.raw_reads.load(Ordering::Relaxed)
    }

    /// How many queries have passed since the most recent raw read of
    /// *any* source, or `None` if no raw read has happened yet. `Some(0)`
    /// means a raw read just fired.
    pub fn queries_since_raw_read(&self) -> Option<u64> {
        let at = [
            self.inner.raw_volume_at.load(Ordering::Relaxed),
            self.inner.raw_hive_at.load(Ordering::Relaxed),
            self.inner.raw_dump_at.load(Ordering::Relaxed),
        ]
        .into_iter()
        .filter(|&v| v != u64::MAX)
        .max()?;
        Some(self.queries().saturating_sub(at))
    }

    /// The kind of the most recent query and the length of the current
    /// same-kind run (a long run is the fingerprint of a bulk
    /// enumeration). `(None, 0)` before the first query.
    pub fn current_run(&self) -> (Option<QueryKind>, u64) {
        let run = self.inner.run.lock().unwrap_or_else(|e| e.into_inner());
        (run.last_kind, run.run_length)
    }

    /// True if a recent caller's image name contains `needle`
    /// (case-insensitive) — e.g. `saw_caller("ghostbuster")`.
    pub fn saw_caller(&self, needle: &str) -> bool {
        let needle = needle.to_ascii_lowercase();
        let run = self.inner.run.lock().unwrap_or_else(|e| e.into_inner());
        run.callers.iter().any(|c| c.contains(&needle))
    }

    /// Recent distinct caller image names, newest last.
    pub fn recent_callers(&self) -> Vec<String> {
        let run = self.inner.run.lock().unwrap_or_else(|e| e.into_inner());
        run.callers.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_counters_and_track_runs() {
        let tap = ScanTap::new();
        let view = tap.clone();
        assert_eq!(view.queries(), 0);
        assert_eq!(view.queries_since_raw_read(), None);
        tap.record_query(QueryKind::Files, "explorer.exe");
        tap.record_query(QueryKind::Files, "ghostbuster.exe");
        tap.record_query(QueryKind::Processes, "ghostbuster.exe");
        assert_eq!(view.queries(), 3);
        assert_eq!(view.current_run(), (Some(QueryKind::Processes), 1));
        tap.record_query(QueryKind::Processes, "ghostbuster.exe");
        assert_eq!(view.current_run(), (Some(QueryKind::Processes), 2));
        assert!(view.saw_caller("GHOSTBUSTER"));
        assert!(!view.saw_caller("winpe"));
        assert_eq!(view.recent_callers().len(), 2);
    }

    #[test]
    fn raw_reads_reset_the_query_distance() {
        let tap = ScanTap::new();
        tap.record_query(QueryKind::Files, "a.exe");
        tap.record_raw_read(RawSource::Volume);
        assert_eq!(tap.queries_since_raw_read(), Some(0));
        tap.record_query(QueryKind::Files, "a.exe");
        tap.record_query(QueryKind::Files, "a.exe");
        assert_eq!(tap.queries_since_raw_read(), Some(2));
        tap.record_raw_read(RawSource::Hive);
        assert_eq!(tap.queries_since_raw_read(), Some(0));
        assert_eq!(tap.raw_reads(), 2);
    }

    #[test]
    fn caller_ring_is_bounded() {
        let tap = ScanTap::new();
        for i in 0..40 {
            tap.record_query(QueryKind::Files, &format!("proc{i}.exe"));
        }
        let callers = tap.recent_callers();
        assert_eq!(callers.len(), RECENT_CALLERS);
        assert_eq!(callers.last().unwrap(), "proc39.exe");
    }
}
