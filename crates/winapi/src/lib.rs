//! The layered, hookable Windows query-API chain and the assembled
//! simulated [`Machine`].
//!
//! Between a user-mode file-query program and the physical disk "there exist
//! many layers where ghostware programs can insert themselves to intercept
//! and filter resource queries" (paper, Section 2, Figure 2). This crate
//! models that chain explicitly:
//!
//! ```text
//!  caller ──IAT──▶ Win32 API code ──▶ NtDll code ──▶ SSDT ──▶ filter
//!                (Kernel32/Advapi32)                          drivers /
//!                                                             registry
//!                                                             callbacks
//!                                                    ──▶ NTFS volume /
//!                                                        hives / kernel
//! ```
//!
//! Every arrow is a [`hook point`](Level); each of the paper's ghostware
//! techniques is an insertion at one of them. Queries enter either through
//! the Win32 surface ([`ChainEntry::Win32`]) — which additionally enforces
//! Win32 naming restrictions on the way out — or through the native APIs
//! ([`ChainEntry::Native`]), which start below the IAT and Win32-code
//! levels.
//!
//! The [`Machine`] owns the chain plus the three substrates (NTFS volume,
//! Registry, kernel), the always-running background services, and the
//! capture points the GhostBuster scanners use.
//!
//! # Examples
//!
//! Hiding a file with an NtDll detour and observing the lie:
//!
//! ```
//! use std::sync::Arc;
//! use strider_winapi::{Machine, Query, QueryKind, ChainEntry, HookScope};
//! use strider_winapi::{CallContext, Row};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::with_base_system("demo")?;
//! m.volume_mut().create_file(&"C:\\windows\\hxdef100.exe".parse()?, b"MZ")?;
//! m.install_ntdll_hook(
//!     "hxdef",
//!     vec![QueryKind::Files],
//!     HookScope::All,
//!     Arc::new(|_: &CallContext, _: &Query, rows: Vec<Row>| {
//!         rows.into_iter()
//!             .filter(|r| !r.name().to_win32_lossy().starts_with("hxdef"))
//!             .collect()
//!     }),
//! );
//! let ctx = m.context_for_name("explorer.exe").unwrap();
//! let rows = m.query(&ctx, &Query::DirectoryEnum { path: "C:\\windows".parse()? },
//!                    ChainEntry::Win32)?;
//! assert!(!rows.iter().any(|r| r.name().to_win32_lossy().starts_with("hxdef")));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hooks;
mod machine;
mod query;
mod tap;
mod trace;

pub use hooks::{
    syscall_for, Hook, HookId, HookRegistry, HookScope, HookStyle, Level, QueryFilter,
};
pub use machine::{
    ChainEntry, DiskImage, FaultInjector, HiveCopyTamper, Machine, RawImageTamper, TickTask,
};
pub use query::{
    CallContext, FileRow, ModuleRow, ProcessRow, Query, QueryKind, RegKeyRow, RegValueRow, Row,
};
pub use strider_support::fault::{FaultPlan, TransientFaults};
pub use tap::{RawSource, ScanTap};
pub use trace::{ChainStats, ChainTrace, LevelHop};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::{
        CallContext, ChainEntry, ChainStats, ChainTrace, DiskImage, FaultInjector, FaultPlan,
        FileRow, HiveCopyTamper, Hook, HookId, HookRegistry, HookScope, HookStyle, Level, LevelHop,
        Machine, ModuleRow, ProcessRow, Query, QueryFilter, QueryKind, RawImageTamper, RawSource,
        RegKeyRow, RegValueRow, Row, ScanTap, TickTask, TransientFaults,
    };
}
