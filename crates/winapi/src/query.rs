//! Queries and result rows flowing through the layered API chain.

use std::fmt;
use strider_nt_core::{NtPath, NtString, Pid};
use strider_ntfs::FileAttributes;

/// The kind of enumeration a query performs; hooks select on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// File/directory enumeration (`FindFirstFile`/`NtQueryDirectoryFile`).
    Files,
    /// Registry subkey enumeration (`RegEnumKeyEx`/`NtEnumerateKey`).
    RegKeys,
    /// Registry value enumeration (`RegEnumValue`/`NtEnumerateValueKey`).
    RegValues,
    /// Process enumeration (`NtQuerySystemInformation`).
    Processes,
    /// Per-process module enumeration (`Module32First`/`NtQueryInformationProcess`).
    Modules,
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryKind::Files => "files",
            QueryKind::RegKeys => "registry keys",
            QueryKind::RegValues => "registry values",
            QueryKind::Processes => "processes",
            QueryKind::Modules => "modules",
        };
        f.write_str(s)
    }
}

/// One enumeration request entering the API chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Enumerate one directory (non-recursive; scanners recurse by issuing
    /// one query per directory, exactly like `dir /s`).
    DirectoryEnum {
        /// The directory to list.
        path: NtPath,
    },
    /// Enumerate direct subkeys of a Registry key.
    RegEnumKeys {
        /// The key whose children to list.
        key: NtPath,
    },
    /// Enumerate values of a Registry key.
    RegEnumValues {
        /// The key whose values to list.
        key: NtPath,
    },
    /// Enumerate processes.
    ProcessList,
    /// Enumerate modules loaded in a process.
    ModuleList {
        /// The target process.
        pid: Pid,
    },
}

impl Query {
    /// The query's kind, used for hook selection.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::DirectoryEnum { .. } => QueryKind::Files,
            Query::RegEnumKeys { .. } => QueryKind::RegKeys,
            Query::RegEnumValues { .. } => QueryKind::RegValues,
            Query::ProcessList => QueryKind::Processes,
            Query::ModuleList { .. } => QueryKind::Modules,
        }
    }
}

/// A file or directory row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRow {
    /// Entry name within its directory.
    pub name: NtString,
    /// Full path of the entry.
    pub path: NtPath,
    /// Whether the entry is a directory.
    pub is_dir: bool,
    /// DOS attributes.
    pub attributes: FileAttributes,
    /// Total data size in bytes.
    pub size: u64,
}

/// A Registry subkey row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegKeyRow {
    /// Subkey name.
    pub name: NtString,
    /// Full key path.
    pub path: NtPath,
}

/// A Registry value row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegValueRow {
    /// Value name.
    pub name: NtString,
    /// The key the value lives on.
    pub key: NtPath,
    /// Rendered data.
    pub data: String,
}

/// A process row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessRow {
    /// Process id.
    pub pid: Pid,
    /// Image file name.
    pub image_name: NtString,
    /// Full image path rendered as text.
    pub image_path: String,
}

/// A module row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRow {
    /// Owning process.
    pub pid: Pid,
    /// Module name.
    pub name: NtString,
    /// Module path.
    pub path: NtString,
    /// Load base.
    pub base: u64,
}

/// One result row of any query kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Row {
    /// A file/directory entry.
    File(FileRow),
    /// A Registry subkey.
    RegKey(RegKeyRow),
    /// A Registry value.
    RegValue(RegValueRow),
    /// A process.
    Process(ProcessRow),
    /// A module.
    Module(ModuleRow),
}

impl Row {
    /// The entry's display name (used by filters matching on names).
    pub fn name(&self) -> &NtString {
        match self {
            Row::File(r) => &r.name,
            Row::RegKey(r) => &r.name,
            Row::RegValue(r) => &r.name,
            Row::Process(r) => &r.image_name,
            Row::Module(r) => &r.name,
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Row::File(r) => write!(f, "file {}", r.path),
            Row::RegKey(r) => write!(f, "key {}", r.path),
            Row::RegValue(r) => write!(f, "value {}\\{}", r.key, r.name),
            Row::Process(r) => write!(f, "process {} {}", r.pid, r.image_name),
            Row::Module(r) => write!(f, "module {} in {}", r.name, r.pid),
        }
    }
}

/// The identity of the calling process, carried through the chain so hooks
/// can scope their behaviour ("hide from Task Manager only", "hide from
/// everyone except the scanner").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallContext {
    /// The calling process.
    pub pid: Pid,
    /// The calling process's image name, lower-cased for matching.
    pub image_name: String,
}

impl CallContext {
    /// Creates a context.
    pub fn new(pid: Pid, image_name: &str) -> Self {
        Self {
            pid,
            image_name: image_name.to_ascii_lowercase(),
        }
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(
    enum QueryKind {
        Files,
        RegKeys,
        RegValues,
        Processes,
        Modules,
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_kinds() {
        assert_eq!(
            Query::DirectoryEnum {
                path: "C:\\x".parse().unwrap()
            }
            .kind(),
            QueryKind::Files
        );
        assert_eq!(Query::ProcessList.kind(), QueryKind::Processes);
        assert_eq!(Query::ModuleList { pid: Pid(4) }.kind(), QueryKind::Modules);
        assert_eq!(QueryKind::Files.to_string(), "files");
    }

    #[test]
    fn call_context_lowercases() {
        let ctx = CallContext::new(Pid(4), "GhostBuster.EXE");
        assert_eq!(ctx.image_name, "ghostbuster.exe");
    }
}
