//! Chain-traversal tracing: *where* in the hook chain a query's rows
//! mutated.
//!
//! GhostBuster's evidence is not just "this resource is hidden" but "the
//! high-level view lied" — and the lie happens at a specific [`Level`] of
//! the query chain (paper, Section 2, Figure 2). A [`ChainTrace`] records
//! one query's trip level by level ([`LevelHop`]: rows in, rows out,
//! mutated or not), and a [`ChainStats`] aggregates traces across a whole
//! scan so a telemetry span can carry `diverted_at = "NtdllCode"`-style
//! attribution.

use crate::hooks::Level;
use crate::machine::ChainEntry;
use crate::query::QueryKind;
use std::collections::BTreeMap;

/// One hook level's effect on a traced query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelHop {
    /// The level traversed.
    pub level: Level,
    /// Row count entering the level.
    pub rows_in: u64,
    /// Row count leaving the level.
    pub rows_out: u64,
    /// Whether the level changed the result (any reorder, drop, or edit —
    /// not just a count change, so same-count substitutions are caught).
    pub mutated: bool,
}

strider_support::impl_json!(struct LevelHop { level, rows_in, rows_out, mutated });

/// One query's traced trip through the chain, from truth rows to the rows
/// the caller finally sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainTrace {
    /// What was enumerated.
    pub kind: QueryKind,
    /// How the query entered the chain.
    pub entry: ChainEntry,
    /// Row count produced by the substrate before any hook ran.
    pub truth_rows: u64,
    /// The levels traversed, resource side first.
    pub hops: Vec<LevelHop>,
    /// Whether Win32 marshalling changed the result on the way out
    /// (naming-rule hiding: trailing dots, reserved names, NUL tricks).
    pub marshal_mutated: bool,
    /// Row count the caller received.
    pub final_rows: u64,
}

strider_support::impl_json!(
    struct ChainTrace {
        kind,
        entry,
        truth_rows,
        hops,
        marshal_mutated,
        final_rows,
    }
);

impl ChainTrace {
    /// Whether any hook level (or marshalling) changed the result.
    pub fn diverted(&self) -> bool {
        self.marshal_mutated || self.hops.iter().any(|h| h.mutated)
    }

    /// The first (closest-to-the-resource) level whose hook changed the
    /// result — the paper's attribution of a lie to a chain layer.
    pub fn first_diverted_level(&self) -> Option<Level> {
        self.hops.iter().find(|h| h.mutated).map(|h| h.level)
    }
}

/// Aggregated [`ChainTrace`]s across a scan: how many queries ran, how
/// many were diverted, and at which levels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Queries traced.
    pub queries: u64,
    /// Queries whose result a hook or marshalling changed.
    pub diverted: u64,
    /// Queries changed by Win32 marshalling specifically.
    pub marshal_mutations: u64,
    /// Mutation counts keyed by the level's debug name (`"NtdllCode"`, …).
    pub mutations_by_level: BTreeMap<String, u64>,
}

strider_support::impl_json!(
    struct ChainStats {
        queries,
        diverted,
        marshal_mutations,
        mutations_by_level,
    }
);

impl ChainStats {
    /// Folds one trace into the aggregate.
    pub fn absorb(&mut self, trace: &ChainTrace) {
        self.queries += 1;
        if trace.diverted() {
            self.diverted += 1;
        }
        if trace.marshal_mutated {
            self.marshal_mutations += 1;
        }
        for hop in trace.hops.iter().filter(|h| h.mutated) {
            *self
                .mutations_by_level
                .entry(format!("{:?}", hop.level))
                .or_insert(0) += 1;
        }
    }

    /// Merges another aggregate (e.g. per-directory stats into a per-scan
    /// total).
    pub fn merge(&mut self, other: &ChainStats) {
        self.queries += other.queries;
        self.diverted += other.diverted;
        self.marshal_mutations += other.marshal_mutations;
        for (level, count) in &other.mutations_by_level {
            *self.mutations_by_level.entry(level.clone()).or_insert(0) += count;
        }
    }

    /// The level that mutated the most queries — what a telemetry span
    /// reports as `diverted_at`. Ties break toward the alphabetically
    /// first name, deterministically.
    pub fn dominant_level(&self) -> Option<&str> {
        self.mutations_by_level
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(level, _)| level.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_support::json::{FromJson, JsonValue, ToJson};

    fn hop(level: Level, rows_in: u64, rows_out: u64, mutated: bool) -> LevelHop {
        LevelHop {
            level,
            rows_in,
            rows_out,
            mutated,
        }
    }

    fn sample_trace() -> ChainTrace {
        ChainTrace {
            kind: QueryKind::Files,
            entry: ChainEntry::Win32,
            truth_rows: 10,
            hops: vec![
                hop(Level::FilterDriver, 10, 10, false),
                hop(Level::Ssdt, 10, 10, false),
                hop(Level::NtdllCode, 10, 9, true),
                hop(Level::Iat, 9, 9, false),
            ],
            marshal_mutated: false,
            final_rows: 9,
        }
    }

    #[test]
    fn divergence_attributes_to_first_mutating_level() {
        let trace = sample_trace();
        assert!(trace.diverted());
        assert_eq!(trace.first_diverted_level(), Some(Level::NtdllCode));

        let clean = ChainTrace {
            hops: vec![hop(Level::Ssdt, 10, 10, false)],
            marshal_mutated: false,
            ..sample_trace()
        };
        assert!(!clean.diverted());
        assert_eq!(clean.first_diverted_level(), None);

        let marshal_only = ChainTrace {
            hops: vec![],
            marshal_mutated: true,
            ..sample_trace()
        };
        assert!(marshal_only.diverted());
        assert_eq!(marshal_only.first_diverted_level(), None);
    }

    #[test]
    fn stats_absorb_and_merge() {
        let mut stats = ChainStats::default();
        stats.absorb(&sample_trace());
        stats.absorb(&ChainTrace {
            hops: vec![hop(Level::Iat, 5, 4, true)],
            ..sample_trace()
        });
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.diverted, 2);
        assert_eq!(stats.mutations_by_level["NtdllCode"], 1);
        assert_eq!(stats.mutations_by_level["Iat"], 1);
        assert_eq!(stats.dominant_level(), Some("Iat"), "tie breaks low");

        let mut total = ChainStats::default();
        total.merge(&stats);
        total.merge(&stats);
        assert_eq!(total.queries, 4);
        assert_eq!(total.mutations_by_level["Iat"], 2);
    }

    #[test]
    fn dominant_level_tie_breaks_alphabetically() {
        let mut stats = ChainStats::default();
        stats.mutations_by_level.insert("Ssdt".into(), 3);
        stats.mutations_by_level.insert("Iat".into(), 3);
        assert_eq!(stats.dominant_level(), Some("Iat"));
    }

    #[test]
    fn trace_and_stats_round_trip_json() {
        let trace = sample_trace();
        let parsed =
            ChainTrace::from_json(&JsonValue::parse(&trace.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, trace);

        let mut stats = ChainStats::default();
        stats.absorb(&trace);
        let parsed =
            ChainStats::from_json(&JsonValue::parse(&stats.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, stats);
    }
}
