//! Hook points of the layered API chain.
//!
//! Figure 2 and Figure 5 of the paper enumerate where real ghostware inserts
//! itself between a user-mode query and the physical resource. Each of those
//! insertion points is a [`Level`] here; a [`Hook`] is one installed filter
//! at one level with a caller [`HookScope`] and an implementation
//! [`HookStyle`] (which a mechanism-targeting scanner can fingerprint —
//! unlike the cross-view diff, which never looks at mechanisms at all).

use crate::query::{CallContext, Query, QueryKind, Row};
use std::fmt;
use std::sync::Arc;
use strider_kernel::SyscallId;

/// Where in the chain a hook lives, ordered from the resource upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// A filesystem filter driver in the I/O stack (commercial file hiders).
    FilterDriver,
    /// A kernel registry callback.
    RegistryCallback,
    /// A replaced Service Dispatch Table entry (ProBot SE).
    Ssdt,
    /// Modified in-memory NtDll code (Hacker Defender, Berbew).
    NtdllCode,
    /// Modified in-memory Kernel32/Advapi32 code (Vanquish wrapper, Aphex
    /// detour).
    Win32ApiCode,
    /// A patched per-process Import Address Table entry (Urbin, Mersting,
    /// Aphex process hiding).
    Iat,
}

impl Level {
    /// All levels in result-propagation order (resource → caller).
    pub const ALL: [Level; 6] = [
        Level::FilterDriver,
        Level::RegistryCallback,
        Level::Ssdt,
        Level::NtdllCode,
        Level::Win32ApiCode,
        Level::Iat,
    ];

    /// Whether native-API callers (entering at NtDll) pass this level.
    /// IAT and Win32 code-patch hooks live above the native entry point.
    pub fn applies_to_native_calls(self) -> bool {
        !matches!(self, Level::Iat | Level::Win32ApiCode)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::FilterDriver => "filter driver",
            Level::RegistryCallback => "registry callback",
            Level::Ssdt => "SSDT",
            Level::NtdllCode => "NtDll code",
            Level::Win32ApiCode => "Win32 API code",
            Level::Iat => "IAT",
        };
        f.write_str(s)
    }
}

strider_support::impl_json!(
    enum Level {
        FilterDriver,
        RegistryCallback,
        Ssdt,
        NtdllCode,
        Win32ApiCode,
        Iat,
    }
);

/// How the hook is implemented — what a mechanism-targeting detector sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookStyle {
    /// A table entry repointed (IAT or SSDT). Visible by comparing the table
    /// against the export/original values.
    TablePatch,
    /// In-memory code replaced by a call wrapper (Vanquish): the trojan
    /// function appears in call-stack traces.
    Wrapper,
    /// In-memory code patched with a `jmp` detour that doctors the return
    /// path (Aphex, Hacker Defender): absent from call-stack traces, but
    /// in-memory code no longer matches the on-disk image.
    Detour,
    /// A legitimate-mechanism component (filter driver, registry callback):
    /// indistinguishable by mechanism from benign AV/backup software.
    LegitimateMechanism,
}

impl HookStyle {
    /// Whether the trojan code shows up in a call-stack trace of the hooked
    /// API (the paper's wrapper-vs-detour distinction).
    pub fn visible_in_stack_trace(self) -> bool {
        matches!(self, HookStyle::Wrapper | HookStyle::TablePatch)
    }
}

/// Which calling processes a hook applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HookScope {
    /// Every caller (system-wide hiding).
    All,
    /// Every caller except the named images — e.g. ghostware that excludes
    /// its own helper, or that tries not to lie to a known scanner.
    ExceptCallers(Vec<String>),
    /// Only the named images — e.g. hiding only from `taskmgr.exe`/`tlist.exe`
    /// (the targeting attack of Section 5).
    OnlyCallers(Vec<String>),
}

impl HookScope {
    /// Whether the hook applies to a call from `ctx`.
    pub fn applies_to(&self, ctx: &CallContext) -> bool {
        match self {
            HookScope::All => true,
            HookScope::ExceptCallers(names) => !names
                .iter()
                .any(|n| n.eq_ignore_ascii_case(&ctx.image_name)),
            HookScope::OnlyCallers(names) => names
                .iter()
                .any(|n| n.eq_ignore_ascii_case(&ctx.image_name)),
        }
    }
}

/// A result-set filter installed at some level of the chain.
///
/// Implementations receive the rows that the lower layers produced and
/// return the rows to pass upward — removal is hiding.
pub trait QueryFilter: Send + Sync {
    /// Filters `rows` for the given query and caller.
    fn filter(&self, ctx: &CallContext, query: &Query, rows: Vec<Row>) -> Vec<Row>;
}

impl<F> QueryFilter for F
where
    F: Fn(&CallContext, &Query, Vec<Row>) -> Vec<Row> + Send + Sync,
{
    fn filter(&self, ctx: &CallContext, query: &Query, rows: Vec<Row>) -> Vec<Row> {
        self(ctx, query, rows)
    }
}

/// A hook id, as stored in the SSDT / filter stack.
pub type HookId = u32;

/// One installed hook.
#[derive(Clone)]
pub struct Hook {
    /// Registry-assigned id.
    pub id: HookId,
    /// The installing software's name (ghostware or benign).
    pub owner: String,
    /// Chain level.
    pub level: Level,
    /// Query kinds intercepted.
    pub kinds: Vec<QueryKind>,
    /// Caller scope.
    pub scope: HookScope,
    /// Implementation mechanism.
    pub style: HookStyle,
    /// The filter body.
    pub filter: Arc<dyn QueryFilter>,
}

impl fmt::Debug for Hook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hook")
            .field("id", &self.id)
            .field("owner", &self.owner)
            .field("level", &self.level)
            .field("kinds", &self.kinds)
            .field("style", &self.style)
            .finish_non_exhaustive()
    }
}

impl Hook {
    /// Whether this hook intercepts `query` from `ctx`.
    pub fn intercepts(&self, ctx: &CallContext, query: &Query) -> bool {
        self.kinds.contains(&query.kind()) && self.scope.applies_to(ctx)
    }
}

/// The machine-wide registry of installed hooks.
#[derive(Debug, Default)]
pub struct HookRegistry {
    hooks: Vec<Hook>,
    next_id: HookId,
}

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a hook and returns its id.
    pub fn install(
        &mut self,
        owner: &str,
        level: Level,
        kinds: Vec<QueryKind>,
        scope: HookScope,
        style: HookStyle,
        filter: Arc<dyn QueryFilter>,
    ) -> HookId {
        let id = self.next_id;
        self.next_id += 1;
        self.hooks.push(Hook {
            id,
            owner: owner.to_string(),
            level,
            kinds,
            scope,
            style,
            filter,
        });
        id
    }

    /// Removes every hook installed by `owner`, returning their ids.
    pub fn remove_by_owner(&mut self, owner: &str) -> Vec<HookId> {
        let mut removed = Vec::new();
        self.hooks.retain(|h| {
            if h.owner.eq_ignore_ascii_case(owner) {
                removed.push(h.id);
                false
            } else {
                true
            }
        });
        removed
    }

    /// Removes one hook by id.
    pub fn remove(&mut self, id: HookId) -> bool {
        let before = self.hooks.len();
        self.hooks.retain(|h| h.id != id);
        self.hooks.len() != before
    }

    /// All installed hooks.
    pub fn hooks(&self) -> &[Hook] {
        &self.hooks
    }

    /// A hook by id.
    pub fn hook(&self, id: HookId) -> Option<&Hook> {
        self.hooks.iter().find(|h| h.id == id)
    }

    /// Hooks at a level that intercept the query, in installation order.
    pub fn applicable(&self, level: Level, ctx: &CallContext, query: &Query) -> Vec<&Hook> {
        self.hooks
            .iter()
            .filter(|h| h.level == level && h.intercepts(ctx, query))
            .collect()
    }
}

/// Maps a query kind to the SSDT service it dispatches through.
pub fn syscall_for(kind: QueryKind) -> SyscallId {
    match kind {
        QueryKind::Files => SyscallId::NtQueryDirectoryFile,
        QueryKind::RegKeys => SyscallId::NtEnumerateKey,
        QueryKind::RegValues => SyscallId::NtEnumerateValueKey,
        QueryKind::Processes => SyscallId::NtQuerySystemInformation,
        QueryKind::Modules => SyscallId::NtQueryInformationProcess,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strider_nt_core::Pid;

    fn noop() -> Arc<dyn QueryFilter> {
        Arc::new(|_: &CallContext, _: &Query, rows: Vec<Row>| rows)
    }

    #[test]
    fn scope_matching() {
        let ctx = CallContext::new(Pid(4), "TaskMgr.exe");
        assert!(HookScope::All.applies_to(&ctx));
        assert!(HookScope::OnlyCallers(vec!["taskmgr.exe".into()]).applies_to(&ctx));
        assert!(!HookScope::OnlyCallers(vec!["tlist.exe".into()]).applies_to(&ctx));
        assert!(!HookScope::ExceptCallers(vec!["taskmgr.exe".into()]).applies_to(&ctx));
        assert!(HookScope::ExceptCallers(vec!["tlist.exe".into()]).applies_to(&ctx));
    }

    #[test]
    fn stack_trace_visibility_follows_style() {
        assert!(HookStyle::Wrapper.visible_in_stack_trace());
        assert!(HookStyle::TablePatch.visible_in_stack_trace());
        assert!(!HookStyle::Detour.visible_in_stack_trace());
        assert!(!HookStyle::LegitimateMechanism.visible_in_stack_trace());
    }

    #[test]
    fn registry_install_remove() {
        let mut reg = HookRegistry::new();
        let a = reg.install(
            "hxdef",
            Level::NtdllCode,
            vec![QueryKind::Files],
            HookScope::All,
            HookStyle::Detour,
            noop(),
        );
        let b = reg.install(
            "hxdef",
            Level::NtdllCode,
            vec![QueryKind::Processes],
            HookScope::All,
            HookStyle::Detour,
            noop(),
        );
        assert_eq!(reg.hooks().len(), 2);
        assert!(reg.hook(a).is_some());
        let removed = reg.remove_by_owner("HXDEF");
        assert_eq!(removed, vec![a, b]);
        assert!(reg.hooks().is_empty());
        assert!(!reg.remove(a));
    }

    #[test]
    fn applicable_respects_level_kind_scope() {
        let mut reg = HookRegistry::new();
        reg.install(
            "x",
            Level::Iat,
            vec![QueryKind::Files],
            HookScope::OnlyCallers(vec!["explorer.exe".into()]),
            HookStyle::TablePatch,
            noop(),
        );
        let q = Query::DirectoryEnum {
            path: "C:\\x".parse().unwrap(),
        };
        let hit = CallContext::new(Pid(4), "explorer.exe");
        let miss = CallContext::new(Pid(8), "cmd.exe");
        assert_eq!(reg.applicable(Level::Iat, &hit, &q).len(), 1);
        assert_eq!(reg.applicable(Level::Iat, &miss, &q).len(), 0);
        assert_eq!(reg.applicable(Level::NtdllCode, &hit, &q).len(), 0);
    }

    #[test]
    fn native_call_level_applicability() {
        assert!(!Level::Iat.applies_to_native_calls());
        assert!(!Level::Win32ApiCode.applies_to_native_calls());
        assert!(Level::NtdllCode.applies_to_native_calls());
        assert!(Level::Ssdt.applies_to_native_calls());
        assert!(Level::FilterDriver.applies_to_native_calls());
    }
}
