//! The assembled simulated machine and the query-chain executor.

use crate::hooks::{
    syscall_for, Hook, HookId, HookRegistry, HookScope, HookStyle, Level, QueryFilter,
};
use crate::query::{
    CallContext, FileRow, ModuleRow, ProcessRow, Query, QueryKind, RegKeyRow, RegValueRow, Row,
};
use crate::tap::{RawSource, ScanTap};
use crate::trace::{ChainTrace, LevelHop};
use std::sync::Arc;
use strider_hive::{Registry, RegistryError, ValueData};
use strider_kernel::{Kernel, SyscallId};
use strider_nt_core::{FileRecordNumber, NtPath, NtStatus, NtString, Pid, Tick};
use strider_ntfs::{NtfsError, NtfsVolume};
use strider_support::fault::{FaultPlan, Stall, TransientFaults};
use strider_support::obs::FlightRecorder;

/// How a query enters the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainEntry {
    /// Through the Win32 APIs (`FindFirstFile`, `RegEnumValue`, Tool Help):
    /// passes every level, and results are marshalled through Win32 naming
    /// rules on the way out.
    Win32,
    /// Directly through NtDll's native APIs: skips the IAT and Win32
    /// API-code levels and skips Win32 marshalling.
    Native,
}

strider_support::impl_json!(
    enum ChainEntry {
        Win32,
        Native,
    }
);

/// Ghostware interference with the low-level hive copy (the reason the
/// inside-the-box low-level scan is only a *truth approximation*).
pub trait HiveCopyTamper: Send + Sync {
    /// Rewrites the copied hive bytes for the given mount.
    fn tamper(&self, mount: &NtPath, bytes: Vec<u8>) -> Vec<u8>;
}

/// Ghostware interference with raw volume reads (MFT sweeps) from inside
/// the box.
pub trait RawImageTamper: Send + Sync {
    /// Rewrites the raw volume image bytes.
    fn tamper(&self, bytes: Vec<u8>) -> Vec<u8>;
}

/// A background activity run on every clock tick: the always-running
/// services (AV log writers, CCM, System Restore, prefetch, browser cache)
/// that produce the paper's outside-the-box false positives.
pub trait TickTask: Send + Sync {
    /// Task name for diagnostics.
    fn name(&self) -> &str;
    /// Performs one tick of work against the machine.
    fn on_tick(&mut self, machine: &mut Machine);
}

/// Persistent state captured at shutdown or VM pause: what a WinPE CD boot
/// (or the VM host) can see without the infected OS running.
#[derive(Debug, Clone)]
pub struct DiskImage {
    /// The machine the image came from.
    pub machine_name: String,
    /// Clock value at capture.
    pub taken_at: Tick,
    /// Raw NTFS volume image.
    pub volume_image: Vec<u8>,
    /// Raw hive bytes, one per mounted hive.
    pub hives: Vec<(NtPath, Vec<u8>)>,
}

/// Deterministic fault injection for a machine's low-level read paths — the
/// harness that exercises the robustness layer. Transient countdowns make
/// the `try_*` read methods fail with [`NtStatus::DeviceNotReady`] N times
/// before recovering (retry paths); [`FaultPlan`]s corrupt the bytes those
/// reads return (salvage paths). Armed via [`Machine::set_fault_injector`].
///
/// # Examples
///
/// ```
/// use strider_winapi::{FaultInjector, Machine};
/// use strider_support::fault::FaultPlan;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Machine::with_base_system("lab-1")?;
/// m.set_fault_injector(
///     FaultInjector::new()
///         .fail_volume_reads(1)
///         .corrupt_volume(FaultPlan::new(7).bit_flips(4)),
/// );
/// assert!(m.try_read_raw_volume_image().is_err()); // transient
/// assert!(m.try_read_raw_volume_image().is_ok()); // recovered, corrupted
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    volume_faults: Option<TransientFaults>,
    hive_faults: Option<TransientFaults>,
    dump_faults: Option<TransientFaults>,
    volume_plan: Option<FaultPlan>,
    dump_plan: Option<FaultPlan>,
    hive_plans: Vec<(NtPath, FaultPlan)>,
    volume_stall: Option<Stall>,
    hive_stall: Option<Stall>,
    dump_stall: Option<Stall>,
}

impl FaultInjector {
    /// An injector with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next `n` raw-volume reads fail transiently.
    pub fn fail_volume_reads(mut self, n: u32) -> Self {
        self.volume_faults = Some(TransientFaults::failing(n));
        self
    }

    /// The next `n` hive copies (any mount) fail transiently.
    pub fn fail_hive_reads(mut self, n: u32) -> Self {
        self.hive_faults = Some(TransientFaults::failing(n));
        self
    }

    /// The next `n` crash-dump captures fail transiently.
    pub fn fail_dump_reads(mut self, n: u32) -> Self {
        self.dump_faults = Some(TransientFaults::failing(n));
        self
    }

    /// Every successful raw-volume read returns bytes corrupted by `plan`.
    pub fn corrupt_volume(mut self, plan: FaultPlan) -> Self {
        self.volume_plan = Some(plan);
        self
    }

    /// Every successful copy of the hive mounted at `mount` returns bytes
    /// corrupted by `plan`.
    pub fn corrupt_hive(mut self, mount: NtPath, plan: FaultPlan) -> Self {
        self.hive_plans.push((mount, plan));
        self
    }

    /// Every successful crash-dump capture returns bytes corrupted by
    /// `plan`.
    pub fn corrupt_dump(mut self, plan: FaultPlan) -> Self {
        self.dump_plan = Some(plan);
        self
    }

    /// Raw-volume reads return [`NtStatus::Pending`] until `stall` drains
    /// (a [`Stall::forever`] never does — only a deadline escapes it).
    pub fn stall_volume_reads(mut self, stall: Stall) -> Self {
        self.volume_stall = Some(stall);
        self
    }

    /// Hive copies (any mount) return [`NtStatus::Pending`] until `stall`
    /// drains.
    pub fn stall_hive_reads(mut self, stall: Stall) -> Self {
        self.hive_stall = Some(stall);
        self
    }

    /// Crash-dump captures return [`NtStatus::Pending`] until `stall`
    /// drains.
    pub fn stall_dump_reads(mut self, stall: Stall) -> Self {
        self.dump_stall = Some(stall);
        self
    }
}

/// The simulated Windows machine: volume + Registry + kernel + hook chain.
///
/// All ordinary software — OS utilities, services, GhostBuster's high-level
/// scans, the anti-virus scanner — observes the machine through
/// [`Machine::query`], which routes through every installed hook.
/// Low-level scans use [`Machine::copy_hive_bytes`] /
/// [`Machine::read_raw_volume_image`] / direct kernel traversals, and
/// outside-the-box scans use [`Machine::snapshot_disk`] and
/// [`strider_kernel::Kernel::crash_dump`].
///
/// # Examples
///
/// ```
/// use strider_winapi::{Machine, Query, ChainEntry};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Machine::with_base_system("lab-1")?;
/// let ctx = m.context_for_name("explorer.exe").unwrap();
/// let rows = m.query(&ctx, &Query::ProcessList, ChainEntry::Win32)?;
/// assert!(rows.len() >= 9);
/// # Ok(())
/// # }
/// ```
pub struct Machine {
    name: String,
    clock: Tick,
    volume: NtfsVolume,
    registry: Registry,
    kernel: Kernel,
    hooks: HookRegistry,
    hive_tampers: Vec<(String, Arc<dyn HiveCopyTamper>)>,
    image_tampers: Vec<(String, Arc<dyn RawImageTamper>)>,
    tick_tasks: Vec<Box<dyn TickTask>>,
    faults: Option<FaultInjector>,
    flight: Option<FlightRecorder>,
    tap: ScanTap,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("name", &self.name)
            .field("clock", &self.clock)
            .field("files", &self.volume.record_count())
            .field("keys", &self.registry.key_count())
            .field("hooks", &self.hooks.hooks().len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a bare machine: empty `C:` volume, standard hive mounts,
    /// no processes.
    pub fn bare(name: &str) -> Self {
        Self {
            name: name.to_string(),
            clock: Tick::ZERO,
            volume: NtfsVolume::new("C:"),
            registry: Registry::standard(),
            kernel: Kernel::new(),
            hooks: HookRegistry::new(),
            hive_tampers: Vec::new(),
            image_tampers: Vec::new(),
            tick_tasks: Vec::new(),
            faults: None,
            flight: None,
            tap: ScanTap::new(),
        }
    }

    /// Creates a machine with the standard base system installed: the
    /// Windows directory skeleton and core binaries on disk, benign ASEP
    /// entries in the Registry, the boot-time process set, and core drivers.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; cannot fail for the static base layout.
    pub fn with_base_system(name: &str) -> Result<Self, NtStatus> {
        let mut m = Self::bare(name);
        m.install_base_filesystem().map_err(ntfs_status)?;
        m.install_base_registry().map_err(reg_status)?;
        m.kernel = Kernel::with_base_processes();
        m.kernel.load_driver(
            "beep",
            "C:\\windows\\system32\\drivers\\beep.sys"
                .parse()
                .expect("static"),
        );
        m.kernel.load_driver(
            "null",
            "C:\\windows\\system32\\drivers\\null.sys"
                .parse()
                .expect("static"),
        );
        // The hive backing files exist on disk from first boot, so later
        // snapshots don't look like new-file churn.
        m.persist_hives()?;
        Ok(m)
    }

    fn install_base_filesystem(&mut self) -> Result<(), NtfsError> {
        let dirs = [
            "C:\\windows",
            "C:\\windows\\system32",
            "C:\\windows\\system32\\config",
            "C:\\windows\\system32\\drivers",
            "C:\\windows\\prefetch",
            "C:\\windows\\temp",
            "C:\\Program Files",
            "C:\\Documents and Settings",
            "C:\\Documents and Settings\\user",
            "C:\\Documents and Settings\\user\\Local Settings",
            "C:\\Documents and Settings\\user\\Local Settings\\Temporary Internet Files",
            "C:\\temp",
        ];
        for d in dirs {
            self.volume.mkdir_p(&d.parse().expect("static path"))?;
        }
        let files = [
            ("C:\\windows\\explorer.exe", &b"MZ explorer"[..]),
            ("C:\\windows\\system32\\ntoskrnl.exe", b"MZ ntoskrnl"),
            ("C:\\windows\\system32\\smss.exe", b"MZ smss"),
            ("C:\\windows\\system32\\csrss.exe", b"MZ csrss"),
            ("C:\\windows\\system32\\winlogon.exe", b"MZ winlogon"),
            ("C:\\windows\\system32\\services.exe", b"MZ services"),
            ("C:\\windows\\system32\\lsass.exe", b"MZ lsass"),
            ("C:\\windows\\system32\\svchost.exe", b"MZ svchost"),
            ("C:\\windows\\system32\\notepad.exe", b"MZ notepad"),
            ("C:\\windows\\system32\\cmd.exe", b"MZ cmd"),
            ("C:\\windows\\system32\\taskmgr.exe", b"MZ taskmgr"),
            ("C:\\windows\\system32\\userinit.exe", b"MZ userinit"),
            ("C:\\windows\\system32\\ctfmon.exe", b"MZ ctfmon"),
            ("C:\\windows\\system32\\kernel32.dll", b"MZ kernel32"),
            ("C:\\windows\\system32\\ntdll.dll", b"MZ ntdll"),
            ("C:\\windows\\system32\\user32.dll", b"MZ user32"),
            ("C:\\windows\\system32\\advapi32.dll", b"MZ advapi32"),
            ("C:\\windows\\system32\\drivers\\beep.sys", b"MZ beep"),
            ("C:\\windows\\system32\\drivers\\null.sys", b"MZ null"),
        ];
        for (p, data) in files {
            self.volume
                .create_file(&p.parse().expect("static path"), data)?;
        }
        Ok(())
    }

    fn install_base_registry(&mut self) -> Result<(), RegistryError> {
        let reg = &mut self.registry;
        let run: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
            .parse()
            .expect("static");
        reg.create_key(&run)?;
        reg.set_value(
            &run,
            "ctfmon",
            ValueData::sz("C:\\windows\\system32\\ctfmon.exe"),
        )?;
        for (svc, image) in [
            ("Beep", "System32\\drivers\\beep.sys"),
            ("Null", "System32\\drivers\\null.sys"),
            ("Eventlog", "C:\\windows\\system32\\services.exe"),
            (
                "lanmanserver",
                "C:\\windows\\system32\\svchost.exe -k netsvcs",
            ),
        ] {
            let key: NtPath = format!("HKLM\\SYSTEM\\CurrentControlSet\\Services\\{svc}")
                .parse()
                .expect("static");
            reg.create_key(&key)?;
            reg.set_value(&key, "ImagePath", ValueData::sz(image))?;
        }
        let winlogon: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon"
            .parse()
            .expect("static");
        reg.create_key(&winlogon)?;
        reg.set_value(&winlogon, "Shell", ValueData::sz("explorer.exe"))?;
        reg.set_value(
            &winlogon,
            "Userinit",
            ValueData::sz("C:\\windows\\system32\\userinit.exe"),
        )?;
        let windows_key: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
            .parse()
            .expect("static");
        reg.create_key(&windows_key)?;
        reg.set_value(&windows_key, "AppInit_DLLs", ValueData::sz(""))?;
        reg.create_key(
            &"HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\RunOnce"
                .parse()
                .expect("static"),
        )?;
        Ok(())
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current logical clock.
    pub fn now(&self) -> Tick {
        self.clock
    }

    /// The live volume.
    pub fn volume(&self) -> &NtfsVolume {
        &self.volume
    }

    /// Mutable access to the live volume (trusted OS-level operations).
    pub fn volume_mut(&mut self) -> &mut NtfsVolume {
        &mut self.volume
    }

    /// The live Registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the live Registry.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The hook registry (read access, e.g. for mechanism-targeting
    /// baseline detectors).
    pub fn hooks(&self) -> &HookRegistry {
        &self.hooks
    }

    // ------------------------------------------------------------------
    // Clock & background services
    // ------------------------------------------------------------------

    /// Registers an always-running background task.
    pub fn add_tick_task(&mut self, task: Box<dyn TickTask>) {
        self.tick_tasks.push(task);
    }

    /// Advances the clock by `n` ticks, running every background task once
    /// per tick.
    pub fn tick(&mut self, n: u64) {
        for _ in 0..n {
            self.clock += 1;
            self.volume.set_clock(self.clock);
            self.registry.set_clock(self.clock);
            self.kernel.set_clock(self.clock);
            let mut tasks = std::mem::take(&mut self.tick_tasks);
            for t in &mut tasks {
                t.on_tick(self);
            }
            // Tasks registered during the tick are preserved.
            tasks.append(&mut self.tick_tasks);
            self.tick_tasks = tasks;
        }
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Spawns a process (kernel bookkeeping only; the image file need not
    /// exist, as with the paper's memory-only samples).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (unknown parent).
    pub fn spawn_process(&mut self, image_name: &str, image_path: &str) -> Result<Pid, NtStatus> {
        let path: NtPath = image_path
            .parse()
            .map_err(|_| NtStatus::ObjectNameInvalid)?;
        self.kernel
            .spawn(image_name, path, None)
            .map_err(|_| NtStatus::NoSuchProcess)
    }

    /// A call context for an existing process.
    pub fn context_for(&self, pid: Pid) -> Option<CallContext> {
        self.kernel
            .process(pid)
            .map(|p| CallContext::new(pid, &p.image_name.to_win32_lossy()))
    }

    /// A call context for the first process with the given image name.
    pub fn context_for_name(&self, image_name: &str) -> Option<CallContext> {
        self.kernel
            .find_by_name(image_name)
            .first()
            .and_then(|&pid| self.context_for(pid))
    }

    /// Finds or spawns a process by name and returns its context — how the
    /// GhostBuster executable enters the machine.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures; [`NtStatus::NoSuchProcess`] if the
    /// freshly spawned process cannot be looked up (e.g. reaped by a
    /// tick task racing the spawn).
    pub fn ensure_process(
        &mut self,
        image_name: &str,
        image_path: &str,
    ) -> Result<CallContext, NtStatus> {
        if let Some(ctx) = self.context_for_name(image_name) {
            return Ok(ctx);
        }
        let pid = self.spawn_process(image_name, image_path)?;
        self.context_for(pid).ok_or(NtStatus::NoSuchProcess)
    }

    // ------------------------------------------------------------------
    // The query chain
    // ------------------------------------------------------------------

    /// Executes a query through the hook chain.
    ///
    /// # Errors
    ///
    /// Returns the status a real API would: `ObjectNameNotFound` for missing
    /// directories/keys, `NoSuchProcess` for module queries on dead pids.
    pub fn query(
        &self,
        ctx: &CallContext,
        query: &Query,
        entry: ChainEntry,
    ) -> Result<Vec<Row>, NtStatus> {
        self.tap.record_query(query.kind(), &ctx.image_name);
        let mut rows = self.truth_rows(query)?;
        for level in Level::ALL {
            if entry == ChainEntry::Native && !level.applies_to_native_calls() {
                continue;
            }
            rows = self.apply_level(level, ctx, query, rows);
        }
        if entry == ChainEntry::Win32 {
            rows = win32_marshal(rows);
        }
        Ok(rows)
    }

    /// Like [`Machine::query`], but also records a [`ChainTrace`]: the row
    /// set is compared before and after every traversed level, so a
    /// diverted call is attributable to the exact chain layer that lied.
    /// Clones the row vector once per level — use [`Machine::query`] on
    /// paths that don't need attribution.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::query`].
    pub fn query_traced(
        &self,
        ctx: &CallContext,
        query: &Query,
        entry: ChainEntry,
    ) -> Result<(Vec<Row>, ChainTrace), NtStatus> {
        self.tap.record_query(query.kind(), &ctx.image_name);
        let mut rows = self.truth_rows(query)?;
        let mut trace = ChainTrace {
            kind: query.kind(),
            entry,
            truth_rows: rows.len() as u64,
            hops: Vec::new(),
            marshal_mutated: false,
            final_rows: 0,
        };
        for level in Level::ALL {
            if entry == ChainEntry::Native && !level.applies_to_native_calls() {
                continue;
            }
            let before = rows.clone();
            rows = self.apply_level(level, ctx, query, rows);
            trace.hops.push(LevelHop {
                level,
                rows_in: before.len() as u64,
                rows_out: rows.len() as u64,
                mutated: before != rows,
            });
        }
        if entry == ChainEntry::Win32 {
            let before = rows.clone();
            rows = win32_marshal(rows);
            trace.marshal_mutated = before != rows;
        }
        trace.final_rows = rows.len() as u64;
        Ok((rows, trace))
    }

    /// Simulates a debugger taking a call-stack trace of one API call from
    /// `ctx`: returns the module/owner names that appear on the stack, in
    /// call order. Wrapper-style and table-patch hooks show up ("cause the
    /// Trojan functions to appear in the call stack trace" — paper,
    /// Section 2); detours doctor the return path and do not.
    pub fn stack_trace(&self, ctx: &CallContext, kind: QueryKind) -> Vec<String> {
        let query = match kind {
            QueryKind::Files => Query::DirectoryEnum {
                path: NtPath::root_of(self.volume.label()),
            },
            QueryKind::RegKeys => Query::RegEnumKeys {
                key: "HKLM\\SOFTWARE".parse().expect("static"),
            },
            QueryKind::RegValues => Query::RegEnumValues {
                key: "HKLM\\SOFTWARE".parse().expect("static"),
            },
            QueryKind::Processes => Query::ProcessList,
            QueryKind::Modules => Query::ModuleList { pid: ctx.pid },
        };
        let mut frames = vec![ctx.image_name.clone()];
        // Walk the chain caller-side down, recording visible trampolines.
        for level in Level::ALL.iter().rev() {
            let module = match level {
                Level::Iat => "import thunk",
                Level::Win32ApiCode => "kernel32.dll",
                Level::NtdllCode => "ntdll.dll",
                Level::Ssdt => "ntoskrnl.exe",
                Level::FilterDriver | Level::RegistryCallback => continue,
            };
            for hook in self.hooks.applicable(*level, ctx, &query) {
                if hook.style.visible_in_stack_trace() {
                    frames.push(format!("{} (trojan)", hook.owner));
                }
            }
            frames.push(module.to_string());
        }
        frames
    }

    fn apply_level(
        &self,
        level: Level,
        ctx: &CallContext,
        query: &Query,
        mut rows: Vec<Row>,
    ) -> Vec<Row> {
        match level {
            Level::FilterDriver => {
                if query.kind() == QueryKind::Files {
                    for &id in self.kernel.filter_stack() {
                        rows = self.apply_hook_id(id, ctx, query, rows);
                    }
                }
            }
            Level::RegistryCallback => {
                if matches!(query.kind(), QueryKind::RegKeys | QueryKind::RegValues) {
                    for &id in self.kernel.registry_callbacks() {
                        rows = self.apply_hook_id(id, ctx, query, rows);
                    }
                }
            }
            Level::Ssdt => {
                // The kernel dispatch table is authoritative: a restored
                // entry means the hook body no longer runs even if still
                // registered.
                if let Some(id) = self.kernel.ssdt().hook_of(syscall_for(query.kind())) {
                    rows = self.apply_hook_id(id, ctx, query, rows);
                }
            }
            Level::NtdllCode | Level::Win32ApiCode | Level::Iat => {
                let hooks: Vec<&Hook> = self.hooks.applicable(level, ctx, query);
                for h in hooks {
                    rows = h.filter.filter(ctx, query, rows);
                }
            }
        }
        rows
    }

    fn apply_hook_id(
        &self,
        id: HookId,
        ctx: &CallContext,
        query: &Query,
        rows: Vec<Row>,
    ) -> Vec<Row> {
        match self.hooks.hook(id) {
            Some(h) if h.intercepts(ctx, query) => h.filter.filter(ctx, query, rows),
            _ => rows,
        }
    }

    fn truth_rows(&self, query: &Query) -> Result<Vec<Row>, NtStatus> {
        match query {
            Query::DirectoryEnum { path } => {
                let children = self.volume.list_children(path).map_err(ntfs_status)?;
                Ok(children
                    .into_iter()
                    .map(|rec| {
                        Row::File(FileRow {
                            name: rec.name.clone(),
                            path: path.join(rec.name.clone()),
                            is_dir: rec.is_directory(),
                            attributes: rec.std_info.attributes,
                            size: rec.total_stream_bytes(),
                        })
                    })
                    .collect())
            }
            Query::RegEnumKeys { key } => {
                let k = self
                    .registry
                    .key_at(key)
                    .ok_or(NtStatus::ObjectNameNotFound)?;
                Ok(k.subkeys
                    .iter()
                    .map(|sk| {
                        Row::RegKey(RegKeyRow {
                            name: sk.name.clone(),
                            path: key.join(sk.name.clone()),
                        })
                    })
                    .collect())
            }
            Query::RegEnumValues { key } => {
                let k = self
                    .registry
                    .key_at(key)
                    .ok_or(NtStatus::ObjectNameNotFound)?;
                Ok(k.values
                    .iter()
                    // The live configuration manager fails to materialize
                    // corrupt data, so such values never reach any API view.
                    .filter(|v| !v.corrupt_data)
                    .map(|v| {
                        Row::RegValue(RegValueRow {
                            name: v.name.clone(),
                            key: key.clone(),
                            data: v.data.to_display_string(),
                        })
                    })
                    .collect())
            }
            Query::ProcessList => Ok(self
                .kernel
                .active_process_list()
                .into_iter()
                .filter_map(|pid| self.kernel.process(pid))
                .map(|p| {
                    Row::Process(ProcessRow {
                        pid: p.pid,
                        image_name: p.image_name.clone(),
                        image_path: p.image_path.to_string(),
                    })
                })
                .collect()),
            Query::ModuleList { pid } => {
                let p = self.kernel.process(*pid).ok_or(NtStatus::NoSuchProcess)?;
                Ok(p.peb_modules
                    .iter()
                    .map(|m| {
                        Row::Module(ModuleRow {
                            pid: *pid,
                            name: m.name.clone(),
                            path: m.path.clone(),
                            base: m.base,
                        })
                    })
                    .collect())
            }
        }
    }

    /// A plain `dir` listing (no `/a`): Win32 enumeration that additionally
    /// drops entries carrying the *benign* HIDDEN attribute. GhostBuster's
    /// own scans never use this — attribute hiding is honest metadata, not
    /// ghostware — but casual users do, which is why attribute-hidden files
    /// feel "hidden" without ever being a cross-view discrepancy.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::query`].
    pub fn plain_dir(&self, ctx: &CallContext, path: &NtPath) -> Result<Vec<Row>, NtStatus> {
        let rows = self.query(
            ctx,
            &Query::DirectoryEnum { path: path.clone() },
            ChainEntry::Win32,
        )?;
        Ok(rows
            .into_iter()
            .filter(|r| match r {
                Row::File(f) => !f.attributes.contains(strider_ntfs::FileAttributes::HIDDEN),
                _ => true,
            })
            .collect())
    }

    // ------------------------------------------------------------------
    // File creation through the two API levels
    // ------------------------------------------------------------------

    /// Creates a file through the Win32 layer, which enforces naming rules
    /// and `MAX_PATH`.
    ///
    /// # Errors
    ///
    /// `ObjectNameInvalid` for Win32-illegal names or over-long paths, plus
    /// the NTFS-level errors.
    pub fn win32_create_file(
        &mut self,
        path: &NtPath,
        data: &[u8],
    ) -> Result<FileRecordNumber, NtStatus> {
        if !path.is_win32_visible() {
            return Err(NtStatus::ObjectNameInvalid);
        }
        self.volume.create_file(path, data).map_err(ntfs_status)
    }

    /// Creates a file through the native API: only NTFS-level rules apply,
    /// so trailing dots, reserved device names, and deep paths all succeed —
    /// and become invisible to Win32 enumeration.
    ///
    /// # Errors
    ///
    /// NTFS-level errors only.
    pub fn native_create_file(
        &mut self,
        path: &NtPath,
        data: &[u8],
    ) -> Result<FileRecordNumber, NtStatus> {
        self.volume.create_file(path, data).map_err(ntfs_status)
    }

    // ------------------------------------------------------------------
    // Low-level scan sources (inside the box)
    // ------------------------------------------------------------------

    /// Reads the raw volume image from inside the box, as the low-level MFT
    /// scan does. Ghostware with sufficient privilege may tamper with this
    /// copy — which is why this source is a truth *approximation*.
    pub fn read_raw_volume_image(&self) -> Vec<u8> {
        self.tap.record_raw_read(RawSource::Volume);
        let mut bytes = self.volume.to_image();
        for (_, t) in &self.image_tampers {
            bytes = t.tamper(bytes);
        }
        bytes
    }

    /// Copies a hive's backing bytes from inside the box (the low-level
    /// Registry scan's "copy and parse" step), subject to tampering.
    pub fn copy_hive_bytes(&self, mount: &NtPath) -> Option<Vec<u8>> {
        self.tap.record_raw_read(RawSource::Hive);
        let hive = self
            .registry
            .hives()
            .iter()
            .find(|h| h.mount().eq_ignore_case(mount))?;
        let mut bytes = hive.to_bytes();
        for (_, t) in &self.hive_tampers {
            bytes = t.tamper(mount, bytes);
        }
        Some(bytes)
    }

    // ------------------------------------------------------------------
    // Fault-injection harness
    // ------------------------------------------------------------------

    /// Arms (or replaces) the machine's fault injector. Only the fallible
    /// `try_*` read paths consult it; the legacy infallible readers are
    /// untouched.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// Disarms fault injection.
    pub fn clear_fault_injector(&mut self) {
        self.faults = None;
    }

    /// Attaches a flight-recorder handle: the fallible `try_*` read paths
    /// log every injected stall, transient failure, and applied
    /// corruption plan into it, so a degraded pipeline's black box shows
    /// the device-level trouble that preceded the failure.
    pub fn set_flight_recorder(&mut self, recorder: FlightRecorder) {
        self.flight = Some(recorder);
    }

    /// Detaches the flight-recorder handle.
    pub fn clear_flight_recorder(&mut self) {
        self.flight = None;
    }

    /// A clone-handle view of in-flight scan activity, as observable from
    /// inside the box: query counts, same-kind enumeration runs, recent
    /// caller names, and raw truth-source reads. Installed ghostware uses
    /// this to sense scans and adapt (see `strider_ghostware::evasive`);
    /// [`Machine::snapshot_disk`] is deliberately *not* recorded here —
    /// outside-the-box capture is invisible from inside the box.
    pub fn scan_tap(&self) -> ScanTap {
        self.tap.clone()
    }

    fn flight_fault(&self, what: &str, detail: &str) {
        if let Some(recorder) = &self.flight {
            recorder.fault(what, detail);
        }
    }

    /// Fallible [`read_raw_volume_image`]: consumes one transient fault
    /// ([`NtStatus::DeviceNotReady`]) if armed, then returns the (possibly
    /// plan-corrupted) image bytes.
    ///
    /// [`read_raw_volume_image`]: Machine::read_raw_volume_image
    ///
    /// # Errors
    ///
    /// [`NtStatus::Pending`] while an injected stall holds the read;
    /// [`NtStatus::DeviceNotReady`] while injected transient faults remain.
    pub fn try_read_raw_volume_image(&self) -> Result<Vec<u8>, NtStatus> {
        if let Some(f) = &self.faults {
            if f.volume_stall.as_ref().is_some_and(|s| s.poll_pending()) {
                self.flight_fault("volume.read", "stalled (Pending)");
                return Err(NtStatus::Pending);
            }
            if f.volume_faults.as_ref().is_some_and(|t| t.should_fail()) {
                self.flight_fault("volume.read", "transient DeviceNotReady");
                return Err(NtStatus::DeviceNotReady);
            }
        }
        let bytes = self.read_raw_volume_image();
        Ok(
            match self.faults.as_ref().and_then(|f| f.volume_plan.as_ref()) {
                Some(plan) => {
                    self.flight_fault("volume.read", "corruption plan applied");
                    plan.apply(&bytes)
                }
                None => bytes,
            },
        )
    }

    /// Fallible [`copy_hive_bytes`]: consumes one transient fault if armed,
    /// then returns the (possibly plan-corrupted) hive bytes.
    ///
    /// [`copy_hive_bytes`]: Machine::copy_hive_bytes
    ///
    /// # Errors
    ///
    /// [`NtStatus::Pending`] while an injected stall holds the copy;
    /// [`NtStatus::DeviceNotReady`] while injected transient faults remain;
    /// [`NtStatus::ObjectNameNotFound`] if no hive is mounted at `mount`.
    pub fn try_copy_hive_bytes(&self, mount: &NtPath) -> Result<Vec<u8>, NtStatus> {
        if let Some(f) = &self.faults {
            if f.hive_stall.as_ref().is_some_and(|s| s.poll_pending()) {
                self.flight_fault("hive.copy", "stalled (Pending)");
                return Err(NtStatus::Pending);
            }
            if f.hive_faults.as_ref().is_some_and(|t| t.should_fail()) {
                self.flight_fault("hive.copy", "transient DeviceNotReady");
                return Err(NtStatus::DeviceNotReady);
            }
        }
        let bytes = self
            .copy_hive_bytes(mount)
            .ok_or(NtStatus::ObjectNameNotFound)?;
        let plan = self.faults.as_ref().and_then(|f| {
            f.hive_plans
                .iter()
                .find(|(m, _)| m.eq_ignore_case(mount))
                .map(|(_, p)| p)
        });
        Ok(match plan {
            Some(plan) => {
                self.flight_fault("hive.copy", &format!("corruption plan applied to {mount}"));
                plan.apply(&bytes)
            }
            None => bytes,
        })
    }

    /// Fallible crash-dump capture: consumes one transient fault if armed
    /// here or injected into the kernel itself, then returns the (possibly
    /// plan-corrupted) dump bytes.
    ///
    /// # Errors
    ///
    /// [`NtStatus::Pending`] while an injected stall holds the capture;
    /// [`NtStatus::DeviceNotReady`] while transient faults remain.
    pub fn try_crash_dump(&self) -> Result<Vec<u8>, NtStatus> {
        if let Some(f) = &self.faults {
            if f.dump_stall.as_ref().is_some_and(|s| s.poll_pending()) {
                self.flight_fault("kernel.dump", "stalled (Pending)");
                return Err(NtStatus::Pending);
            }
            if f.dump_faults.as_ref().is_some_and(|t| t.should_fail()) {
                self.flight_fault("kernel.dump", "transient DeviceNotReady");
                return Err(NtStatus::DeviceNotReady);
            }
        }
        self.tap.record_raw_read(RawSource::Dump);
        let bytes = self.kernel.try_crash_dump().ok_or_else(|| {
            self.flight_fault("kernel.dump", "kernel capture DeviceNotReady");
            NtStatus::DeviceNotReady
        })?;
        Ok(
            match self.faults.as_ref().and_then(|f| f.dump_plan.as_ref()) {
                Some(plan) => {
                    self.flight_fault("kernel.dump", "corruption plan applied");
                    plan.apply(&bytes)
                }
                None => bytes,
            },
        )
    }

    /// Registers ghostware interference with hive copies.
    pub fn add_hive_tamper(&mut self, owner: &str, tamper: Arc<dyn HiveCopyTamper>) {
        self.hive_tampers.push((owner.to_string(), tamper));
    }

    /// Registers ghostware interference with raw volume reads.
    pub fn add_image_tamper(&mut self, owner: &str, tamper: Arc<dyn RawImageTamper>) {
        self.image_tampers.push((owner.to_string(), tamper));
    }

    // ------------------------------------------------------------------
    // Outside-the-box capture
    // ------------------------------------------------------------------

    /// Flushes every hive to its backing file on the volume.
    ///
    /// # Errors
    ///
    /// Propagates volume errors creating the backing files.
    pub fn persist_hives(&mut self) -> Result<(), NtStatus> {
        let hives: Vec<(NtPath, Vec<u8>)> = self
            .registry
            .hives()
            .iter()
            .map(|h| (h.backing_file().clone(), h.to_bytes()))
            .collect();
        for (path, bytes) in hives {
            if let Some(parent) = path.parent() {
                self.volume.mkdir_p(&parent).map_err(ntfs_status)?;
            }
            if self.volume.exists(&path) {
                self.volume.write_file(&path, &bytes).map_err(ntfs_status)?;
            } else {
                self.volume
                    .create_file(&path, &bytes)
                    .map_err(ntfs_status)?;
            }
        }
        Ok(())
    }

    /// Captures the persistent state as seen from a clean boot: hives are
    /// flushed, then the raw volume and hive bytes are returned *without*
    /// any tampering — the ghostware is not running in WinPE.
    ///
    /// # Errors
    ///
    /// Propagates hive-flush errors.
    pub fn snapshot_disk(&mut self) -> Result<DiskImage, NtStatus> {
        self.persist_hives()?;
        Ok(DiskImage {
            machine_name: self.name.clone(),
            taken_at: self.clock,
            volume_image: self.volume.to_image(),
            hives: self
                .registry
                .hives()
                .iter()
                .map(|h| (h.mount().clone(), h.to_bytes()))
                .collect(),
        })
    }

    // ------------------------------------------------------------------
    // Hook installation (the ghostware-facing API)
    // ------------------------------------------------------------------

    /// Patches per-process IAT entries (Urbin/Mersting style).
    pub fn install_iat_hook(
        &mut self,
        owner: &str,
        kinds: Vec<QueryKind>,
        scope: HookScope,
        filter: Arc<dyn QueryFilter>,
    ) -> HookId {
        self.hooks.install(
            owner,
            Level::Iat,
            kinds,
            scope,
            HookStyle::TablePatch,
            filter,
        )
    }

    /// Modifies in-memory Win32 API code (Vanquish wrapper / Aphex detour).
    pub fn install_win32_code_hook(
        &mut self,
        owner: &str,
        kinds: Vec<QueryKind>,
        scope: HookScope,
        style: HookStyle,
        filter: Arc<dyn QueryFilter>,
    ) -> HookId {
        self.hooks
            .install(owner, Level::Win32ApiCode, kinds, scope, style, filter)
    }

    /// Detours in-memory NtDll code (Hacker Defender/Berbew style).
    pub fn install_ntdll_hook(
        &mut self,
        owner: &str,
        kinds: Vec<QueryKind>,
        scope: HookScope,
        filter: Arc<dyn QueryFilter>,
    ) -> HookId {
        self.hooks.install(
            owner,
            Level::NtdllCode,
            kinds,
            scope,
            HookStyle::Detour,
            filter,
        )
    }

    /// Replaces an SSDT dispatch entry (ProBot SE style).
    pub fn install_ssdt_hook(
        &mut self,
        owner: &str,
        syscall: SyscallId,
        kinds: Vec<QueryKind>,
        filter: Arc<dyn QueryFilter>,
    ) -> HookId {
        let id = self.hooks.install(
            owner,
            Level::Ssdt,
            kinds,
            HookScope::All,
            HookStyle::TablePatch,
            filter,
        );
        self.kernel.ssdt_mut().install_hook(syscall, id);
        id
    }

    /// Inserts a filesystem filter driver (commercial file-hider style).
    pub fn install_filter_driver(
        &mut self,
        owner: &str,
        scope: HookScope,
        filter: Arc<dyn QueryFilter>,
    ) -> HookId {
        let id = self.hooks.install(
            owner,
            Level::FilterDriver,
            vec![QueryKind::Files],
            scope,
            HookStyle::LegitimateMechanism,
            filter,
        );
        self.kernel.push_filter(id);
        id
    }

    /// Registers a kernel registry callback.
    pub fn install_registry_callback(
        &mut self,
        owner: &str,
        scope: HookScope,
        filter: Arc<dyn QueryFilter>,
    ) -> HookId {
        let id = self.hooks.install(
            owner,
            Level::RegistryCallback,
            vec![QueryKind::RegKeys, QueryKind::RegValues],
            scope,
            HookStyle::LegitimateMechanism,
            filter,
        );
        self.kernel.register_registry_callback(id);
        id
    }

    /// Removes every hook, filter, callback, SSDT patch, and tamper that
    /// `owner` installed — the uninstall/remediation path.
    pub fn remove_software(&mut self, owner: &str) {
        let ids = self.hooks.remove_by_owner(owner);
        for id in ids {
            self.kernel.remove_filter(id);
            self.kernel.remove_registry_callback(id);
            for svc in SyscallId::ALL {
                if self.kernel.ssdt().hook_of(svc) == Some(id) {
                    self.kernel.ssdt_mut().restore(svc);
                }
            }
        }
        self.hive_tampers
            .retain(|(o, _)| !o.eq_ignore_ascii_case(owner));
        self.image_tampers
            .retain(|(o, _)| !o.eq_ignore_ascii_case(owner));
    }
}

/// Win32 marshalling applied on the way out of a Win32-entry query: the
/// naming-rule asymmetries that make native-created artifacts invisible.
fn win32_marshal(rows: Vec<Row>) -> Vec<Row> {
    rows.into_iter()
        .filter_map(|row| match row {
            Row::File(r) => r.path.is_win32_visible().then_some(Row::File(r)),
            Row::RegKey(mut r) => {
                r.name = truncate_at_nul(&r.name);
                Some(Row::RegKey(r))
            }
            Row::RegValue(mut r) => {
                r.name = truncate_at_nul(&r.name);
                Some(Row::RegValue(r))
            }
            Row::Module(r) => (!r.name.is_empty()).then_some(Row::Module(r)),
            Row::Process(r) => Some(Row::Process(r)),
        })
        .collect()
}

fn truncate_at_nul(name: &NtString) -> NtString {
    match name.units().iter().position(|&u| u == 0) {
        Some(i) => NtString::from_units(&name.units()[..i]),
        None => name.clone(),
    }
}

fn ntfs_status(e: NtfsError) -> NtStatus {
    match e {
        NtfsError::ParentNotFound(_) => NtStatus::ObjectPathNotFound,
        NtfsError::NotFound(_) => NtStatus::ObjectNameNotFound,
        NtfsError::AlreadyExists(_) => NtStatus::ObjectNameCollision,
        NtfsError::NotADirectory(_) => NtStatus::NotADirectory,
        NtfsError::IsADirectory(_) => NtStatus::IsADirectory,
        NtfsError::DirectoryNotEmpty(_) => NtStatus::DirectoryNotEmpty,
        NtfsError::InvalidName(_) => NtStatus::ObjectNameInvalid,
        NtfsError::WrongVolume { .. } => NtStatus::ObjectPathNotFound,
    }
}

fn reg_status(e: RegistryError) -> NtStatus {
    match e {
        RegistryError::NoHiveForPath(_) | RegistryError::KeyNotFound(_) => {
            NtStatus::ObjectNameNotFound
        }
        RegistryError::ValueNotFound { .. } => NtStatus::ObjectNameNotFound,
        RegistryError::AlreadyMounted(_) => NtStatus::ObjectNameCollision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> NtPath {
        s.parse().unwrap()
    }

    #[test]
    fn fault_injector_gates_every_low_level_read_path() {
        let mut m = Machine::with_base_system("faulty").unwrap();
        let software = p("HKLM\\SOFTWARE");
        m.set_fault_injector(
            FaultInjector::new()
                .fail_volume_reads(1)
                .fail_hive_reads(2)
                .fail_dump_reads(1),
        );
        assert_eq!(
            m.try_read_raw_volume_image().unwrap_err(),
            NtStatus::DeviceNotReady
        );
        assert!(m.try_read_raw_volume_image().is_ok());
        assert!(m.try_copy_hive_bytes(&software).is_err());
        assert!(m.try_copy_hive_bytes(&software).is_err());
        assert!(m.try_copy_hive_bytes(&software).is_ok());
        assert!(m.try_crash_dump().is_err());
        assert!(m.try_crash_dump().is_ok());
        // Disarmed: everything succeeds immediately.
        m.clear_fault_injector();
        assert!(m.try_read_raw_volume_image().is_ok());
        // Unknown mounts are a hard error, not a transient one.
        assert_eq!(
            m.try_copy_hive_bytes(&p("HKLM\\NOPE")).unwrap_err(),
            NtStatus::ObjectNameNotFound
        );
    }

    #[test]
    fn fault_events_land_in_an_attached_flight_recorder() {
        use strider_support::obs::{FakeClock, FlightEventKind};
        let mut m = Machine::with_base_system("blackbox").unwrap();
        let recorder = FlightRecorder::new(Arc::new(FakeClock::new()));
        m.set_flight_recorder(recorder.clone());
        m.set_fault_injector(
            FaultInjector::new()
                .fail_volume_reads(1)
                .stall_dump_reads(Stall::after_polls(1))
                .corrupt_volume(FaultPlan::new(1).bit_flips(4)),
        );
        assert!(m.try_read_raw_volume_image().is_err()); // transient
        assert!(m.try_read_raw_volume_image().is_ok()); // corrupted
        assert!(m.try_crash_dump().is_err()); // stalled once
        let dump = recorder.snapshot();
        let details: Vec<&str> = dump.events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(
            details,
            vec![
                "transient DeviceNotReady",
                "corruption plan applied",
                "stalled (Pending)",
            ]
        );
        assert!(dump.events.iter().all(|e| e.kind == FlightEventKind::Fault));
        // Detached: reads stop logging.
        m.clear_flight_recorder();
        assert!(m.try_crash_dump().is_ok());
        assert_eq!(recorder.snapshot().len(), dump.len());
    }

    #[test]
    fn fault_injector_corruption_plans_rewrite_read_bytes() {
        let mut m = Machine::with_base_system("corrupt").unwrap();
        let software = p("HKLM\\SOFTWARE");
        let clean_vol = m.try_read_raw_volume_image().unwrap();
        let clean_hive = m.try_copy_hive_bytes(&software).unwrap();
        m.set_fault_injector(
            FaultInjector::new()
                .corrupt_volume(FaultPlan::new(1).bit_flips(8))
                .corrupt_hive(software.clone(), FaultPlan::new(2).torn_sectors(1))
                .corrupt_dump(FaultPlan::new(3).truncate_to(0.5)),
        );
        assert_ne!(m.try_read_raw_volume_image().unwrap(), clean_vol);
        assert_ne!(m.try_copy_hive_bytes(&software).unwrap(), clean_hive);
        // Only the targeted mount is corrupted.
        assert_eq!(
            m.try_copy_hive_bytes(&p("HKLM\\SYSTEM")).unwrap(),
            m.copy_hive_bytes(&p("HKLM\\SYSTEM")).unwrap()
        );
        let dump = m.try_crash_dump().unwrap();
        assert!(dump.len() < m.kernel().crash_dump().len());
    }

    fn name_filter(substr: &'static str) -> Arc<dyn QueryFilter> {
        Arc::new(move |_: &CallContext, _: &Query, rows: Vec<Row>| {
            rows.into_iter()
                .filter(|r| {
                    !r.name()
                        .to_win32_lossy()
                        .to_ascii_lowercase()
                        .contains(substr)
                })
                .collect()
        })
    }

    fn base() -> Machine {
        Machine::with_base_system("test").unwrap()
    }

    #[test]
    fn base_system_enumerates() {
        let m = base();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let rows = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: p("C:\\windows\\system32"),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert!(rows.len() > 10);
        let procs = m
            .query(&ctx, &Query::ProcessList, ChainEntry::Win32)
            .unwrap();
        assert_eq!(procs.len(), 9);
    }

    #[test]
    fn missing_directory_reports_status() {
        let m = base();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        assert_eq!(
            m.query(
                &ctx,
                &Query::DirectoryEnum {
                    path: p("C:\\nope")
                },
                ChainEntry::Win32
            ),
            Err(NtStatus::ObjectNameNotFound)
        );
    }

    #[test]
    fn ntdll_hook_hides_from_both_entries() {
        let mut m = base();
        m.volume_mut()
            .create_file(&p("C:\\windows\\hxdef100.exe"), b"MZ")
            .unwrap();
        m.install_ntdll_hook(
            "hxdef",
            vec![QueryKind::Files],
            HookScope::All,
            name_filter("hxdef"),
        );
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: p("C:\\windows"),
        };
        for entry in [ChainEntry::Win32, ChainEntry::Native] {
            let rows = m.query(&ctx, &q, entry).unwrap();
            assert!(
                !rows
                    .iter()
                    .any(|r| r.name().to_win32_lossy().contains("hxdef")),
                "{entry:?} must be filtered"
            );
        }
    }

    #[test]
    fn iat_hook_does_not_affect_native_entry() {
        let mut m = base();
        m.volume_mut()
            .create_file(&p("C:\\windows\\urbin.dll"), b"MZ")
            .unwrap();
        m.install_iat_hook(
            "urbin",
            vec![QueryKind::Files],
            HookScope::All,
            name_filter("urbin"),
        );
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: p("C:\\windows"),
        };
        let win32 = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
        assert!(!win32
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("urbin")));
        let native = m.query(&ctx, &q, ChainEntry::Native).unwrap();
        assert!(native
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("urbin")));
    }

    #[test]
    fn ssdt_hook_applies_and_restoration_disables_it() {
        let mut m = base();
        m.volume_mut()
            .create_file(&p("C:\\windows\\probot.sys"), b"MZ")
            .unwrap();
        m.install_ssdt_hook(
            "probot",
            SyscallId::NtQueryDirectoryFile,
            vec![QueryKind::Files],
            name_filter("probot"),
        );
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: p("C:\\windows"),
        };
        let rows = m.query(&ctx, &q, ChainEntry::Native).unwrap();
        assert!(!rows
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("probot")));
        // Direct Service Dispatch Table restoration defeats it.
        m.kernel_mut()
            .ssdt_mut()
            .restore(SyscallId::NtQueryDirectoryFile);
        let rows = m.query(&ctx, &q, ChainEntry::Native).unwrap();
        assert!(rows
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("probot")));
    }

    #[test]
    fn filter_driver_scoped_to_caller() {
        let mut m = base();
        m.volume_mut()
            .create_file(&p("C:\\temp\\secret.txt"), b"x")
            .unwrap();
        m.install_filter_driver(
            "hidefolders",
            HookScope::ExceptCallers(vec!["hidefolders.exe".into()]),
            name_filter("secret"),
        );
        m.spawn_process("hidefolders.exe", "C:\\Program Files\\hf.exe")
            .unwrap();
        let q = Query::DirectoryEnum {
            path: p("C:\\temp"),
        };
        let user = m.context_for_name("explorer.exe").unwrap();
        assert!(m.query(&user, &q, ChainEntry::Win32).unwrap().is_empty());
        let owner = m.context_for_name("hidefolders.exe").unwrap();
        assert_eq!(m.query(&owner, &q, ChainEntry::Win32).unwrap().len(), 1);
    }

    #[test]
    fn win32_marshal_hides_illegal_names_native_shows_them() {
        let mut m = base();
        m.native_create_file(&p("C:\\temp\\update."), b"x").unwrap();
        assert_eq!(
            m.win32_create_file(&p("C:\\temp\\bad."), b"x"),
            Err(NtStatus::ObjectNameInvalid)
        );
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: p("C:\\temp"),
        };
        assert!(m.query(&ctx, &q, ChainEntry::Win32).unwrap().is_empty());
        assert_eq!(m.query(&ctx, &q, ChainEntry::Native).unwrap().len(), 1);
    }

    #[test]
    fn registry_value_with_nul_truncates_through_win32() {
        let mut m = base();
        let run = p("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
        let sneaky = NtString::from_units(&[b'e' as u16, 0, b'x' as u16]);
        m.registry_mut()
            .set_value_raw(
                &run,
                strider_hive::Value::new(sneaky.clone(), ValueData::sz("evil.exe")),
            )
            .unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::RegEnumValues { key: run };
        let win32 = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
        let names: Vec<String> = win32.iter().map(|r| r.name().to_display_string()).collect();
        assert!(names.contains(&"e".to_string()));
        assert!(!names.contains(&"e\\0x".to_string()));
        let native = m.query(&ctx, &q, ChainEntry::Native).unwrap();
        let names: Vec<String> = native
            .iter()
            .map(|r| r.name().to_display_string())
            .collect();
        assert!(names.contains(&"e\\0x".to_string()));
    }

    #[test]
    fn module_rows_drop_blanked_entries_in_win32_view() {
        let mut m = base();
        let pid = m.kernel().find_by_name("explorer.exe")[0];
        m.kernel_mut()
            .load_module(pid, "vanquish.dll", "C:\\windows\\vanquish.dll")
            .unwrap();
        m.kernel_mut()
            .blank_peb_module_path(pid, "vanquish.dll")
            .unwrap();
        let ctx = m.context_for(pid).unwrap();
        let q = Query::ModuleList { pid };
        let win32 = m.query(&ctx, &q, ChainEntry::Win32).unwrap();
        assert!(!win32
            .iter()
            .any(|r| r.name().to_win32_lossy().contains("vanquish")));
        // The kernel truth still has it.
        assert!(m
            .kernel()
            .process(pid)
            .unwrap()
            .kernel_module(&NtString::from("vanquish.dll"))
            .is_some());
    }

    #[test]
    fn stack_trace_shows_wrappers_but_not_detours() {
        let mut m = base();
        m.install_win32_code_hook(
            "wrapper-kit",
            vec![QueryKind::Files],
            HookScope::All,
            HookStyle::Wrapper,
            name_filter("zzz"),
        );
        m.install_ntdll_hook(
            "detour-kit",
            vec![QueryKind::Files],
            HookScope::All,
            name_filter("zzz"),
        );
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let trace = m.stack_trace(&ctx, QueryKind::Files);
        assert!(trace.iter().any(|f| f.contains("wrapper-kit")), "{trace:?}");
        assert!(!trace.iter().any(|f| f.contains("detour-kit")), "{trace:?}");
        assert!(trace.iter().any(|f| f == "ntdll.dll"));
        assert_eq!(trace[0], "explorer.exe");
    }

    #[test]
    fn plain_dir_drops_attribute_hidden_files_but_scans_do_not() {
        let mut m = base();
        m.volume_mut()
            .create_file_with(
                &p("C:\\temp\\dotfile.ini"),
                b"x",
                strider_ntfs::FileAttributes::HIDDEN,
            )
            .unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let plain = m.plain_dir(&ctx, &p("C:\\temp")).unwrap();
        assert!(plain.is_empty(), "plain dir honours the attribute");
        let full = m
            .query(
                &ctx,
                &Query::DirectoryEnum {
                    path: p("C:\\temp"),
                },
                ChainEntry::Win32,
            )
            .unwrap();
        assert_eq!(full.len(), 1, "dir /a-style enumeration shows it");
    }

    #[test]
    fn remove_software_undoes_everything() {
        let mut m = base();
        m.install_ssdt_hook(
            "evil",
            SyscallId::NtQueryDirectoryFile,
            vec![QueryKind::Files],
            name_filter("x"),
        );
        m.install_filter_driver("evil", HookScope::All, name_filter("x"));
        m.install_registry_callback("evil", HookScope::All, name_filter("x"));
        m.remove_software("evil");
        assert!(m.hooks().hooks().is_empty());
        assert!(m.kernel().filter_stack().is_empty());
        assert!(m.kernel().registry_callbacks().is_empty());
        assert!(m.kernel().ssdt().hooked_services().is_empty());
    }

    #[test]
    fn query_traced_attributes_divergence_to_the_hook_level() {
        let mut m = base();
        m.volume_mut()
            .create_file(&p("C:\\windows\\hxdef100.exe"), b"MZ")
            .unwrap();
        m.install_ntdll_hook(
            "hxdef",
            vec![QueryKind::Files],
            HookScope::All,
            name_filter("hxdef"),
        );
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: p("C:\\windows"),
        };
        let (rows, trace) = m.query_traced(&ctx, &q, ChainEntry::Win32).unwrap();
        assert_eq!(rows, m.query(&ctx, &q, ChainEntry::Win32).unwrap());
        assert!(trace.diverted());
        assert_eq!(trace.first_diverted_level(), Some(Level::NtdllCode));
        assert_eq!(trace.truth_rows, trace.final_rows + 1);
        assert_eq!(trace.hops.len(), 6, "Win32 entry traverses every level");
        assert!(!trace.marshal_mutated);

        // Native entry skips the caller-side levels.
        let (_, native) = m.query_traced(&ctx, &q, ChainEntry::Native).unwrap();
        assert_eq!(native.hops.len(), 4);

        // A clean machine's trace shows no divergence.
        m.remove_software("hxdef");
        let (_, clean) = m.query_traced(&ctx, &q, ChainEntry::Win32).unwrap();
        assert!(!clean.diverted());
    }

    #[test]
    fn query_traced_flags_win32_marshalling() {
        let mut m = base();
        m.native_create_file(&p("C:\\temp\\update."), b"x").unwrap();
        let ctx = m.context_for_name("explorer.exe").unwrap();
        let q = Query::DirectoryEnum {
            path: p("C:\\temp"),
        };
        let (rows, trace) = m.query_traced(&ctx, &q, ChainEntry::Win32).unwrap();
        assert!(rows.is_empty());
        assert!(trace.marshal_mutated, "naming-rule hiding is marshalling");
        assert!(trace.diverted());
        assert_eq!(trace.first_diverted_level(), None, "no hook level lied");
    }

    #[test]
    fn snapshot_disk_persists_hives_to_backing_files() {
        let mut m = base();
        let img = m.snapshot_disk().unwrap();
        assert_eq!(img.hives.len(), 3);
        assert!(m
            .volume()
            .exists(&p("C:\\windows\\system32\\config\\system")));
        let raw = strider_ntfs::VolumeImage::parse(&img.volume_image).unwrap();
        assert!(raw
            .file_paths()
            .iter()
            .any(|(path, _)| path.to_string() == "C:\\windows\\system32\\config\\software"));
    }

    #[test]
    fn hive_tamper_applies_to_inside_copy_but_not_snapshot() {
        struct Zero;
        impl HiveCopyTamper for Zero {
            fn tamper(&self, _m: &NtPath, mut bytes: Vec<u8>) -> Vec<u8> {
                bytes.truncate(4);
                bytes
            }
        }
        let mut m = base();
        m.add_hive_tamper("evil", Arc::new(Zero));
        let mount = p("HKLM\\SOFTWARE");
        assert_eq!(m.copy_hive_bytes(&mount).unwrap().len(), 4);
        let img = m.snapshot_disk().unwrap();
        let (_, bytes) = img
            .hives
            .iter()
            .find(|(mnt, _)| mnt.eq_ignore_case(&mount))
            .unwrap();
        assert!(bytes.len() > 4, "outside snapshot is untampered");
    }

    #[test]
    fn tick_runs_tasks_and_advances_clock() {
        struct Logger;
        impl TickTask for Logger {
            fn name(&self) -> &str {
                "logger"
            }
            fn on_tick(&mut self, m: &mut Machine) {
                let path: NtPath = "C:\\windows\\temp\\svc.log".parse().unwrap();
                m.volume_mut().append_file(&path, b"line\n").unwrap();
            }
        }
        let mut m = base();
        m.add_tick_task(Box::new(Logger));
        m.tick(5);
        assert_eq!(m.now(), Tick(5));
        assert_eq!(
            m.volume()
                .read_file(&p("C:\\windows\\temp\\svc.log"))
                .unwrap()
                .len(),
            5 * 5
        );
    }
}
