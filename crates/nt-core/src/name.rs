//! Counted UTF-16 names and the Win32 legality rules.

use std::fmt;

/// Reserved DOS device names that the Win32 layer refuses to address as
/// ordinary files, regardless of extension (`CON.txt` is still `CON`).
pub(crate) const RESERVED_DEVICE_NAMES: &[&str] = &[
    "CON", "PRN", "AUX", "NUL", "COM1", "COM2", "COM3", "COM4", "COM5", "COM6", "COM7", "COM8",
    "COM9", "LPT1", "LPT2", "LPT3", "LPT4", "LPT5", "LPT6", "LPT7", "LPT8", "LPT9",
];

/// Characters the Win32 layer rejects in file names (the native layer does not).
pub(crate) const WIN32_ILLEGAL_CHARS: &[char] = &['<', '>', ':', '"', '/', '|', '?', '*'];

/// A counted UTF-16 string — the native NT name representation.
///
/// NT stores names as `UNICODE_STRING`s: a length plus a buffer, with no
/// terminator. Consequently an `NtString` may contain embedded `NUL` code
/// units. The Win32 API layer, which marshals names through NUL-terminated
/// C strings, silently truncates at the first `NUL` — the discrepancy that
/// ghostware exploits to create Registry entries invisible to RegEdit
/// (paper, Section 3).
///
/// Comparison of two `NtString`s via [`NtString::eq_ignore_case`] follows the
/// NT object-namespace convention of case-insensitivity; `PartialEq`/`Hash`
/// remain case-*sensitive* and exact so that the type behaves like a plain
/// value in collections. Use [`NtString::fold_key`] as a case-insensitive map
/// key.
///
/// # Examples
///
/// ```
/// use strider_nt_core::NtString;
///
/// let visible = NtString::from("Run");
/// let sneaky = NtString::from_units(&[b'R' as u16, 0, b'x' as u16]);
/// assert!(sneaky.contains_nul());
/// // The Win32 view truncates at the NUL:
/// assert_eq!(sneaky.to_win32_lossy(), "R");
/// assert_eq!(visible.to_win32_lossy(), "Run");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NtString {
    units: Vec<u16>,
}

impl NtString {
    /// Creates an empty name.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a name from raw UTF-16 code units, which may include `NUL`s.
    pub fn from_units(units: &[u16]) -> Self {
        Self {
            units: units.to_vec(),
        }
    }

    /// The raw UTF-16 code units.
    pub fn units(&self) -> &[u16] {
        &self.units
    }

    /// Number of UTF-16 code units (the `Length/2` of a `UNICODE_STRING`).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the name is empty.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Whether the counted string contains an embedded `NUL` code unit.
    pub fn contains_nul(&self) -> bool {
        self.units.contains(&0)
    }

    /// The name as the Win32 layer sees it: truncated at the first `NUL`,
    /// lossily decoded.
    pub fn to_win32_lossy(&self) -> String {
        let end = self
            .units
            .iter()
            .position(|&u| u == 0)
            .unwrap_or(self.units.len());
        String::from_utf16_lossy(&self.units[..end])
    }

    /// The full counted name, lossily decoded, with embedded `NUL`s rendered
    /// as `\0` escapes so the representation is never misleadingly truncated.
    pub fn to_display_string(&self) -> String {
        let mut out = String::with_capacity(self.units.len());
        for (i, chunk) in self.units.split(|&u| u == 0).enumerate() {
            if i > 0 {
                out.push_str("\\0");
            }
            out.push_str(&String::from_utf16_lossy(chunk));
        }
        out
    }

    /// A case-folded exact key for case-insensitive maps, preserving embedded
    /// `NUL`s (NT name comparison is case-insensitive but NUL-significant).
    pub fn fold_key(&self) -> Vec<u16> {
        self.units
            .iter()
            .map(|&u| {
                // Simple-case folding is what the NT upcase table does for
                // the BMP; ASCII folding covers the simulation's namespace.
                match char::from_u32(u as u32) {
                    Some(c) => c.to_ascii_lowercase() as u16,
                    None => u,
                }
            })
            .collect()
    }

    /// Case-insensitive equality per NT name-comparison rules.
    pub fn eq_ignore_case(&self, other: &NtString) -> bool {
        self.fold_key() == other.fold_key()
    }

    /// Validates the name against the Win32 layer's file-naming rules.
    ///
    /// NTFS itself (through the native API) accepts all of these names; only
    /// the Win32 API refuses to create or address them, which is why files
    /// with such names are invisible to `dir`-style high-level scans
    /// (paper, Section 2).
    ///
    /// # Errors
    ///
    /// Returns the first rule the name violates.
    pub fn validate_win32(&self) -> Result<(), Win32NameError> {
        if self.is_empty() {
            return Err(Win32NameError::Empty);
        }
        if self.contains_nul() {
            return Err(Win32NameError::EmbeddedNul);
        }
        let s = self.to_win32_lossy();
        if let Some(c) = s.chars().find(|c| WIN32_ILLEGAL_CHARS.contains(c)) {
            return Err(Win32NameError::IllegalCharacter(c));
        }
        if let Some(c) = s.chars().find(|&c| (c as u32) < 0x20) {
            return Err(Win32NameError::ControlCharacter(c as u32));
        }
        if s.ends_with('.') || s.ends_with(' ') {
            return Err(Win32NameError::TrailingDotOrSpace);
        }
        let stem = s.split('.').next().unwrap_or("").to_ascii_uppercase();
        if RESERVED_DEVICE_NAMES.contains(&stem.as_str()) {
            return Err(Win32NameError::ReservedDeviceName(stem));
        }
        Ok(())
    }

    /// Whether the name passes every Win32 file-naming rule.
    pub fn is_win32_legal(&self) -> bool {
        self.validate_win32().is_ok()
    }
}

impl From<&str> for NtString {
    fn from(s: &str) -> Self {
        Self {
            units: s.encode_utf16().collect(),
        }
    }
}

impl From<String> for NtString {
    fn from(s: String) -> Self {
        NtString::from(s.as_str())
    }
}

impl fmt::Display for NtString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

/// A violation of the Win32 file-naming rules.
///
/// Names that violate these rules are fully addressable through the native
/// API and NTFS, producing the "hidden by naming" class of ghostware files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Win32NameError {
    /// The name is empty.
    Empty,
    /// The counted string embeds a `NUL` code unit.
    EmbeddedNul,
    /// The name contains a character Win32 forbids (`<>:"/|?*`).
    IllegalCharacter(char),
    /// The name contains a control character below `0x20`.
    ControlCharacter(u32),
    /// The name ends with a dot or a space.
    TrailingDotOrSpace,
    /// The stem is a reserved DOS device name such as `CON` or `LPT1`.
    ReservedDeviceName(String),
}

impl fmt::Display for Win32NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Win32NameError::Empty => write!(f, "name is empty"),
            Win32NameError::EmbeddedNul => write!(f, "name contains an embedded NUL"),
            Win32NameError::IllegalCharacter(c) => {
                write!(f, "name contains illegal character {c:?}")
            }
            Win32NameError::ControlCharacter(c) => {
                write!(f, "name contains control character U+{c:04X}")
            }
            Win32NameError::TrailingDotOrSpace => write!(f, "name ends with a dot or space"),
            Win32NameError::ReservedDeviceName(n) => {
                write!(f, "name stem is reserved device name {n}")
            }
        }
    }
}

impl std::error::Error for Win32NameError {}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(struct NtString { units });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let n = NtString::from("Notepad.exe");
        assert_eq!(n.to_win32_lossy(), "Notepad.exe");
        assert_eq!(n.len(), 11);
        assert!(n.is_win32_legal());
    }

    #[test]
    fn embedded_nul_truncates_win32_view_but_not_display() {
        let n = NtString::from_units(&[104, 0, 105]); // "h\0i"
        assert!(n.contains_nul());
        assert_eq!(n.to_win32_lossy(), "h");
        assert_eq!(n.to_display_string(), "h\\0i");
        assert_eq!(n.validate_win32(), Err(Win32NameError::EmbeddedNul));
    }

    #[test]
    fn trailing_nul_is_escaped_in_display() {
        let n = NtString::from_units(&[104, 0]);
        assert_eq!(n.to_display_string(), "h\\0");
    }

    #[test]
    fn case_insensitive_comparison() {
        let a = NtString::from("HxDef100.EXE");
        let b = NtString::from("hxdef100.exe");
        assert!(a.eq_ignore_case(&b));
        assert_ne!(a, b); // exact equality stays case-sensitive
        assert_eq!(a.fold_key(), b.fold_key());
    }

    #[test]
    fn trailing_dot_and_space_are_win32_illegal() {
        assert_eq!(
            NtString::from("update.").validate_win32(),
            Err(Win32NameError::TrailingDotOrSpace)
        );
        assert_eq!(
            NtString::from("driver ").validate_win32(),
            Err(Win32NameError::TrailingDotOrSpace)
        );
    }

    #[test]
    fn reserved_device_names_with_and_without_extension() {
        assert!(matches!(
            NtString::from("CON").validate_win32(),
            Err(Win32NameError::ReservedDeviceName(_))
        ));
        assert!(matches!(
            NtString::from("nul.txt").validate_win32(),
            Err(Win32NameError::ReservedDeviceName(_))
        ));
        assert!(matches!(
            NtString::from("lpt1.log").validate_win32(),
            Err(Win32NameError::ReservedDeviceName(_))
        ));
        // CONSOLE is not reserved, only the exact stem.
        assert!(NtString::from("console.txt").is_win32_legal());
    }

    #[test]
    fn illegal_and_control_characters() {
        assert!(matches!(
            NtString::from("a<b").validate_win32(),
            Err(Win32NameError::IllegalCharacter('<'))
        ));
        assert!(matches!(
            NtString::from("a\u{1}b").validate_win32(),
            Err(Win32NameError::ControlCharacter(1))
        ));
    }

    #[test]
    fn empty_name_is_illegal() {
        assert_eq!(NtString::new().validate_win32(), Err(Win32NameError::Empty));
    }

    #[test]
    fn error_display_is_nonempty_lowercase() {
        for e in [
            Win32NameError::Empty,
            Win32NameError::EmbeddedNul,
            Win32NameError::IllegalCharacter('?'),
            Win32NameError::ControlCharacter(2),
            Win32NameError::TrailingDotOrSpace,
            Win32NameError::ReservedDeviceName("CON".into()),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
