//! Backslash-separated NT paths.

use crate::name::NtString;
use std::fmt;
use std::str::FromStr;

/// The Win32 `MAX_PATH` limit in characters; full paths longer than this are
/// invisible to Win32-level enumeration even though NTFS stores them happily.
pub const MAX_PATH: usize = 260;

/// A path in the NT namespace: an optional drive/hive root plus a sequence of
/// [`NtString`] components.
///
/// Used for both filesystem paths (`C:\windows\system32`) and Registry paths
/// (`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`). Comparison helpers
/// are case-insensitive, matching NTFS and the configuration manager.
///
/// # Examples
///
/// ```
/// use strider_nt_core::NtPath;
///
/// let p: NtPath = "C:\\windows\\system32\\drivers".parse().unwrap();
/// assert_eq!(p.root(), "C:");
/// assert_eq!(p.components().len(), 3);
/// assert_eq!(p.file_name().unwrap().to_win32_lossy(), "drivers");
/// let parent = p.parent().unwrap();
/// assert_eq!(parent.to_string(), "C:\\windows\\system32");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NtPath {
    root: String,
    components: Vec<NtString>,
}

impl NtPath {
    /// Creates a path holding only a root (drive letter like `C:` or a hive
    /// name like `HKLM`).
    pub fn root_of(root: &str) -> Self {
        Self {
            root: root.to_string(),
            components: Vec::new(),
        }
    }

    /// Creates a path from a root and pre-split components.
    pub fn from_components<I>(root: &str, components: I) -> Self
    where
        I: IntoIterator<Item = NtString>,
    {
        Self {
            root: root.to_string(),
            components: components.into_iter().collect(),
        }
    }

    /// The root element (`C:`, `HKLM`, …).
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The path components below the root.
    pub fn components(&self) -> &[NtString] {
        &self.components
    }

    /// The final component, if any.
    pub fn file_name(&self) -> Option<&NtString> {
        self.components.last()
    }

    /// The path with the final component removed; `None` when at the root.
    pub fn parent(&self) -> Option<NtPath> {
        if self.components.is_empty() {
            return None;
        }
        Some(NtPath {
            root: self.root.clone(),
            components: self.components[..self.components.len() - 1].to_vec(),
        })
    }

    /// Returns a new path with `name` appended.
    pub fn join(&self, name: impl Into<NtString>) -> NtPath {
        let mut p = self.clone();
        p.components.push(name.into());
        p
    }

    /// Returns a new path with all of `other`'s components appended.
    pub fn join_path(&self, other: &NtPath) -> NtPath {
        let mut p = self.clone();
        p.components.extend(other.components.iter().cloned());
        p
    }

    /// Number of components below the root.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Whether this is just a root with no components.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Case-insensitive prefix test (root must match case-insensitively too).
    pub fn starts_with(&self, prefix: &NtPath) -> bool {
        if !self.root.eq_ignore_ascii_case(&prefix.root) {
            return false;
        }
        if prefix.components.len() > self.components.len() {
            return false;
        }
        prefix
            .components
            .iter()
            .zip(&self.components)
            .all(|(a, b)| a.eq_ignore_case(b))
    }

    /// Case-insensitive whole-path equality.
    pub fn eq_ignore_case(&self, other: &NtPath) -> bool {
        self.root.eq_ignore_ascii_case(&other.root)
            && self.components.len() == other.components.len()
            && self.starts_with(other)
    }

    /// A case-folded key suitable for hash maps keyed case-insensitively.
    pub fn fold_key(&self) -> String {
        let mut key = self.root.to_ascii_lowercase();
        for c in &self.components {
            key.push('\\');
            let folded = c.fold_key();
            for u in folded {
                key.push(char::from_u32(u as u32).unwrap_or('\u{FFFD}'));
            }
        }
        key
    }

    /// Total length in characters of the rendered path, used for the Win32
    /// [`MAX_PATH`] check.
    pub fn char_len(&self) -> usize {
        self.root.len() + self.components.iter().map(|c| 1 + c.len()).sum::<usize>()
    }

    /// Whether the full path fits within the Win32 [`MAX_PATH`] limit *and*
    /// every component is Win32-legal. Paths failing this are reachable only
    /// through the native API.
    pub fn is_win32_visible(&self) -> bool {
        self.char_len() <= MAX_PATH && self.components.iter().all(NtString::is_win32_legal)
    }
}

impl fmt::Display for NtPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.root)?;
        for c in &self.components {
            write!(f, "\\{}", c.to_display_string())?;
        }
        Ok(())
    }
}

/// Error returned when parsing a textual path fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNtPathError {
    /// The input was empty.
    Empty,
    /// A component between separators was empty (`C:\\a\\\\b`).
    EmptyComponent,
}

impl fmt::Display for ParseNtPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNtPathError::Empty => write!(f, "path is empty"),
            ParseNtPathError::EmptyComponent => write!(f, "path contains an empty component"),
        }
    }
}

impl std::error::Error for ParseNtPathError {}

impl FromStr for NtPath {
    type Err = ParseNtPathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNtPathError::Empty);
        }
        let mut parts = s.split('\\');
        let root = parts.next().unwrap_or("").to_string();
        if root.is_empty() {
            return Err(ParseNtPathError::Empty);
        }
        let mut components = Vec::new();
        for p in parts {
            if p.is_empty() {
                return Err(ParseNtPathError::EmptyComponent);
            }
            components.push(NtString::from(p));
        }
        Ok(NtPath { root, components })
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(struct NtPath { root, components });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p: NtPath = "C:\\windows\\system32".parse().unwrap();
        assert_eq!(p.to_string(), "C:\\windows\\system32");
        assert_eq!(p.root(), "C:");
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn parse_rejects_empty_and_empty_components() {
        assert_eq!("".parse::<NtPath>(), Err(ParseNtPathError::Empty));
        assert_eq!(
            "C:\\a\\\\b".parse::<NtPath>(),
            Err(ParseNtPathError::EmptyComponent)
        );
    }

    #[test]
    fn registry_roots_parse() {
        let p: NtPath = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
            .parse()
            .unwrap();
        assert_eq!(p.root(), "HKLM");
        assert_eq!(p.depth(), 5);
    }

    #[test]
    fn join_parent_file_name() {
        let p = NtPath::root_of("C:").join("windows").join("notepad.exe");
        assert_eq!(p.file_name().unwrap().to_win32_lossy(), "notepad.exe");
        assert_eq!(p.parent().unwrap().to_string(), "C:\\windows");
        assert!(NtPath::root_of("C:").parent().is_none());
    }

    #[test]
    fn case_insensitive_prefix_and_equality() {
        let a: NtPath = "C:\\Windows\\System32".parse().unwrap();
        let b: NtPath = "c:\\WINDOWS".parse().unwrap();
        assert!(a.starts_with(&b));
        assert!(!b.starts_with(&a));
        let c: NtPath = "c:\\windows\\system32".parse().unwrap();
        assert!(a.eq_ignore_case(&c));
        assert_eq!(a.fold_key(), c.fold_key());
    }

    #[test]
    fn max_path_visibility() {
        let mut p = NtPath::root_of("C:");
        for _ in 0..30 {
            p = p.join("aaaaaaaaaaaaaaaaaaaa"); // 21 chars per component
        }
        assert!(p.char_len() > MAX_PATH);
        assert!(!p.is_win32_visible());
        let q: NtPath = "C:\\windows".parse().unwrap();
        assert!(q.is_win32_visible());
    }

    #[test]
    fn win32_visibility_considers_component_legality() {
        let p = NtPath::root_of("C:").join("temp.");
        assert!(!p.is_win32_visible());
    }

    #[test]
    fn char_len_counts_separators() {
        let p: NtPath = "C:\\ab\\c".parse().unwrap();
        // "C:" (2) + "\ab" (3) + "\c" (2)
        assert_eq!(p.char_len(), 7);
    }
}
