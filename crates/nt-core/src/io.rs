//! I/O accounting for the scan-time cost model.

use std::fmt;

/// Accumulated I/O work performed by a scan.
///
/// The substrates increment these counters on every simulated operation; the
/// workload crate's cost model converts them into seconds for a given machine
/// hardware profile, reproducing the shape of the paper's timing results
/// (file scans in minutes, Registry scans in tens of seconds, process scans in
/// seconds).
///
/// # Examples
///
/// ```
/// use strider_nt_core::IoStats;
///
/// let mut io = IoStats::default();
/// io.record_sequential(4096);
/// io.record_seek();
/// io.record_api_call();
/// assert_eq!(io.bytes_read, 4096);
/// assert_eq!(io.seeks, 1);
/// assert_eq!(io.api_calls, 1);
///
/// let mut total = IoStats::default();
/// total.merge(&io);
/// assert_eq!(total.bytes_read, 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Bytes read sequentially (MFT sweeps, hive file reads, dump reads).
    pub bytes_read: u64,
    /// Random-access repositioning operations (per-directory descents).
    pub seeks: u64,
    /// User-mode API round trips (one per enumeration call).
    pub api_calls: u64,
    /// Records or entries materialized for the caller.
    pub entries: u64,
    /// Parse defects stepped over by a salvage-mode truth scan (zero for
    /// strict parses and for the high-level API views).
    pub defects: u64,
}

impl IoStats {
    /// Creates a zeroed accumulator; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sequential read of `bytes`.
    pub fn record_sequential(&mut self, bytes: u64) {
        self.bytes_read += bytes;
    }

    /// Records one random-access seek.
    pub fn record_seek(&mut self) {
        self.seeks += 1;
    }

    /// Records one API round trip.
    pub fn record_api_call(&mut self) {
        self.api_calls += 1;
    }

    /// Records `n` entries materialized.
    pub fn record_entries(&mut self, n: u64) {
        self.entries += n;
    }

    /// Records `n` salvage-parse defects survived.
    pub fn record_defects(&mut self, n: u64) {
        self.defects += n;
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &IoStats) {
        self.bytes_read += other.bytes_read;
        self.seeks += other.seeks;
        self.api_calls += other.api_calls;
        self.entries += other.entries;
        self.defects += other.defects;
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bytes, {} seeks, {} api calls, {} entries",
            self.bytes_read, self.seeks, self.api_calls, self.entries
        )
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(struct IoStats { bytes_read, seeks, api_calls, entries, defects });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = IoStats::default();
        a.record_sequential(10);
        a.record_seek();
        let mut b = IoStats::default();
        b.record_api_call();
        b.record_entries(7);
        b.record_sequential(5);
        a.merge(&b);
        assert_eq!(
            a,
            IoStats {
                bytes_read: 15,
                seeks: 1,
                api_calls: 1,
                entries: 7,
                defects: 0
            }
        );
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = IoStats {
            bytes_read: 1,
            seeks: 2,
            api_calls: 3,
            entries: 4,
            defects: 0,
        }
        .to_string();
        for needle in ["1 bytes", "2 seeks", "3 api calls", "4 entries"] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }
}
