//! The simulation's logical clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation's logical clock.
///
/// One tick is nominally one second of simulated wall time. The false-positive
/// model of the paper's evaluation is driven entirely by tick gaps: files
/// created by always-running services between two scans show up in the diff as
/// noise. Inside-the-box scans have a gap of a few ticks, the WinPE reboot
/// adds 90–180 ticks, and the VM snapshot flow has a gap of zero.
///
/// # Examples
///
/// ```
/// use strider_nt_core::Tick;
///
/// let boot = Tick::ZERO;
/// let later = boot + 90;
/// assert_eq!(later.gap_since(boot), 90);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

impl Tick {
    /// The clock value at machine boot.
    pub const ZERO: Tick = Tick(0);

    /// Ticks elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn gap_since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;

    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tick {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Tick {
    type Output = u64;

    fn sub(self, rhs: Tick) -> u64 {
        self.gap_since(rhs)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(newtype Tick);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut t = Tick::ZERO;
        t += 5;
        assert_eq!(t, Tick(5));
        assert_eq!(t + 3, Tick(8));
        assert_eq!(Tick(8) - Tick(5), 3);
        assert_eq!(Tick(5) - Tick(8), 0, "gap saturates");
        assert_eq!(t.to_string(), "t5");
    }
}
