//! Shared vocabulary types for the Strider GhostBuster reproduction.
//!
//! Every substrate crate in the workspace (the NTFS volume, the Registry
//! hives, the simulated kernel, the layered API chain) speaks in terms of the
//! types defined here:
//!
//! * [`NtString`] — a *counted* UTF-16 string, the native NT name
//!   representation. Unlike C strings it may legally contain embedded `NUL`
//!   characters, which is the root of one of the Registry-hiding tricks the
//!   paper describes (Section 3).
//! * [`NtPath`] — a backslash-separated path of [`NtString`] components with
//!   case-insensitive comparison, as NTFS and the Registry use.
//! * [`Tick`] — the simulation's logical clock. Scan gaps measured in ticks
//!   drive the paper's false-positive model.
//! * [`NtStatus`] — the status-code vocabulary returned by simulated APIs.
//! * [`IoStats`] — byte/seek accounting used by the scan-time cost model.
//!
//! # Examples
//!
//! ```
//! use strider_nt_core::{NtString, NtPath};
//!
//! let name = NtString::from("hxdef100.exe");
//! assert!(!name.contains_nul());
//!
//! let path: NtPath = "C:\\windows\\system32".parse().unwrap();
//! assert_eq!(path.components().len(), 2);
//! assert!(path.starts_with(&"c:\\WINDOWS".parse().unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod io;
mod name;
mod path;
mod status;
mod time;

pub use io::IoStats;
pub use name::{NtString, Win32NameError};
pub use path::{NtPath, ParseNtPathError, MAX_PATH};
pub use status::NtStatus;
pub use time::Tick;

/// A process identifier in the simulated kernel.
///
/// Newtype per C-NEWTYPE so that pids, tids and MFT record numbers cannot be
/// confused with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// A thread identifier in the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid {}", self.0)
    }
}

/// An MFT file-record number on a simulated NTFS volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileRecordNumber(pub u64);

impl std::fmt::Display for FileRecordNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mft #{}", self.0)
    }
}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(newtype Pid);
strider_support::impl_json!(newtype Tid);
strider_support::impl_json!(newtype FileRecordNumber);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_and_display() {
        assert_eq!(Pid(4).to_string(), "pid 4");
        assert_eq!(Tid(8).to_string(), "tid 8");
        assert_eq!(FileRecordNumber(5).to_string(), "mft #5");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Pid(1));
        s.insert(Pid(1));
        assert_eq!(s.len(), 1);
        assert!(Pid(1) < Pid(2));
    }
}
