//! Simulated NTSTATUS codes.

use std::fmt;

/// The status vocabulary returned by simulated NT and Win32 APIs.
///
/// A small, meaningful subset of the real NTSTATUS space — each variant is
/// one the GhostBuster scanners or the ghostware corpus actually exercises.
///
/// # Examples
///
/// ```
/// use strider_nt_core::NtStatus;
///
/// fn open() -> Result<(), NtStatus> {
///     Err(NtStatus::ObjectNameNotFound)
/// }
/// assert_eq!(open().unwrap_err().to_string(), "object name not found");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NtStatus {
    /// The requested object (file, key, process) does not exist.
    ObjectNameNotFound,
    /// An object with this name already exists.
    ObjectNameCollision,
    /// The name is invalid at the layer that rejected it (e.g. Win32 naming
    /// rules, `MAX_PATH`).
    ObjectNameInvalid,
    /// The path's parent chain does not exist.
    ObjectPathNotFound,
    /// The object is not a directory/key but was addressed as one.
    NotADirectory,
    /// The object is a directory/key but a leaf operation was requested.
    IsADirectory,
    /// A directory or key that must be empty for the operation is not.
    DirectoryNotEmpty,
    /// The caller lacks the required access.
    AccessDenied,
    /// A parameter was malformed.
    InvalidParameter,
    /// The on-disk or in-dump structure failed to parse.
    CorruptStructure(String),
    /// A transient device failure: the read may succeed if retried. The
    /// only status the `ScanPolicy` retry loop (in `strider-ghostbuster`)
    /// treats as recoverable.
    DeviceNotReady,
    /// The referenced process does not exist.
    NoSuchProcess,
    /// The referenced device/driver does not exist.
    NoSuchDevice,
    /// The operation is not supported by this layer.
    NotSupported,
    /// The read has not completed yet; poll again later. Emitted by stalled
    /// devices (see `strider_support::fault::Stall`) — a caller without a
    /// deadline can poll a pending read indefinitely.
    Pending,
    /// A supervised operation ran past its deadline and was abandoned.
    TimedOut,
    /// A supervised operation observed its cancellation token and stopped.
    Cancelled,
}

impl fmt::Display for NtStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtStatus::ObjectNameNotFound => write!(f, "object name not found"),
            NtStatus::ObjectNameCollision => write!(f, "object name collision"),
            NtStatus::ObjectNameInvalid => write!(f, "object name invalid"),
            NtStatus::ObjectPathNotFound => write!(f, "object path not found"),
            NtStatus::NotADirectory => write!(f, "not a directory"),
            NtStatus::IsADirectory => write!(f, "is a directory"),
            NtStatus::DirectoryNotEmpty => write!(f, "directory not empty"),
            NtStatus::AccessDenied => write!(f, "access denied"),
            NtStatus::InvalidParameter => write!(f, "invalid parameter"),
            NtStatus::CorruptStructure(what) => write!(f, "corrupt structure: {what}"),
            NtStatus::DeviceNotReady => write!(f, "device not ready"),
            NtStatus::NoSuchProcess => write!(f, "no such process"),
            NtStatus::NoSuchDevice => write!(f, "no such device"),
            NtStatus::NotSupported => write!(f, "not supported"),
            NtStatus::Pending => write!(f, "operation pending"),
            NtStatus::TimedOut => write!(f, "operation timed out"),
            NtStatus::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl std::error::Error for NtStatus {}

// ---------------------------------------------------------------------
// JSON serialization (see `strider_support::json`, replacing the former
// serde derives)
// ---------------------------------------------------------------------

strider_support::impl_json!(
    enum NtStatus {
        ObjectNameNotFound,
        ObjectNameCollision,
        ObjectNameInvalid,
        ObjectPathNotFound,
        NotADirectory,
        IsADirectory,
        DirectoryNotEmpty,
        AccessDenied,
        InvalidParameter,
        CorruptStructure(String),
        DeviceNotReady,
        NoSuchProcess,
        NoSuchDevice,
        NotSupported,
        Pending,
        TimedOut,
        Cancelled,
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_punctuation() {
        let all = [
            NtStatus::ObjectNameNotFound,
            NtStatus::ObjectNameCollision,
            NtStatus::ObjectNameInvalid,
            NtStatus::ObjectPathNotFound,
            NtStatus::NotADirectory,
            NtStatus::IsADirectory,
            NtStatus::DirectoryNotEmpty,
            NtStatus::AccessDenied,
            NtStatus::InvalidParameter,
            NtStatus::CorruptStructure("mft".into()),
            NtStatus::DeviceNotReady,
            NtStatus::NoSuchProcess,
            NtStatus::NoSuchDevice,
            NtStatus::NotSupported,
            NtStatus::Pending,
            NtStatus::TimedOut,
            NtStatus::Cancelled,
        ];
        for s in all {
            let msg = s.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NtStatus>();
    }
}
