//! Evasion-hardening cost: what the randomized, decoyed, quorum-diffed
//! sweep pays over the naive postures on the same machine.
//!
//! Three knobs drive the overhead, and the scenarios isolate them:
//! quorum passes multiply every pipeline diff (5× by default), decoys add
//! one discarded query per `decoy_every` real queries (+25% query volume
//! at the default 4), and the per-pass enumeration shuffles are
//! O(n log n)-free pointer swaps that should cost nothing measurable.
//! `hardened-no-decoys` versus `hardened-default` separates the decoy tax
//! from the quorum tax; `resilient-stabilized` is the pre-arms-race
//! production posture the overhead is measured against. The DESIGN §5.10
//! cost model quotes this bench's output (`BENCH_evasion.json`).

use std::time::Duration;
use strider_bench::victim_machine_sized;
use strider_ghostbuster::{EvasionHardening, GhostBuster, ScanPolicy};
use strider_support::bench::Criterion;
use strider_support::{criterion_group, criterion_main};
use strider_workload::WorkloadSpec;

fn bench_evasion_hardening(c: &mut Criterion) {
    let mut group = c.benchmark_group("evasion");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    let scenarios: [(&str, ScanPolicy); 4] = [
        ("strict-single-pass", ScanPolicy::strict()),
        ("resilient-stabilized", ScanPolicy::resilient()),
        (
            "hardened-no-decoys",
            ScanPolicy::supervised().with_hardening(Some(EvasionHardening {
                decoy_every: 0,
                ..EvasionHardening::default()
            })),
        ),
        ("hardened-default", ScanPolicy::hardened()),
    ];

    for (label, policy) in scenarios {
        let mut machine = victim_machine_sized(&WorkloadSpec::small(42)).expect("machine builds");
        let gb = GhostBuster::new().with_policy(policy);
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = gb.inside_sweep(&mut machine).unwrap();
                // A clean machine must stay clean under every posture —
                // decoys and quorum voting add cost, never noise.
                assert_eq!(report.suspicious_count(), 0);
                report.noise_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evasion_hardening);
criterion_main!(benches);
