//! Section 5 Linux bench: inside (`ls` vs `echo *`) and outside
//! (clean-boot) diffs per Unix rootkit.

use std::time::Duration;
use strider_ghostbuster::UnixGhostBuster;
use strider_ghostware::unix::unix_corpus;
use strider_support::bench::{BatchSize, Criterion};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};
use strider_unixfs::UnixMachine;
use strider_workload::populate_unix;

fn bench_linux(c: &mut Criterion) {
    let mut group = c.benchmark_group("linux_rootkits");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for rk in unix_corpus() {
        let name = rk.name().to_string();
        group.bench_function(format!("{name}/outside_diff"), |b| {
            b.iter_batched(
                || {
                    let mut m = UnixMachine::with_base_system("ux");
                    populate_unix(&mut m, 7, 400);
                    rk.infect(&mut m);
                    let lie = m.ls_scan_all();
                    (m, lie)
                },
                |(m, lie)| {
                    let report = UnixGhostBuster::new().outside_diff(&m, &lie);
                    assert!(report.is_infected());
                    report
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_function(format!("{name}/inside_diff"), |b| {
            b.iter_batched(
                || {
                    let mut m = UnixMachine::with_base_system("ux");
                    populate_unix(&mut m, 7, 400);
                    rk.infect(&mut m);
                    m
                },
                |m| UnixGhostBuster::new().inside_diff(&m),
                BatchSize::LargeInput,
            );
        });

        // One instrumented pass, spans opened by the harness (the Unix port
        // carries no telemetry of its own): per-phase durations for the
        // report JSON.
        let telemetry = Telemetry::new();
        let mut m = UnixMachine::with_base_system("ux");
        populate_unix(&mut m, 7, 400);
        rk.infect(&mut m);
        {
            let span = telemetry.span("unix.outside_diff");
            let lie = m.ls_scan_all();
            UnixGhostBuster::new().outside_diff(&m, &lie);
            drop(span);
        }
        {
            let span = telemetry.span("unix.inside_diff");
            UnixGhostBuster::new().inside_diff(&m);
            drop(span);
        }
        group.record_phases(name.as_str(), &telemetry.report());
    }
    group.finish();
}

criterion_group!(benches, bench_linux);
criterion_main!(benches);
