//! Fleet bench: a 64-machine seeded fleet swept serially versus on the
//! work-stealing pool at 1/2/4/8 workers.
//!
//! Every machine's volume answers its first reads with `Pending` (a
//! [`Stall`] that drains after a fixed number of polls), so each shard's
//! sweep blocks in real poll sleeps the way a remote desktop's disk does.
//! That is the regime fleet scanning actually lives in — device latency,
//! not scanner CPU — and it is what the pool exploits: workers overlap
//! their shards' device waits, so pool-4 beats the serial loop even on a
//! single-core host where pure CPU work cannot scale.

use std::time::Duration;
use strider_fleet::{DurabilityMode, FleetRegistry, FleetScheduler, FleetSpec};
use strider_ghostbuster::{AdvancedSource, GhostBuster, ScanPolicy};
use strider_support::bench::{Criterion, Throughput};
use strider_support::fault::Stall;
use strider_support::obs::Telemetry;
use strider_support::store::RecordStore;
use strider_support::{criterion_group, criterion_main};
use strider_winapi::FaultInjector;

const MACHINES: u32 = 64;
/// Pending polls per machine before its volume answers; at the policy's
/// 500 µs poll interval this is ~8 ms of device latency per shard.
const DEVICE_POLLS: u32 = 16;

fn detector() -> GhostBuster {
    GhostBuster::new()
        .with_advanced(AdvancedSource::ThreadTable)
        .with_policy(ScanPolicy::supervised().with_poll(500_000, 64))
}

/// Re-arms every machine's device stall; drained stalls are free, so each
/// timed iteration must pay the same per-shard device latency.
fn arm_device_latency(fleet: &mut FleetRegistry) {
    for shard in fleet.machines_mut() {
        shard.machine.set_fault_injector(
            FaultInjector::new().stall_volume_reads(Stall::after_polls(DEVICE_POLLS)),
        );
    }
}

fn bench_fleet_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scan");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(5);
    group.throughput(Throughput::Elements(u64::from(MACHINES)));

    let spec = FleetSpec::clean(MACHINES, 42).with_infected(16);
    let mut fleet = FleetRegistry::seeded(&spec).expect("fleet seeds");
    let gb = detector();

    // Serial baseline: one supervised sweep per machine on the calling
    // thread, with the same per-shard setup the scheduler performs (fresh
    // breakers via `with_policy`, a telemetry session per shard).
    group.bench_function("serial", |b| {
        b.iter(|| {
            arm_device_latency(&mut fleet);
            let mut infected = 0u64;
            for shard in fleet.machines_mut() {
                let policy = gb.policy().clone();
                let telemetry = Telemetry::with_clock(policy.clock().clone());
                let detector = gb.clone().with_policy(policy).with_telemetry(telemetry);
                let report = detector.inside_sweep(&mut shard.machine).unwrap();
                infected += u64::from(report.is_infected());
            }
            assert_eq!(infected, 16);
            infected
        });
    });

    for workers in [1usize, 2, 4, 8] {
        let scheduler = FleetScheduler::new(detector()).with_workers(workers);
        group.bench_function(format!("pool-{workers}"), |b| {
            b.iter(|| {
                arm_device_latency(&mut fleet);
                let report = scheduler.sweep(&mut fleet).unwrap();
                assert_eq!(report.swept, u64::from(MACHINES));
                assert_eq!(report.infected, 16);
                report.swept
            });
        });
    }

    // Checkpointed sweeps: the durable state plane's two persistence
    // modes at pool-4, priced against the in-memory pool-4 run above.
    // WAL mode appends one framed record per completed shard (O(1) in the
    // fleet size); rewrite mode commits the whole fleet checkpoint via
    // temp+rename after every shard (O(fleet) × shards). A fresh store
    // per iteration keeps every run a cold start — resuming would skip
    // the sweeps entirely.
    let durable_dir =
        std::env::temp_dir().join(format!("strider-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_dir);
    std::fs::create_dir_all(&durable_dir).expect("bench store dir");
    for (label, mode) in [
        ("checkpointed-wal", DurabilityMode::WalAppend),
        ("checkpointed-rewrite", DurabilityMode::FullRewrite),
    ] {
        let scheduler = FleetScheduler::new(detector()).with_workers(4);
        let mut run = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                arm_device_latency(&mut fleet);
                run += 1;
                let path = durable_dir.join(format!("{label}-{run}.wal"));
                let store = RecordStore::open(path).expect("bench store");
                let report = scheduler.sweep_durable(&mut fleet, &store, mode).unwrap();
                assert_eq!(report.swept, u64::from(MACHINES));
                assert_eq!(report.infected, 16);
                report.swept
            });
        });
    }
    let _ = std::fs::remove_dir_all(&durable_dir);
    group.finish();
}

criterion_group!(benches, bench_fleet_scan);
criterion_main!(benches);
