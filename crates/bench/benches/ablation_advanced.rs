//! Ablation bench: the cost of each low-level process truth source (APL vs
//! thread table vs handle table) and of the dump-based outside scan — the
//! price of defeating DKOM.

use std::time::Duration;
use strider_bench::victim_machine_sized;
use strider_ghostbuster::{AdvancedSource, ProcessScanner};
use strider_kernel::MemoryDump;
use strider_support::bench::Criterion;
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};
use strider_workload::WorkloadSpec;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_advanced");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let machine = victim_machine_sized(&WorkloadSpec::large(42)).expect("machine builds");
    let scanner = ProcessScanner::new();

    group.bench_function("truth/apl", |b| {
        b.iter(|| scanner.low_scan_apl(&machine));
    });
    group.bench_function("truth/thread_table", |b| {
        b.iter(|| scanner.low_scan_advanced(&machine, AdvancedSource::ThreadTable));
    });
    group.bench_function("truth/handle_table", |b| {
        b.iter(|| scanner.low_scan_advanced(&machine, AdvancedSource::HandleTable));
    });
    let dump_bytes = machine.kernel().crash_dump();
    let dump = MemoryDump::parse(&dump_bytes).expect("dump parses");
    group.bench_function("truth/outside_dump_advanced", |b| {
        b.iter(|| scanner.outside_scan(&dump, true));
    });

    // One instrumented pass over every truth source: per-phase durations
    // for the report JSON.
    let telemetry = Telemetry::new();
    let instrumented = ProcessScanner::new().with_telemetry(telemetry.clone());
    instrumented.low_scan_apl(&machine);
    instrumented.low_scan_advanced(&machine, AdvancedSource::ThreadTable);
    instrumented.low_scan_advanced(&machine, AdvancedSource::HandleTable);
    instrumented.outside_scan(&dump, true);
    group.record_phases("truth", &telemetry.report());

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
