//! Timing bench (Section 4): hidden-process/module detection — the paper's
//! fastest scan (1–5 s wall-clock on 2005 hardware) — plus the crash-dump
//! serialization/parse that the outside-the-box flow adds (15–45 s there).

use std::time::Duration;
use strider_bench::victim_machine_sized;
use strider_ghostbuster::{AdvancedSource, GhostBuster, ProcessScanner};
use strider_kernel::MemoryDump;
use strider_support::bench::{Criterion, Throughput};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};
use strider_winapi::ChainEntry;
use strider_workload::WorkloadSpec;

fn bench_process_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("process_scan");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (label, spec) in [
        ("small-17procs", WorkloadSpec::small(42)),
        ("large-49procs", WorkloadSpec::large(42)),
    ] {
        let mut machine = victim_machine_sized(&spec).expect("machine builds");
        let gb = GhostBuster::new();
        let ctx = gb.enter(&mut machine).expect("context");
        let scanner = ProcessScanner::new();
        group.throughput(Throughput::Elements(
            machine.kernel().active_process_list().len() as u64,
        ));

        group.bench_function(format!("{label}/high_scan"), |b| {
            b.iter(|| {
                scanner
                    .high_scan(&machine, &ctx, ChainEntry::Win32)
                    .unwrap()
            });
        });
        group.bench_function(format!("{label}/low_scan_apl"), |b| {
            b.iter(|| scanner.low_scan_apl(&machine));
        });
        group.bench_function(format!("{label}/low_scan_thread_table"), |b| {
            b.iter(|| scanner.low_scan_advanced(&machine, AdvancedSource::ThreadTable));
        });
        group.bench_function(format!("{label}/module_scan"), |b| {
            b.iter(|| scanner.scan_modules_inside(&machine, &ctx).unwrap());
        });
        group.bench_function(format!("{label}/crash_dump_write"), |b| {
            b.iter(|| machine.kernel().crash_dump());
        });
        let dump_bytes = machine.kernel().crash_dump();
        group.bench_function(format!("{label}/crash_dump_parse"), |b| {
            b.iter(|| MemoryDump::parse(&dump_bytes).unwrap());
        });

        // One instrumented pass: per-phase durations for the report JSON.
        let telemetry = Telemetry::new();
        let instrumented = ProcessScanner::new().with_telemetry(telemetry.clone());
        instrumented
            .scan_inside(&machine, &ctx, Some(AdvancedSource::ThreadTable))
            .unwrap();
        instrumented.scan_modules_inside(&machine, &ctx).unwrap();
        group.record_phases(label, &telemetry.report());
    }
    group.finish();
}

criterion_group!(benches, bench_process_scans);
criterion_main!(benches);
