//! Timing bench (Section 3): hidden-ASEP detection phases — the high-level
//! API extraction, the hive copy + raw parse, and the hook diff.

use std::time::Duration;
use strider_bench::victim_machine_sized;
use strider_ghostbuster::{GhostBuster, RegistryScanner};
use strider_support::bench::{Criterion, Throughput};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};
use strider_winapi::ChainEntry;
use strider_workload::WorkloadSpec;

fn bench_registry_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_scan");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for (label, spec) in [
        ("small-150keys", WorkloadSpec::small(42)),
        ("medium-1.5kkeys", WorkloadSpec::medium(42)),
        ("large-10kkeys", WorkloadSpec::large(42)),
    ] {
        let mut machine = victim_machine_sized(&spec).expect("machine builds");
        let gb = GhostBuster::new();
        let ctx = gb.enter(&mut machine).expect("context");
        let scanner = RegistryScanner::new();
        group.throughput(Throughput::Elements(machine.registry().key_count() as u64));

        group.bench_function(format!("{label}/high_scan"), |b| {
            b.iter(|| scanner.high_scan(&machine, &ctx, ChainEntry::Win32));
        });
        group.bench_function(format!("{label}/low_scan_hive_parse"), |b| {
            b.iter(|| scanner.low_scan(&machine).unwrap());
        });
        let lie = scanner.high_scan(&machine, &ctx, ChainEntry::Win32);
        let truth = scanner.low_scan(&machine).unwrap();
        group.bench_function(format!("{label}/diff"), |b| {
            b.iter(|| scanner.diff(&truth, &lie));
        });

        // One instrumented pass: per-phase durations for the report JSON.
        let telemetry = Telemetry::new();
        RegistryScanner::new()
            .with_telemetry(telemetry.clone())
            .scan_inside(&machine, &ctx)
            .unwrap();
        group.record_phases(label, &telemetry.report());
    }
    group.finish();
}

criterion_group!(benches, bench_registry_scans);
criterion_main!(benches);
