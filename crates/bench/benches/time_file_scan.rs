//! Timing bench (Section 2): the hidden-file scan's three phases — the
//! high-level API walk, the low-level MFT parse, and the diff — across
//! machine sizes. The paper's wall-clock numbers scale with disk size; the
//! throughput measured here feeds the cost model's per-entry constants.

use std::time::Duration;
use strider_bench::victim_machine_sized;
use strider_ghostbuster::{FileScanner, GhostBuster};
use strider_support::bench::{BatchSize, Criterion, Throughput};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};
use strider_winapi::ChainEntry;
use strider_workload::WorkloadSpec;

fn bench_file_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("file_scan");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (label, spec) in [
        ("small-300", WorkloadSpec::small(42)),
        ("medium-3k", WorkloadSpec::medium(42)),
        ("large-30k", WorkloadSpec::large(42)),
    ] {
        let mut machine = victim_machine_sized(&spec).expect("machine builds");
        let gb = GhostBuster::new();
        let ctx = gb.enter(&mut machine).expect("context");
        let scanner = FileScanner::new();
        let files = machine.volume().record_count() as u64;
        group.throughput(Throughput::Elements(files));

        group.bench_function(format!("{label}/high_scan"), |b| {
            b.iter(|| {
                scanner
                    .high_scan(&machine, &ctx, ChainEntry::Win32)
                    .unwrap()
            });
        });
        group.bench_function(format!("{label}/low_scan_mft_parse"), |b| {
            b.iter(|| scanner.low_scan(&machine).unwrap());
        });
        let high = scanner
            .high_scan(&machine, &ctx, ChainEntry::Win32)
            .unwrap();
        let low = scanner.low_scan(&machine).unwrap();
        group.bench_function(format!("{label}/diff"), |b| {
            b.iter(|| scanner.diff(&low, &high));
        });
        group.bench_function(format!("{label}/end_to_end"), |b| {
            b.iter_batched(
                || (),
                |()| scanner.scan_inside(&machine, &ctx).unwrap(),
                BatchSize::SmallInput,
            );
        });

        // One instrumented pass: per-phase durations for the report JSON,
        // plus a Chrome trace of the same pass (open in Perfetto) with the
        // per-directory query-latency sketch inside the telemetry export.
        let telemetry = Telemetry::new();
        FileScanner::new()
            .with_telemetry(telemetry.clone())
            .scan_inside(&machine, &ctx)
            .unwrap();
        let report = telemetry.report();
        report
            .write_chrome_trace(&format!("file_scan_{label}"))
            .expect("trace export");
        group.record_phases(label, &report);
    }
    group.finish();
}

criterion_group!(benches, bench_file_scans);
criterion_main!(benches);
