//! False-positive bench: the full WinPE outside-the-box flow and the VM
//! flow on a clean, churning machine (the FP experiments of Sections 2–3).

use std::time::Duration;
use strider_bench::victim_machine;
use strider_ghostbuster::GhostBuster;
use strider_support::bench::{BatchSize, Criterion};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};

fn bench_fp_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp_outside");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    group.bench_function("winpe_flow_reboot150", |b| {
        b.iter_batched(
            || {
                let mut m = victim_machine(2000).expect("machine builds");
                m.tick(311);
                m
            },
            |mut m| {
                let sweep = GhostBuster::new()
                    .winpe_outside_sweep(&mut m, 150)
                    .expect("flow succeeds");
                assert_eq!(sweep.files.net_detections().len(), 0);
                sweep
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("vm_flow_zero_gap", |b| {
        b.iter_batched(
            || {
                let mut m = victim_machine(2001).expect("machine builds");
                m.tick(311);
                m
            },
            |mut m| {
                let report = GhostBuster::new().vm_outside_files(&mut m).expect("flow");
                assert_eq!(report.detections.len(), 0);
                report
            },
            BatchSize::LargeInput,
        );
    });

    // One instrumented pass per flow: per-phase durations for the report
    // JSON.
    {
        let telemetry = Telemetry::new();
        let mut m = victim_machine(2000).expect("machine builds");
        m.tick(311);
        GhostBuster::new()
            .with_telemetry(telemetry.clone())
            .winpe_outside_sweep(&mut m, 150)
            .expect("flow succeeds");
        group.record_phases("winpe_flow_reboot150", &telemetry.report());
    }
    {
        let telemetry = Telemetry::new();
        let mut m = victim_machine(2001).expect("machine builds");
        m.tick(311);
        GhostBuster::new()
            .with_telemetry(telemetry.clone())
            .vm_outside_files(&mut m)
            .expect("flow");
        group.record_phases("vm_flow_zero_gap", &telemetry.report());
    }

    group.finish();
}

criterion_group!(benches, bench_fp_flows);
criterion_main!(benches);
