//! Section 5 extension bench: the injected per-process sweep (every process
//! becomes a GhostBuster) and the signature scanner, against targeting
//! attacks.

use std::time::Duration;
use strider_bench::victim_machine;
use strider_ghostbuster::{injected_sweep, SignatureScanner};
use strider_ghostware::prelude::UtilityTargetedHider;
use strider_ghostware::{Ghostware, HackerDefender};
use strider_support::bench::{BatchSize, Criterion};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_injection");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    group.bench_function("injected_sweep/targeted_hider", |b| {
        b.iter_batched(
            || {
                let mut m = victim_machine(4000).expect("machine builds");
                UtilityTargetedHider::default()
                    .infect(&mut m)
                    .expect("infects");
                m.spawn_process("taskmgr.exe", "C:\\windows\\system32\\taskmgr.exe")
                    .expect("spawns");
                m
            },
            |m| {
                let report = injected_sweep(&m).expect("sweeps");
                assert!(report.is_infected());
                report
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("signature_scan/hxdef_hiding", |b| {
        b.iter_batched(
            || {
                let mut m = victim_machine(4001).expect("machine builds");
                HackerDefender::default().infect(&mut m).expect("infects");
                let ctx = m
                    .ensure_process("InocIT.exe", "C:\\Program Files\\eTrust\\InocIT.exe")
                    .expect("context");
                (m, ctx)
            },
            |(m, ctx)| {
                SignatureScanner::with_default_database()
                    .scan(&m, &ctx)
                    .expect("scan")
            },
            BatchSize::LargeInput,
        );
    });

    // One instrumented pass, spans opened by the harness because these
    // extensions run many scanners internally: per-phase durations for the
    // report JSON.
    let telemetry = Telemetry::new();
    {
        let mut m = victim_machine(4000).expect("machine builds");
        UtilityTargetedHider::default()
            .infect(&mut m)
            .expect("infects");
        m.spawn_process("taskmgr.exe", "C:\\windows\\system32\\taskmgr.exe")
            .expect("spawns");
        let span = telemetry.span("ext.injected_sweep");
        injected_sweep(&m).expect("sweeps");
        drop(span);
    }
    {
        let mut m = victim_machine(4001).expect("machine builds");
        HackerDefender::default().infect(&mut m).expect("infects");
        let ctx = m
            .ensure_process("InocIT.exe", "C:\\Program Files\\eTrust\\InocIT.exe")
            .expect("context");
        let span = telemetry.span("ext.signature_scan");
        SignatureScanner::with_default_database()
            .scan(&m, &ctx)
            .expect("scan");
        drop(span);
    }
    group.record_phases("extensions", &telemetry.report());

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
