//! Baseline bench: the cross-time (Tripwire-style) checkpoint + diff versus
//! the cross-view sweep on the same machine — the Introduction's
//! comparison, measured.

use std::time::Duration;
use strider_bench::victim_machine;
use strider_ghostbuster::{CrossTimeDiff, GhostBuster, HookScanner};
use strider_ghostware::{Ghostware, HackerDefender};
use strider_support::bench::{BatchSize, Criterion};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_crosstime");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    group.bench_function("cross_time/checkpoint", |b| {
        let m = victim_machine(3000).expect("machine builds");
        b.iter(|| CrossTimeDiff::new().checkpoint(&m));
    });

    group.bench_function("cross_time/diff_after_churn", |b| {
        b.iter_batched(
            || {
                let mut m = victim_machine(3001).expect("machine builds");
                let baseline = CrossTimeDiff::new().checkpoint(&m);
                m.tick(600);
                (m, baseline)
            },
            |(m, baseline)| CrossTimeDiff::new().diff(&m, &baseline),
            BatchSize::LargeInput,
        );
    });

    group.bench_function("cross_view/full_sweep_infected", |b| {
        b.iter_batched(
            || {
                let mut m = victim_machine(3002).expect("machine builds");
                HackerDefender::default().infect(&mut m).expect("infects");
                m
            },
            |mut m| GhostBuster::new().inside_sweep(&mut m).expect("sweeps"),
            BatchSize::LargeInput,
        );
    });

    group.bench_function("hook_scan/mechanism_scan", |b| {
        let mut m = victim_machine(3003).expect("machine builds");
        HackerDefender::default().infect(&mut m).expect("infects");
        b.iter(|| HookScanner::new().scan(&m));
    });

    // One instrumented pass per contender: per-phase durations for the
    // report JSON.
    {
        let telemetry = Telemetry::new();
        let mut m = victim_machine(3001).expect("machine builds");
        let ct = CrossTimeDiff::new().with_telemetry(telemetry.clone());
        let baseline = ct.checkpoint(&m);
        m.tick(600);
        ct.diff(&m, &baseline);
        group.record_phases("cross_time", &telemetry.report());
    }
    {
        let telemetry = Telemetry::new();
        let mut m = victim_machine(3002).expect("machine builds");
        HackerDefender::default().infect(&mut m).expect("infects");
        GhostBuster::new()
            .with_telemetry(telemetry.clone())
            .inside_sweep(&mut m)
            .expect("sweeps");
        group.record_phases("cross_view", &telemetry.report());
    }
    {
        let telemetry = Telemetry::new();
        let mut m = victim_machine(3003).expect("machine builds");
        HackerDefender::default().infect(&mut m).expect("infects");
        HookScanner::new()
            .with_telemetry(telemetry.clone())
            .scan(&m);
        group.record_phases("hook_scan", &telemetry.report());
    }

    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
