//! Figure 6 bench: hidden-process/module detection per sample, in both
//! normal and advanced mode.

use std::time::Duration;
use strider_bench::victim_machine;
use strider_ghostbuster::{AdvancedSource, GhostBuster};
use strider_ghostware::process_hiding_corpus;
use strider_support::bench::{BatchSize, Criterion};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_hidden_procs");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);
    for (i, sample) in process_hiding_corpus().into_iter().enumerate() {
        for advanced in [false, true] {
            let label = format!(
                "{}/{}",
                sample.name(),
                if advanced { "advanced" } else { "normal" }
            );
            group.bench_function(&label, |b| {
                b.iter_batched(
                    || {
                        let mut m = victim_machine(1200 + i as u64).expect("machine builds");
                        sample.infect(&mut m).expect("infection succeeds");
                        m
                    },
                    |mut m| {
                        let gb = if advanced {
                            GhostBuster::new().with_advanced(AdvancedSource::ThreadTable)
                        } else {
                            GhostBuster::new()
                        };
                        let procs = gb.scan_processes_inside(&mut m).expect("scan succeeds");
                        let modules = gb.scan_modules_inside(&mut m).expect("scan succeeds");
                        (procs, modules)
                    },
                    BatchSize::LargeInput,
                );
            });

            // One instrumented pass: per-phase durations for the report
            // JSON.
            let mut m = victim_machine(1200 + i as u64).expect("machine builds");
            sample.infect(&mut m).expect("infection succeeds");
            let telemetry = Telemetry::new();
            let gb = if advanced {
                GhostBuster::new().with_advanced(AdvancedSource::ThreadTable)
            } else {
                GhostBuster::new()
            }
            .with_telemetry(telemetry.clone());
            gb.scan_processes_inside(&mut m).expect("scan succeeds");
            gb.scan_modules_inside(&mut m).expect("scan succeeds");
            group.record_phases(label.as_str(), &telemetry.report());
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
