//! Figure 3 bench: end-to-end inside-the-box hidden-file detection, one
//! measurement per file-hiding ghostware sample.

use std::time::Duration;
use strider_bench::victim_machine;
use strider_ghostbuster::GhostBuster;
use strider_ghostware::file_hiding_corpus;
use strider_support::bench::{BatchSize, Criterion};
use strider_support::obs::Telemetry;
use strider_support::{criterion_group, criterion_main};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_hidden_files");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (i, sample) in file_hiding_corpus().into_iter().enumerate() {
        let name = sample.name().to_string();
        group.bench_function(&name, |b| {
            b.iter_batched(
                || {
                    let mut m = victim_machine(1000 + i as u64).expect("machine builds");
                    sample.infect(&mut m).expect("infection succeeds");
                    m
                },
                |mut m| {
                    let report = GhostBuster::new()
                        .scan_files_inside(&mut m)
                        .expect("scan succeeds");
                    assert!(report.has_detections());
                    report
                },
                BatchSize::LargeInput,
            );
        });

        // One instrumented pass: per-phase durations for the report JSON.
        let mut m = victim_machine(1000 + i as u64).expect("machine builds");
        sample.infect(&mut m).expect("infection succeeds");
        let telemetry = Telemetry::new();
        GhostBuster::new()
            .with_telemetry(telemetry.clone())
            .scan_files_inside(&mut m)
            .expect("scan succeeds");
        group.record_phases(name.as_str(), &telemetry.report());
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
