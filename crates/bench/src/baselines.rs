//! Baseline comparisons: cross-time diff (Tripwire-style) and the
//! mechanism-targeting hook scanner (VICE-style), quantifying the
//! Introduction's claims.

use crate::victim_machine;
use strider_ghostbuster::{install_benign_wrapper, CrossTimeDiff, GhostBuster, HookScanner};
use strider_ghostware::{file_hiding_corpus, process_hiding_corpus, Ghostware, NamingTrick};
use strider_nt_core::NtStatus;

/// One sample's outcome across the three detectors.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Sample name.
    pub ghostware: String,
    /// Cross-view diff (GhostBuster, advanced mode) detects it.
    pub cross_view: bool,
    /// Mechanism scan (hook scanner) detects it.
    pub hook_scan: bool,
    /// Cross-time diff reports its installation.
    pub cross_time: bool,
}

/// Detector coverage across the whole Windows corpus plus the naming-trick
/// sample.
///
/// # Errors
///
/// Propagates scan failures.
pub fn coverage_rows() -> Result<Vec<CoverageRow>, NtStatus> {
    let mut samples: Vec<Box<dyn Ghostware>> = file_hiding_corpus();
    samples.extend(process_hiding_corpus());
    samples.push(Box::new(NamingTrick));
    let mut rows: Vec<CoverageRow> = Vec::new();
    for (i, sample) in samples.into_iter().enumerate() {
        let mut m = victim_machine(700 + i as u64)?;
        let ct = CrossTimeDiff::new();
        let baseline = ct.checkpoint(&m);
        let infection = sample.infect(&mut m)?;
        if rows.iter().any(|r| r.ghostware == infection.ghostware) {
            continue;
        }

        let sweep = GhostBuster::new()
            .with_advanced(strider_ghostbuster::AdvancedSource::ThreadTable)
            .inside_sweep(&mut m)?;
        let cross_view = sweep.is_infected();

        let hook_scan = !HookScanner::new().implicated_owners(&m).is_empty();

        let changes = ct.diff(&m, &baseline);
        let cross_time = changes.alarm_count() > 0;

        rows.push(CoverageRow {
            ghostware: infection.ghostware,
            cross_view,
            hook_scan,
            cross_time,
        });
    }
    Ok(rows)
}

/// The false-positive side: on a *clean* machine with a benign Detours-style
/// wrapper installed and normal service churn, what does each detector
/// report? Returns (cross-view suspicious, hook-scan findings, cross-time
/// alarms).
///
/// # Errors
///
/// Propagates scan failures.
pub fn false_positive_rows() -> Result<(usize, usize, usize), NtStatus> {
    let mut m = victim_machine(750)?;
    install_benign_wrapper(&mut m, "ft-wrapper");
    let ct = CrossTimeDiff::new();
    let baseline = ct.checkpoint(&m);
    m.tick(600); // ten minutes of ordinary operation

    let cross_view = GhostBuster::new().inside_sweep(&mut m)?.suspicious_count();
    let hook_scan = HookScanner::new().scan(&m).len();
    let cross_time = ct.diff(&m, &baseline).alarm_count();
    Ok((cross_view, hook_scan, cross_time))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_view_catches_everything_hook_scan_does_not() {
        let rows = coverage_rows().unwrap();
        assert!(rows.len() >= 13);
        for r in &rows {
            assert!(r.cross_view, "{} missed by cross-view", r.ghostware);
            assert!(r.cross_time, "{} missed by cross-time", r.ghostware);
        }
        // The hook scanner's blind spots: filter drivers, DKOM, naming.
        let blind: Vec<&str> = rows
            .iter()
            .filter(|r| !r.hook_scan)
            .map(|r| r.ghostware.as_str())
            .collect();
        assert!(blind.contains(&"FU"));
        assert!(blind.contains(&"NamingTrick"));
        assert!(blind
            .iter()
            .any(|g| g.contains("Hide") || g.contains("Protector")));
    }

    #[test]
    fn clean_machine_fp_profile_matches_the_papers_argument() {
        let (cross_view, hook_scan, cross_time) = false_positive_rows().unwrap();
        assert_eq!(cross_view, 0, "cross-view: legitimate programs rarely hide");
        assert!(hook_scan >= 1, "mechanism scan flags the benign wrapper");
        assert!(
            cross_time >= 5,
            "cross-time diff needs noise filtering: {cross_time} alarms"
        );
    }
}
