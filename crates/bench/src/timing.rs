//! The timing results of Sections 2–4: scan times on the eight machines.

use strider_ghostbuster::{FileScanner, GhostBuster, ProcessScanner, RegistryScanner};
use strider_nt_core::{IoStats, NtStatus};
use strider_winapi::ChainEntry;
use strider_workload::{paper_profiles, CostModel, WorkloadSpec};

/// One machine's estimated scan times.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Machine name.
    pub machine: String,
    /// Machine class.
    pub class: String,
    /// CPU MHz.
    pub cpu_mhz: u32,
    /// Disk used, GB.
    pub disk_used_gb: f64,
    /// Inside-the-box file scan, seconds.
    pub file_scan_s: f64,
    /// Inside-the-box ASEP scan, seconds.
    pub registry_scan_s: f64,
    /// Inside-the-box process+module scan, seconds.
    pub process_scan_s: f64,
    /// WinPE CD boot overhead, seconds.
    pub winpe_boot_s: f64,
    /// Blue-screen dump overhead, seconds.
    pub dump_s: f64,
}

/// Estimated scan times for the paper's eight machines.
pub fn timing_rows() -> Vec<TimingRow> {
    paper_profiles()
        .into_iter()
        .map(|p| {
            let model = CostModel::new(p.clone());
            TimingRow {
                machine: p.name.to_string(),
                class: p.class.to_string(),
                cpu_mhz: p.cpu_mhz,
                disk_used_gb: p.disk_used_gb,
                file_scan_s: model.file_scan_seconds(),
                registry_scan_s: model.registry_scan_seconds(),
                process_scan_s: model.process_scan_seconds(),
                winpe_boot_s: model.winpe_boot_seconds(),
                dump_s: model.dump_seconds(),
            }
        })
        .collect()
}

/// Measured I/O from real scans of a simulated machine, extrapolated to a
/// paper-scale machine through the cost model.
#[derive(Debug, Clone)]
pub struct MeasuredIoRow {
    /// Machine profile name.
    pub machine: String,
    /// Extrapolated file-scan seconds from measured I/O.
    pub file_scan_s: f64,
    /// Extrapolated Registry-scan seconds from measured I/O.
    pub registry_scan_s: f64,
    /// Extrapolated process-scan seconds from measured I/O.
    pub process_scan_s: f64,
}

fn scale_io(io: &IoStats, factor: f64) -> IoStats {
    IoStats {
        bytes_read: (io.bytes_read as f64 * factor) as u64,
        seeks: (io.seeks as f64 * factor) as u64,
        api_calls: (io.api_calls as f64 * factor) as u64,
        entries: (io.entries as f64 * factor) as u64,
        defects: io.defects,
    }
}

/// Runs the real scans on a simulated machine, records their [`IoStats`],
/// scales the I/O to each paper profile's declared file/key counts, and
/// converts to seconds with [`CostModel::seconds_for`] — the bottom-up
/// cross-check of [`timing_rows`]'s top-down estimates.
///
/// # Errors
///
/// Propagates scan failures.
pub fn measured_io_rows() -> Result<Vec<MeasuredIoRow>, NtStatus> {
    let mut machine =
        strider_workload::standard_lab_machine("timing-probe", &WorkloadSpec::large(42), false)?;
    let gb = GhostBuster::new();
    let ctx = gb.enter(&mut machine)?;

    let files = FileScanner::new();
    let mut file_io = files.high_scan(&machine, &ctx, ChainEntry::Win32)?.meta.io;
    file_io.merge(&files.low_scan(&machine)?.meta.io);
    let sim_files = machine.volume().record_count() as f64;

    let registry = RegistryScanner::new();
    let mut reg_io = registry
        .high_scan(&machine, &ctx, ChainEntry::Win32)
        .meta
        .io;
    reg_io.merge(&registry.low_scan(&machine)?.meta.io);
    let sim_keys = machine.registry().key_count() as f64;

    let procs = ProcessScanner::new();
    let mut proc_io = procs.high_scan(&machine, &ctx, ChainEntry::Win32)?.meta.io;
    proc_io.merge(&procs.low_scan_apl(&machine).meta.io);
    let sim_procs = machine.kernel().active_process_list().len() as f64;

    Ok(paper_profiles()
        .into_iter()
        .map(|p| {
            let model = CostModel::new(p.clone());
            let file_scaled = scale_io(&file_io, p.file_count() as f64 / sim_files);
            let reg_scaled = scale_io(&reg_io, p.registry_key_count() as f64 / sim_keys);
            let proc_scaled = scale_io(&proc_io, p.process_count() as f64 / sim_procs);
            MeasuredIoRow {
                machine: p.name.to_string(),
                file_scan_s: model.seconds_for(&file_scaled),
                registry_scan_s: model.seconds_for(&reg_scaled),
                process_scan_s: model.seconds_for(&proc_scaled),
            }
        })
        .collect())
}

/// The paper's headline ranges, checked by tests and printed alongside.
pub mod paper_ranges {
    /// Inside-the-box file scan on the seven ordinary machines.
    pub const FILE_SCAN_ORDINARY_S: (f64, f64) = (30.0, 420.0);
    /// The heavily-used workstation's file scan (≈ 38 min).
    pub const FILE_SCAN_WORKSTATION_S: (f64, f64) = (1500.0, 2700.0);
    /// Hidden-ASEP scan.
    pub const REGISTRY_SCAN_S: (f64, f64) = (18.0, 63.0);
    /// Process+module scan.
    pub const PROCESS_SCAN_S: (f64, f64) = (1.0, 5.0);
    /// WinPE boot overhead.
    pub const WINPE_BOOT_S: (f64, f64) = (90.0, 180.0);
    /// Blue-screen dump overhead.
    pub const DUMP_S: (f64, f64) = (15.0, 45.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_lands_in_paper_ranges() {
        let rows = timing_rows();
        assert_eq!(rows.len(), 8);
        for (i, r) in rows.iter().enumerate() {
            let file_range = if i == 7 {
                paper_ranges::FILE_SCAN_WORKSTATION_S
            } else {
                paper_ranges::FILE_SCAN_ORDINARY_S
            };
            assert!(
                r.file_scan_s >= file_range.0 && r.file_scan_s <= file_range.1,
                "{}: file {:.0}s",
                r.machine,
                r.file_scan_s
            );
            assert!(
                r.registry_scan_s >= paper_ranges::REGISTRY_SCAN_S.0
                    && r.registry_scan_s <= paper_ranges::REGISTRY_SCAN_S.1,
                "{}: registry {:.0}s",
                r.machine,
                r.registry_scan_s
            );
            assert!(
                r.process_scan_s >= paper_ranges::PROCESS_SCAN_S.0
                    && r.process_scan_s <= paper_ranges::PROCESS_SCAN_S.1,
                "{}: process {:.1}s",
                r.machine,
                r.process_scan_s
            );
            assert!(
                r.winpe_boot_s >= paper_ranges::WINPE_BOOT_S.0
                    && r.winpe_boot_s <= paper_ranges::WINPE_BOOT_S.1,
                "{}: boot {:.0}s",
                r.machine,
                r.winpe_boot_s
            );
            assert!(
                r.dump_s >= paper_ranges::DUMP_S.0 && r.dump_s <= paper_ranges::DUMP_S.1,
                "{}: dump {:.0}s",
                r.machine,
                r.dump_s
            );
        }
    }

    #[test]
    fn scan_cost_ordering_matches_the_paper() {
        // files ≫ registry ≫ processes on every machine.
        for r in timing_rows() {
            assert!(r.file_scan_s > r.registry_scan_s, "{}", r.machine);
            assert!(r.registry_scan_s > r.process_scan_s, "{}", r.machine);
        }
    }

    #[test]
    fn measured_io_extrapolation_preserves_the_ordering() {
        let rows = measured_io_rows().unwrap();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.file_scan_s > r.registry_scan_s, "{}", r.machine);
            assert!(r.registry_scan_s > r.process_scan_s, "{}", r.machine);
            assert!(r.file_scan_s > 10.0, "{}: {}", r.machine, r.file_scan_s);
        }
    }

    #[test]
    fn workstation_is_the_outlier() {
        let rows = timing_rows();
        let max_ordinary = rows[..7]
            .iter()
            .map(|r| r.file_scan_s)
            .fold(0.0f64, f64::max);
        assert!(rows[7].file_scan_s > 3.0 * max_ordinary);
    }
}
